/* Native hot-path kernels for the codec substrate.
 *
 * Compiled on demand by repro.native (gcc -O3, no -ffast-math: the
 * double arithmetic must follow IEEE semantics so results stay
 * deterministic and, for the integer SAD kernel, bit-identical to the
 * NumPy fallback).  Every function is a plain C symbol loaded through
 * ctypes; all arrays are C-contiguous buffers prepared by the Python
 * wrappers.
 */

#include <math.h>
#include <stddef.h>
#include <stdint.h>
#include <string.h>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define REPRO_X86 1
#else
#define REPRO_X86 0
#endif

/* ------------------------------------------------------------------ */
/* SIMD dispatch.                                                      */
/*                                                                     */
/* Every SIMD path computes *integer* sums of absolute differences,    */
/* which are exact in any lane order — bit-identical to the scalar     */
/* loop and to the NumPy oracle by construction.  The active level is  */
/* set from Python after load (REPRO_NATIVE_SIMD escape hatch); level  */
/* 0 forces the scalar loops, 1 allows AVX2, 2 allows AVX-512.  The    */
/* x86-64 SSE2 baseline psadbw path counts as level 0: it needs no     */
/* runtime dispatch and is always safe.                                */
/* ------------------------------------------------------------------ */

static int g_simd_level = 0;

int simd_detect(void)
{
#if REPRO_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
        return 2;
    if (__builtin_cpu_supports("avx2"))
        return 1;
#endif
    return 0;
}

void simd_set_level(int level)
{
    int cap = simd_detect();
    if (level > cap)
        level = cap;
    if (level < 0)
        level = 0;
    g_simd_level = level;
}

int simd_get_level(void)
{
    return g_simd_level;
}

/* Plain C SAD of a (bh, bw) uint8 block (row stride cs) against a
 * window of the reference plane (row stride ws). */
static int64_t sad_win_scalar(const uint8_t *win, ptrdiff_t ws,
                              const uint8_t *cur, ptrdiff_t cs,
                              int bh, int bw)
{
    int64_t acc = 0;
    for (int r = 0; r < bh; r++) {
        const uint8_t *wr = win + (ptrdiff_t)r * ws;
        const uint8_t *cr = cur + (ptrdiff_t)r * cs;
        for (int c = 0; c < bw; c++) {
            int d = (int)wr[c] - (int)cr[c];
            acc += d < 0 ? -d : d;
        }
    }
    return acc;
}

#if REPRO_X86
/* SSE2 baseline: 16-byte psadbw, bw % 16 == 0. */
static int64_t sad_win_sse2(const uint8_t *win, ptrdiff_t ws,
                            const uint8_t *cur, ptrdiff_t cs,
                            int bh, int bw)
{
    __m128i acc = _mm_setzero_si128();
    for (int r = 0; r < bh; r++) {
        const uint8_t *wr = win + (ptrdiff_t)r * ws;
        const uint8_t *cr = cur + (ptrdiff_t)r * cs;
        for (int c = 0; c < bw; c += 16) {
            __m128i a = _mm_loadu_si128((const __m128i *)(wr + c));
            __m128i b = _mm_loadu_si128((const __m128i *)(cr + c));
            acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
        }
    }
    return (int64_t)(_mm_cvtsi128_si64(acc)
                     + _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
}

/* AVX2: 32-byte rows, or two 16-byte rows packed into one ymm. */
__attribute__((target("avx2")))
static int64_t sad_win_avx2(const uint8_t *win, ptrdiff_t ws,
                            const uint8_t *cur, ptrdiff_t cs,
                            int bh, int bw)
{
    __m256i acc = _mm256_setzero_si256();
    if (bw % 32 == 0) {
        for (int r = 0; r < bh; r++) {
            const uint8_t *wr = win + (ptrdiff_t)r * ws;
            const uint8_t *cr = cur + (ptrdiff_t)r * cs;
            for (int c = 0; c < bw; c += 32) {
                __m256i a = _mm256_loadu_si256((const __m256i *)(wr + c));
                __m256i b = _mm256_loadu_si256((const __m256i *)(cr + c));
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(a, b));
            }
        }
    } else { /* bw % 16 == 0, bh % 2 == 0: two rows per iteration */
        for (int r = 0; r < bh; r += 2) {
            const uint8_t *wr = win + (ptrdiff_t)r * ws;
            const uint8_t *cr = cur + (ptrdiff_t)r * cs;
            for (int c = 0; c < bw; c += 16) {
                __m256i a = _mm256_set_m128i(
                    _mm_loadu_si128((const __m128i *)(wr + ws + c)),
                    _mm_loadu_si128((const __m128i *)(wr + c)));
                __m256i b = _mm256_set_m128i(
                    _mm_loadu_si128((const __m128i *)(cr + cs + c)),
                    _mm_loadu_si128((const __m128i *)(cr + c)));
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(a, b));
            }
        }
    }
    __m128i lo = _mm256_castsi256_si128(acc);
    __m128i hi = _mm256_extracti128_si256(acc, 1);
    __m128i s = _mm_add_epi64(lo, hi);
    return (int64_t)(_mm_cvtsi128_si64(s)
                     + _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

/* AVX-512: 64-byte rows (bw % 64 == 0), or four 16-byte rows per zmm. */
__attribute__((target("avx512f,avx512bw")))
static int64_t sad_win_avx512(const uint8_t *win, ptrdiff_t ws,
                              const uint8_t *cur, ptrdiff_t cs,
                              int bh, int bw)
{
    __m512i acc = _mm512_setzero_si512();
    if (bw % 64 == 0) {
        for (int r = 0; r < bh; r++) {
            const uint8_t *wr = win + (ptrdiff_t)r * ws;
            const uint8_t *cr = cur + (ptrdiff_t)r * cs;
            for (int c = 0; c < bw; c += 64) {
                __m512i a = _mm512_loadu_si512((const void *)(wr + c));
                __m512i b = _mm512_loadu_si512((const void *)(cr + c));
                acc = _mm512_add_epi64(acc, _mm512_sad_epu8(a, b));
            }
        }
    } else { /* bw % 16 == 0, bh % 4 == 0: four rows per iteration */
        for (int r = 0; r < bh; r += 4) {
            const uint8_t *wr = win + (ptrdiff_t)r * ws;
            const uint8_t *cr = cur + (ptrdiff_t)r * cs;
            for (int c = 0; c < bw; c += 16) {
                __m512i a = _mm512_castsi128_si512(
                    _mm_loadu_si128((const __m128i *)(wr + c)));
                a = _mm512_inserti32x4(a,
                    _mm_loadu_si128((const __m128i *)(wr + ws + c)), 1);
                a = _mm512_inserti32x4(a,
                    _mm_loadu_si128((const __m128i *)(wr + 2 * ws + c)), 2);
                a = _mm512_inserti32x4(a,
                    _mm_loadu_si128((const __m128i *)(wr + 3 * ws + c)), 3);
                __m512i b = _mm512_castsi128_si512(
                    _mm_loadu_si128((const __m128i *)(cr + c)));
                b = _mm512_inserti32x4(b,
                    _mm_loadu_si128((const __m128i *)(cr + cs + c)), 1);
                b = _mm512_inserti32x4(b,
                    _mm_loadu_si128((const __m128i *)(cr + 2 * cs + c)), 2);
                b = _mm512_inserti32x4(b,
                    _mm_loadu_si128((const __m128i *)(cr + 3 * cs + c)), 3);
                acc = _mm512_add_epi64(acc, _mm512_sad_epu8(a, b));
            }
        }
    }
    return (int64_t)_mm512_reduce_add_epi64(acc);
}
#endif /* REPRO_X86 */

/* Width/level dispatch for the u8-vs-u8 SAD. */
static inline int64_t sad_win_u8(const uint8_t *win, ptrdiff_t ws,
                                 const uint8_t *cur, ptrdiff_t cs,
                                 int bh, int bw)
{
#if REPRO_X86
    if (bw % 16 == 0) {
        if (g_simd_level >= 2 && (bw % 64 == 0 || bh % 4 == 0))
            return sad_win_avx512(win, ws, cur, cs, bh, bw);
        if (g_simd_level >= 1 && (bw % 32 == 0 || bh % 2 == 0))
            return sad_win_avx2(win, ws, cur, cs, bh, bw);
        return sad_win_sse2(win, ws, cur, cs, bh, bw);
    }
#endif
    return sad_win_scalar(win, ws, cur, cs, bh, bw);
}

/* Exp-Golomb code lengths (same arithmetic as repro.codec.bitstream). */
static inline int64_t ue_bits(int64_t value)
{
    uint64_t code = (uint64_t)value + 1;
    int bl = 64 - __builtin_clzll(code);
    return 2 * bl - 1;
}

static inline int64_t se_bits(int64_t value)
{
    int64_t mapped = value > 0 ? 2 * value - 1 : -2 * value;
    return ue_bits(mapped);
}

/* SAD of one int32 block against n displaced windows of a uint8 plane.
 *
 * Window i anchors at (ys[i], xs[i]); element (r, c) reads
 * ref[(ys[i] + r * istep) * stride + xs[i] + c * istep].  istep is 1
 * for integer-pel search and 2 for the half-pel grid (where anchors
 * are half-pel coordinates and the window samples at integer pitch).
 * Accumulates in int64 — bit-identical to the NumPy int path.
 */
/* Stage an int32 block into a u8 buffer when every value fits a byte
 * (true whenever the block came from a uint8 plane).  Returns 0 when
 * any value is out of range, in which case callers keep the exact
 * scalar int32 loop.  The staged copy lets the batch kernels run the
 * SIMD psadbw paths, whose integer sums are bit-identical. */
#define SAD_STAGE_MAX 16384

static int stage_block_u8(const int32_t *block, int bh, int bw,
                          uint8_t *staged)
{
    ptrdiff_t n = (ptrdiff_t)bh * bw;
    if (n > SAD_STAGE_MAX)
        return 0;
    for (ptrdiff_t k = 0; k < n; k++) {
        int32_t v = block[k];
        if (v & ~0xFF)
            return 0;
        staged[k] = (uint8_t)v;
    }
    return 1;
}

void sad_batch_u8(const uint8_t *ref, int64_t stride, int64_t istep,
                  const int32_t *block, int bh, int bw,
                  const int64_t *xs, const int64_t *ys, int n,
                  int64_t *out)
{
    if (istep == 1 && bw % 16 == 0) {
        uint8_t staged[SAD_STAGE_MAX];
        if (stage_block_u8(block, bh, bw, staged)) {
            for (int i = 0; i < n; i++)
                out[i] = sad_win_u8(ref + ys[i] * stride + xs[i], stride,
                                    staged, bw, bh, bw);
            return;
        }
    }
    for (int i = 0; i < n; i++) {
        const uint8_t *anchor = ref + ys[i] * stride + xs[i];
        int64_t acc = 0;
        for (int r = 0; r < bh; r++) {
            const uint8_t *wr = anchor + (int64_t)r * istep * stride;
            const int32_t *br = block + (int64_t)r * bw;
            for (int c = 0; c < bw; c++) {
                int32_t d = (int32_t)wr[(int64_t)c * istep] - br[c];
                acc += d < 0 ? -d : d;
            }
        }
        out[i] = acc;
    }
}

/* The four intra mode SADs: DC, planar, horizontal, vertical.
 *
 * block is the (bh, bw) float64 original; top/left may be NULL (tile
 * boundary), in which case the neutral sample 128 substitutes, as in
 * repro.codec.intra.  planar is the precomputed planar prediction
 * (built in Python so the winning prediction block stays identical to
 * what predict() returns).  out = [dc, planar, horizontal, vertical].
 */
void intra_sads(const double *block, int bh, int bw,
                const double *top, const double *left,
                double dc, const double *planar,
                double *out)
{
    double s_dc = 0.0, s_pl = 0.0, s_h = 0.0, s_v = 0.0;
    for (int r = 0; r < bh; r++) {
        const double *br = block + (ptrdiff_t)r * bw;
        const double *pr = planar + (ptrdiff_t)r * bw;
        double lv = left ? left[r] : 128.0;
        for (int c = 0; c < bw; c++) {
            double x = br[c];
            double tv = top ? top[c] : 128.0;
            s_dc += fabs(x - dc);
            s_pl += fabs(x - pr[c]);
            s_h += fabs(x - lv);
            s_v += fabs(x - tv);
        }
    }
    out[0] = s_dc;
    out[1] = s_pl;
    out[2] = s_h;
    out[3] = s_v;
}

/* Sum of |block - pred| over n doubles.
 *
 * Used for the inter-prediction SAD, where block samples are integers
 * and predictions are integers (motion compensation, half-pel fetch)
 * or exact halves (bi-prediction average): every partial sum is then
 * exactly representable, so sequential summation is bit-identical to
 * NumPy's pairwise reduction.
 */
void sad_pred_d(const double *block, const double *pred, int64_t n,
                double *out)
{
    double acc = 0.0;
    for (int64_t k = 0; k < n; k++)
        acc += fabs(block[k] - pred[k]);
    out[0] = acc;
}

/* Sum of (block - recon)^2: block is the integer-valued float64
 * original, recon the reconstructed uint8 samples.  Integer squares
 * sum exactly in double, so the order of summation cannot matter.
 */
void ssd_recon_u8(const double *block, const uint8_t *recon, int64_t n,
                  double *out)
{
    double acc = 0.0;
    for (int64_t k = 0; k < n; k++) {
        double d = block[k] - (double)recon[k];
        acc += d * d;
    }
    out[0] = acc;
}

/* Rate-penalized motion costs: SAD plus lambda * (|dx| + |dy|).
 *
 * Same window arithmetic as sad_batch_u8 with istep == 1; (bx, by) is
 * the block position, so dx = xs[i] - bx.  The cost arithmetic
 * replicates the Python scalar path exactly (one rounding per
 * operation, no FMA): double(sad) + lam * double(|dx| + |dy|).
 */
void sad_cost_batch_u8(const uint8_t *ref, int64_t stride,
                       const int32_t *block, int bh, int bw,
                       const int64_t *xs, const int64_t *ys, int n,
                       int64_t bx, int64_t by, double lam,
                       double *out)
{
    uint8_t staged[SAD_STAGE_MAX];
    int use_staged = bw % 16 == 0 && stage_block_u8(block, bh, bw, staged);
    for (int i = 0; i < n; i++) {
        const uint8_t *anchor = ref + ys[i] * stride + xs[i];
        int64_t acc;
        if (use_staged) {
            acc = sad_win_u8(anchor, stride, staged, bw, bh, bw);
        } else {
            acc = 0;
            for (int r = 0; r < bh; r++) {
                const uint8_t *wr = anchor + (int64_t)r * stride;
                const int32_t *br = block + (int64_t)r * bw;
                for (int c = 0; c < bw; c++) {
                    int32_t d = (int32_t)wr[c] - br[c];
                    acc += d < 0 ? -d : d;
                }
            }
        }
        int64_t adx = xs[i] - bx, ady = ys[i] - by;
        if (adx < 0) adx = -adx;
        if (ady < 0) ady = -ady;
        out[i] = (double)acc + lam * (double)(adx + ady);
    }
}

/* Fused intra mode decision for one coding block.
 *
 * Computes the DC / planar / horizontal / vertical predictions and
 * their SADs in one pass, picks the SAD-best mode (strict <, ties
 * toward the lower mode index, DC first — same order as
 * repro.codec.intra.choose_mode) and writes the winning prediction
 * into pred_out.  The prediction arithmetic replicates predict()
 * operation-for-operation (compiled with -ffp-contract=off), so the
 * winner block is bit-identical to what the Python decoder rebuilds
 * from the coded mode.  Only the SAD reductions may differ from
 * NumPy's pairwise summation in the last ulp, which matters only on
 * exact cost ties.
 *
 * top/left may be NULL (tile boundary): the neutral sample 128
 * substitutes.  mode_out[0] in {0=DC, 1=planar, 2=horizontal,
 * 3=vertical}; sad_out[0] is the winning SAD.
 */
void choose_intra(const double *block, int bh, int bw,
                  const double *top, const double *left,
                  double *pred_out, int32_t *mode_out, double *sad_out)
{
    double s_dc = 0.0, s_pl = 0.0, s_h = 0.0, s_v = 0.0;
    /* DC value: mean of the available reference samples.  The samples
     * are integer-valued doubles, so sequential summation is exact and
     * matches repro.codec.intra._dc_value bit-for-bit. */
    double dc = 128.0;
    if (top || left) {
        double total = 0.0;
        int64_t count = 0;
        if (top) {
            for (int c = 0; c < bw; c++)
                total += top[c];
            count += bw;
        }
        if (left) {
            for (int r = 0; r < bh; r++)
                total += left[r];
            count += bh;
        }
        dc = total / (double)count;
    }
    double tr = top ? top[bw - 1] : 128.0;   /* top-right reference */
    double bl = left ? left[bh - 1] : 128.0; /* bottom-left reference */
    double inv_w = (double)(bw + 1);
    double inv_h = (double)(bh + 1);
    for (int r = 0; r < bh; r++) {
        const double *br = block + (ptrdiff_t)r * bw;
        double *pr = pred_out + (ptrdiff_t)r * bw;
        double lv = left ? left[r] : 128.0;
        double wy = (double)(r + 1) / inv_h;
        for (int c = 0; c < bw; c++) {
            double x = br[c];
            double tv = top ? top[c] : 128.0;
            double wx = (double)(c + 1) / inv_w;
            /* planar: same op sequence as predict(PLANAR, ...) */
            double horiz = lv * (1.0 - wx) + tr * wx;
            double vert = tv * (1.0 - wy) + bl * wy;
            double pl = (horiz + vert) / 2.0;
            pr[c] = pl; /* provisional: overwritten unless planar wins */
            s_dc += fabs(x - dc);
            s_pl += fabs(x - pl);
            s_h += fabs(x - lv);
            s_v += fabs(x - tv);
        }
    }
    double sads[4] = { s_dc, s_pl, s_h, s_v };
    int best = 0;
    for (int m = 1; m < 4; m++)
        if (sads[m] < sads[best])
            best = m;
    mode_out[0] = best;
    sad_out[0] = sads[best];
    if (best == 0) {
        for (ptrdiff_t k = 0; k < (ptrdiff_t)bh * bw; k++)
            pred_out[k] = dc;
    } else if (best == 2) {
        for (int r = 0; r < bh; r++) {
            double lv = left ? left[r] : 128.0;
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = lv;
        }
    } else if (best == 3) {
        for (int r = 0; r < bh; r++) {
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = top ? top[c] : 128.0;
        }
    }
}

/* Fused residual pipeline for one coding block:
 * residual -> per-8x8 zero skip -> DCT (basis matmul) -> dead-zone
 * quantization -> zigzag run-length bit count.
 *
 * block/pred are (h, w) float64; basis is the orthonormal 8x8 DCT-II
 * matrix (row-major); zz_order maps scan position -> row-major index.
 * levels_out receives (h/8)*(w/8) blocks of 64 int32 levels in
 * blockify order (sub-block rows first).  stats_out = [total_bits,
 * num_active_blocks].  Matches the NumPy pipeline: a sub-block whose
 * residual SAD is below 3 * step provably quantizes to all zeros and
 * skips its transform.
 */
/* Reconstruction of one 8x8 sub-block from its levels and prediction.
 *
 * Replicates repro.codec.encoder.reconstruct_block: all-zero levels
 * short-circuit to rint(pred); otherwise dequantize (level * step),
 * inverse DCT (basis^T @ X @ basis) and rint(pred + residual); both
 * paths then bound to [0, 255].  rint() uses round-half-to-even like
 * np.rint.  pred strides by pstride doubles per row; out strides by
 * ostride bytes.
 */
static void recon_sub8(const int32_t *levels, const double *pred,
                       ptrdiff_t pstride, double step, const double *basis,
                       uint8_t *out, ptrdiff_t ostride)
{
    int zero = 1;
    for (int k = 0; k < 64; k++)
        if (levels[k]) {
            zero = 0;
            break;
        }
    if (zero) {
        for (int r = 0; r < 8; r++) {
            const double *pr = pred + (ptrdiff_t)r * pstride;
            uint8_t *orow = out + (ptrdiff_t)r * ostride;
            for (int c = 0; c < 8; c++) {
                double v = rint(pr[c]);
                if (v > 255.0)
                    v = 255.0;
                if (v < 0.0)
                    v = 0.0;
                orow[c] = (uint8_t)v;
            }
        }
        return;
    }
    double coef[64], tmp[64];
    for (int k = 0; k < 64; k++)
        coef[k] = (double)levels[k] * step;
    /* tmp = basis^T @ coef */
    for (int i = 0; i < 8; i++)
        for (int j = 0; j < 8; j++) {
            double acc = 0.0;
            for (int k = 0; k < 8; k++)
                acc += basis[k * 8 + i] * coef[k * 8 + j];
            tmp[i * 8 + j] = acc;
        }
    /* resid = tmp @ basis */
    for (int r = 0; r < 8; r++) {
        const double *pr = pred + (ptrdiff_t)r * pstride;
        uint8_t *orow = out + (ptrdiff_t)r * ostride;
        for (int c = 0; c < 8; c++) {
            double acc = 0.0;
            for (int k = 0; k < 8; k++)
                acc += tmp[r * 8 + k] * basis[k * 8 + c];
            double v = rint(acc + pr[c]);
            if (v > 255.0)
                v = 255.0;
            if (v < 0.0)
                v = 0.0;
            orow[c] = (uint8_t)v;
        }
    }
}

/* Reconstruction of a whole coding block (decoder and fallback path).
 * levels is the (h/8 * w/8, 8, 8) stack in blockify order; out is a
 * (h, w) uint8 buffer with out_stride bytes per row.
 */
void reconstruct_block_u8(const double *pred, const int32_t *levels,
                          int h, int w, double step, const double *basis,
                          uint8_t *out, int64_t out_stride)
{
    int rows = h / 8, cols = w / 8;
    for (int rb = 0; rb < rows; rb++)
        for (int cb = 0; cb < cols; cb++)
            recon_sub8(levels + ((ptrdiff_t)rb * cols + cb) * 64,
                       pred + ((ptrdiff_t)rb * 8) * w + cb * 8, w,
                       step, basis,
                       out + (ptrdiff_t)rb * 8 * out_stride + cb * 8,
                       out_stride);
}

/* Fully fused per-block encode: residual pipeline (zero-skip, DCT,
 * quantization, zigzag bit count) plus reconstruction written straight
 * into the frame's reconstruction plane and the SSD of the original
 * against the reconstructed samples.  recon_out points at the block's
 * top-left sample inside the plane (recon_stride bytes per row).
 * stats_out = [bits, num_active]; ssd_out[0] = sum((block - recon)^2),
 * exact in any order because both operands are integer-valued.
 */
void encode_block_fused(const double *block, const double *pred,
                        int h, int w, double step, const double *basis,
                        const int32_t *zz_order,
                        int32_t *levels_out,
                        uint8_t *recon_out, int64_t recon_stride,
                        int64_t *stats_out, double *ssd_out)
{
    int rows = h / 8, cols = w / 8;
    double res[64], tmp[64], coef[64];
    int64_t bits = 0, active = 0;
    double ssd = 0.0;
    for (int rb = 0; rb < rows; rb++) {
        for (int cb = 0; cb < cols; cb++) {
            int32_t *levels = levels_out + ((ptrdiff_t)rb * cols + cb) * 64;
            const double *bsub = block + ((ptrdiff_t)rb * 8) * w + cb * 8;
            const double *psub = pred + ((ptrdiff_t)rb * 8) * w + cb * 8;
            uint8_t *osub = recon_out + (ptrdiff_t)rb * 8 * recon_stride + cb * 8;
            double sad = 0.0;
            for (int r = 0; r < 8; r++) {
                const double *br = bsub + (ptrdiff_t)r * w;
                const double *pr = psub + (ptrdiff_t)r * w;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - pr[c];
                    res[r * 8 + c] = d;
                    sad += fabs(d);
                }
            }
            if (sad < 3.0 * step) {
                for (int k = 0; k < 64; k++)
                    levels[k] = 0;
                bits += 1; /* ue(0): all-zero block header */
            } else {
                active++;
                /* tmp = basis @ res */
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += basis[i * 8 + k] * res[k * 8 + j];
                        tmp[i * 8 + j] = acc;
                    }
                /* coef = tmp @ basis^T */
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += tmp[i * 8 + k] * basis[j * 8 + k];
                        coef[i * 8 + j] = acc;
                    }
                for (int k = 0; k < 64; k++) {
                    double c = coef[k];
                    double mag = floor(fabs(c) / step + 0.25);
                    levels[k] = c > 0.0 ? (int32_t)mag
                              : c < 0.0 ? -(int32_t)mag : 0;
                }
                int last = -1;
                for (int s = 63; s >= 0; s--)
                    if (levels[zz_order[s]] != 0) {
                        last = s;
                        break;
                    }
                bits += ue_bits((int64_t)last + 1);
                int prev = -1;
                for (int s = 0; s <= last; s++) {
                    int32_t lv = levels[zz_order[s]];
                    if (lv == 0)
                        continue;
                    bits += ue_bits((int64_t)(s - prev - 1));
                    bits += se_bits((int64_t)lv);
                    prev = s;
                }
            }
            recon_sub8(levels, psub, w, step, basis, osub, recon_stride);
            for (int r = 0; r < 8; r++) {
                const double *br = bsub + (ptrdiff_t)r * w;
                const uint8_t *orow = osub + (ptrdiff_t)r * recon_stride;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - (double)orow[c];
                    ssd += d * d;
                }
            }
        }
    }
    stats_out[0] = bits;
    stats_out[1] = active;
    ssd_out[0] = ssd;
}

void encode_residual(const double *block, const double *pred, int h, int w,
                     double step, const double *basis,
                     const int32_t *zz_order,
                     int32_t *levels_out, int64_t *stats_out)
{
    int rows = h / 8, cols = w / 8;
    double res[64], tmp[64], coef[64];
    int64_t bits = 0, active = 0;
    for (int rb = 0; rb < rows; rb++) {
        for (int cb = 0; cb < cols; cb++) {
            int32_t *levels = levels_out + ((ptrdiff_t)rb * cols + cb) * 64;
            double sad = 0.0;
            for (int r = 0; r < 8; r++) {
                const double *br = block + ((ptrdiff_t)(rb * 8 + r)) * w + cb * 8;
                const double *pr = pred + ((ptrdiff_t)(rb * 8 + r)) * w + cb * 8;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - pr[c];
                    res[r * 8 + c] = d;
                    sad += fabs(d);
                }
            }
            if (sad < 3.0 * step) {
                for (int k = 0; k < 64; k++)
                    levels[k] = 0;
                bits += 1; /* ue(0): all-zero block header */
                continue;
            }
            active++;
            /* tmp = basis @ res */
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    double acc = 0.0;
                    for (int k = 0; k < 8; k++)
                        acc += basis[i * 8 + k] * res[k * 8 + j];
                    tmp[i * 8 + j] = acc;
                }
            /* coef = tmp @ basis^T */
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    double acc = 0.0;
                    for (int k = 0; k < 8; k++)
                        acc += tmp[i * 8 + k] * basis[j * 8 + k];
                    coef[i * 8 + j] = acc;
                }
            /* dead-zone quantization (repro.codec.quant semantics) */
            for (int k = 0; k < 64; k++) {
                double c = coef[k];
                double mag = floor(fabs(c) / step + 0.25);
                levels[k] = c > 0.0 ? (int32_t)mag
                          : c < 0.0 ? -(int32_t)mag : 0;
            }
            /* zigzag run-length bit count (repro.codec.entropy) */
            int last = -1;
            for (int s = 63; s >= 0; s--)
                if (levels[zz_order[s]] != 0) {
                    last = s;
                    break;
                }
            bits += ue_bits((int64_t)last + 1);
            int prev = -1;
            for (int s = 0; s <= last; s++) {
                int32_t lv = levels[zz_order[s]];
                if (lv == 0)
                    continue;
                bits += ue_bits((int64_t)(s - prev - 1));
                bits += se_bits((int64_t)lv);
                prev = s;
            }
        }
    }
    stats_out[0] = bits;
    stats_out[1] = active;
}

/* ------------------------------------------------------------------ */
/* Motion search driver.                                               */
/*                                                                     */
/* Replicates repro.motion's SearchContext + CrossSearch /             */
/* OneAtATimeSearch / HexagonSearch evaluation-for-evaluation: the     */
/* same candidates in the same order, the same strict-< tie-breaks,    */
/* the same cost cache semantics (revisited candidates are free and    */
/* never recounted), the same INFEASIBLE = +inf convention and the     */
/* same cost arithmetic ((double)sad + lam * (double)(|dx| + |dy|)).   */
/* The cost cache is an epoch-stamped table supplied by the caller     */
/* (thread-local in Python), covering displacements in [-MS_H, MS_H]   */
/* per axis; the Python wrapper only engages the driver when the       */
/* window and seeds fit the table.                                     */
/* ------------------------------------------------------------------ */

#define MS_H 160
#define MS_DIM (2 * MS_H + 1)

typedef struct {
    const uint8_t *ref;
    ptrdiff_t rstride;
    const uint8_t *cur;
    ptrdiff_t cstride;
    int bh, bw;
    int64_t bx, by;
    int64_t ref_w, ref_h;
    int window;
    double lambda;
    double *costs;
    int64_t *stamps;
    int64_t epoch;
    int64_t evals;
} MSearch;

static double ms_eval(MSearch *s, int64_t dx, int64_t dy)
{
    size_t idx = (size_t)(dy + MS_H) * MS_DIM + (size_t)(dx + MS_H);
    if (s->stamps[idx] == s->epoch)
        return s->costs[idx];
    double cost;
    int64_t rx = s->bx + dx, ry = s->by + dy;
    if (dx < -s->window || dx > s->window || dy < -s->window || dy > s->window
        || rx < 0 || ry < 0 || rx + s->bw > s->ref_w || ry + s->bh > s->ref_h) {
        cost = INFINITY;
    } else {
        int64_t sad = sad_win_u8(s->ref + ry * s->rstride + rx, s->rstride,
                                 s->cur, s->cstride, s->bh, s->bw);
        int64_t adx = dx < 0 ? -dx : dx, ady = dy < 0 ? -dy : dy;
        cost = (double)sad + s->lambda * (double)(adx + ady);
        s->evals++;
    }
    s->stamps[idx] = s->epoch;
    s->costs[idx] = cost;
    return cost;
}

/* evaluate_many: best of the candidate list, ties toward the earlier
 * candidate; all-infeasible falls back to the zero vector. */
static double ms_eval_many(MSearch *s, const int64_t (*cands)[2], int n,
                           int64_t *bdx, int64_t *bdy)
{
    double best = INFINITY;
    int found = 0;
    for (int i = 0; i < n; i++) {
        double c = ms_eval(s, cands[i][0], cands[i][1]);
        if (c < best) {
            best = c;
            *bdx = cands[i][0];
            *bdy = cands[i][1];
            found = 1;
        }
    }
    if (!found) {
        *bdx = 0;
        *bdy = 0;
        best = ms_eval(s, 0, 0);
    }
    return best;
}

/* OneAtATimeSearch._walk: step +-1 along one axis while improving. */
static double ms_ota_walk(MSearch *s, int64_t *bdx, int64_t *bdy,
                          double best, int axis_y)
{
    int64_t sx = axis_y ? 0 : 1, sy = axis_y ? 1 : 0;
    double plus = ms_eval(s, *bdx + sx, *bdy + sy);
    double minus = ms_eval(s, *bdx - sx, *bdy - sy);
    if (plus >= best && minus >= best)
        return best;
    int64_t dir = plus < minus ? 1 : -1;
    double ahead = plus < minus ? plus : minus;
    while (ahead < best) {
        best = ahead;
        *bdx += dir * sx;
        *bdy += dir * sy;
        ahead = ms_eval(s, *bdx + dir * sx, *bdy + dir * sy);
    }
    return best;
}

static const int64_t HEX_H[6][2] = {
    {-2, 0}, {2, 0}, {-1, -2}, {1, -2}, {-1, 2}, {1, 2}};
static const int64_t HEX_V[6][2] = {
    {0, -2}, {0, 2}, {-2, -1}, {-2, 1}, {2, -1}, {2, 1}};
static const int64_t SMALL_CROSS[4][2] = {{0, -1}, {-1, 0}, {1, 0}, {0, 1}};
static const int64_t DIAG[4][2] = {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}};
static const int64_t DIAG_PLUS[8][2] = {
    {-1, -1}, {1, -1}, {-1, 1}, {1, 1}, {0, -1}, {-1, 0}, {1, 0}, {0, 1}};

/* alg: 0 = cross, 1 = one-at-a-time (param: 0 x-first, 1 y-first),
 * 2 = hexagon (param: 0 horizontal, 1 vertical, 2 rotating).
 * seeds: AMVP-style candidates probed before the pattern search (the
 * policy passes (0,0) / left MV / learned predictor; the plain path
 * passes (0,0) / start).  out_i = {best_dx, best_dy, new_evals,
 * best_sad}; out_cost[0] = rate-penalized best cost. */
void motion_search_u8(const uint8_t *ref, int64_t rstride,
                      int64_t ref_h, int64_t ref_w,
                      const uint8_t *cur, int64_t cstride,
                      int bh, int bw, int64_t bx, int64_t by,
                      int window, double lambda, int alg, int param,
                      const int64_t *seed_dx, const int64_t *seed_dy,
                      int n_seeds,
                      double *cache_costs, int64_t *cache_stamps,
                      int64_t *epoch_io,
                      int64_t *out_i, double *out_cost)
{
    MSearch s;
    s.ref = ref;
    s.rstride = rstride;
    s.cur = cur;
    s.cstride = cstride;
    s.bh = bh;
    s.bw = bw;
    s.bx = bx;
    s.by = by;
    s.ref_w = ref_w;
    s.ref_h = ref_h;
    s.window = window;
    s.lambda = lambda;
    s.costs = cache_costs;
    s.stamps = cache_stamps;
    s.epoch = ++(*epoch_io);
    s.evals = 0;

    int64_t cands[8][2];
    int64_t sdx = 0, sdy = 0;
    for (int i = 0; i < n_seeds && i < 8; i++) {
        cands[i][0] = seed_dx[i];
        cands[i][1] = seed_dy[i];
    }
    ms_eval_many(&s, (const int64_t(*)[2])cands, n_seeds, &sdx, &sdy);

    /* MotionSearch._start: best of the zero vector and the seed-best
     * (all cached at this point, so it costs no new evaluations). */
    int64_t bdx = 0, bdy = 0;
    cands[0][0] = 0;
    cands[0][1] = 0;
    cands[1][0] = sdx;
    cands[1][1] = sdy;
    double best = ms_eval_many(&s, (const int64_t(*)[2])cands, 2, &bdx, &bdy);

    if (alg == 0) { /* CrossSearch */
        int64_t step = window / 2;
        if (step < 1)
            step = 1;
        while (step > 1) {
            for (int i = 0; i < 4; i++) {
                cands[i][0] = bdx + DIAG[i][0] * step;
                cands[i][1] = bdy + DIAG[i][1] * step;
            }
            int64_t mdx = 0, mdy = 0;
            double c = ms_eval_many(&s, (const int64_t(*)[2])cands, 4,
                                    &mdx, &mdy);
            if (c < best) {
                best = c;
                bdx = mdx;
                bdy = mdy;
            } else {
                step /= 2;
            }
        }
        for (int i = 0; i < 8; i++) {
            cands[i][0] = bdx + DIAG_PLUS[i][0];
            cands[i][1] = bdy + DIAG_PLUS[i][1];
        }
        int64_t mdx = 0, mdy = 0;
        double c = ms_eval_many(&s, (const int64_t(*)[2])cands, 8, &mdx, &mdy);
        if (c < best) {
            best = c;
            bdx = mdx;
            bdy = mdy;
        }
    } else if (alg == 1) { /* OneAtATimeSearch */
        best = ms_ota_walk(&s, &bdx, &bdy, best, param);
        best = ms_ota_walk(&s, &bdx, &bdy, best, !param);
    } else { /* HexagonSearch */
        for (int it = 0; it < 256; it++) {
            const int64_t(*pat)[2] =
                param == 0 ? HEX_H
                : param == 1 ? HEX_V
                : (it % 2 == 0 ? HEX_H : HEX_V);
            for (int i = 0; i < 6; i++) {
                cands[i][0] = bdx + pat[i][0];
                cands[i][1] = bdy + pat[i][1];
            }
            int64_t mdx = 0, mdy = 0;
            double c = ms_eval_many(&s, (const int64_t(*)[2])cands, 6,
                                    &mdx, &mdy);
            if (c < best) {
                best = c;
                bdx = mdx;
                bdy = mdy;
            } else {
                break;
            }
        }
        for (int i = 0; i < 4; i++) {
            cands[i][0] = bdx + SMALL_CROSS[i][0];
            cands[i][1] = bdy + SMALL_CROSS[i][1];
        }
        int64_t mdx = 0, mdy = 0;
        double c = ms_eval_many(&s, (const int64_t(*)[2])cands, 4, &mdx, &mdy);
        if (c < best) {
            best = c;
            bdx = mdx;
            bdy = mdy;
        }
    }

    /* The best MV is always feasible (or the zero vector of an
     * in-frame block), so this SAD re-read never leaves the plane. */
    int64_t best_sad = -1;
    int64_t rx = bx + bdx, ry = by + bdy;
    if (rx >= 0 && ry >= 0 && rx + bw <= ref_w && ry + bh <= ref_h)
        best_sad = sad_win_u8(ref + ry * rstride + rx, rstride,
                              cur, cstride, bh, bw);
    out_i[0] = bdx;
    out_i[1] = bdy;
    out_i[2] = s.evals;
    out_i[3] = best_sad;
    out_cost[0] = best;
}

/* ------------------------------------------------------------------ */
/* Batch entropy writer.                                               */
/* ------------------------------------------------------------------ */

/* MSB-first bit accumulator over a caller-supplied byte buffer. */
typedef struct {
    uint8_t *buf;
    int64_t cap;     /* bytes */
    int64_t nbytes;  /* complete bytes flushed */
    uint64_t acc;
    int nbits;       /* bits pending in acc, < 8 after flush */
    int overflow;
} BitSink;

static inline void bs_put(BitSink *b, uint64_t val, int n)
{
    b->acc = (b->acc << n) | val;
    b->nbits += n;
    while (b->nbits >= 8) {
        if (b->nbytes >= b->cap) {
            b->overflow = 1;
            b->nbits = 0;
            return;
        }
        b->nbits -= 8;
        b->buf[b->nbytes++] = (uint8_t)(b->acc >> b->nbits);
    }
}

static inline void bs_put_ue(BitSink *b, int64_t value)
{
    uint64_t code = (uint64_t)value + 1;
    int bl = 64 - __builtin_clzll(code);
    if (bl > 1)
        bs_put(b, 0, bl - 1);
    bs_put(b, code, bl);
}

static inline void bs_put_se(BitSink *b, int64_t value)
{
    bs_put_ue(b, value > 0 ? 2 * value - 1 : -2 * value);
}

/* Total bits written so far (before padding), or -1 on overflow. */
static inline int64_t bs_bits(const BitSink *b)
{
    return b->overflow ? -1 : b->nbytes * 8 + b->nbits;
}

/* Pad the trailing partial byte with zeros (the caller splices exactly
 * bs_bits() bits, so the padding never reaches the stream). */
static inline void bs_flush(BitSink *b)
{
    if (b->nbits > 0 && !b->overflow) {
        if (b->nbytes >= b->cap)
            b->overflow = 1;
        else
            b->buf[b->nbytes] = (uint8_t)(b->acc << (8 - b->nbits));
    }
}

/* Emit the residual syntax of a stack of n_sub 8x8 level blocks into
 * out (MSB-first), exactly as repro.codec.entropy.write_block does per
 * block: ue(last_plus_one), then (ue(run), se(level)) per non-zero
 * level in zigzag order.  Returns the number of bits written, or -1
 * when the buffer is too small.  The produced bits splice into a
 * BitWriter with append_bits. */
int64_t entropy_write_levels(const int32_t *levels, int64_t n_sub,
                             const int32_t *zz_order,
                             uint8_t *out, int64_t cap_bytes)
{
    BitSink sink = {out, cap_bytes, 0, 0, 0, 0};
    for (int64_t blk = 0; blk < n_sub; blk++) {
        const int32_t *lv = levels + blk * 64;
        int last = -1;
        for (int s = 63; s >= 0; s--)
            if (lv[zz_order[s]] != 0) {
                last = s;
                break;
            }
        bs_put_ue(&sink, (int64_t)last + 1);
        int prev = -1;
        for (int s = 0; s <= last; s++) {
            int32_t v = lv[zz_order[s]];
            if (v == 0)
                continue;
            bs_put_ue(&sink, (int64_t)(s - prev - 1));
            bs_put_se(&sink, (int64_t)v);
            prev = s;
        }
    }
    int64_t nbits = bs_bits(&sink);
    bs_flush(&sink);
    return sink.overflow ? -1 : nbits;
}

/* ------------------------------------------------------------------ */
/* Plane-based fused kernels (v2): read the current block straight    */
/* from the uint8 frame plane (u8 -> double conversion is exact, so   */
/* the arithmetic is identical to the float64-staged path) and avoid  */
/* the per-block NumPy staging entirely.                              */
/* ------------------------------------------------------------------ */

/* choose_intra with reference samples gathered from the plane.
 *
 * Availability follows repro.codec.intra.reference_samples: the top
 * row exists when by - 1 >= tile_y, the left column when bx - 1 >=
 * tile_x (tile boundaries break prediction).  Otherwise identical to
 * choose_intra above.
 */
void choose_intra_plane_u8(const uint8_t *cur, int64_t cstride,
                           const uint8_t *recon, int64_t rstride,
                           int bh, int bw, int64_t bx, int64_t by,
                           int64_t tile_x, int64_t tile_y,
                           double *pred_out, int32_t *mode_out,
                           double *sad_out)
{
    int has_top = by - 1 >= tile_y;
    int has_left = bx - 1 >= tile_x;
    const uint8_t *top_row =
        has_top ? recon + (by - 1) * rstride + bx : NULL;
    const uint8_t *left_col =
        has_left ? recon + by * rstride + (bx - 1) : NULL;

    double s_dc = 0.0, s_pl = 0.0, s_h = 0.0, s_v = 0.0;
    double dc = 128.0;
    if (has_top || has_left) {
        double total = 0.0;
        int64_t count = 0;
        if (has_top) {
            for (int c = 0; c < bw; c++)
                total += (double)top_row[c];
            count += bw;
        }
        if (has_left) {
            for (int r = 0; r < bh; r++)
                total += (double)left_col[(ptrdiff_t)r * rstride];
            count += bh;
        }
        dc = total / (double)count;
    }
    double tr = has_top ? (double)top_row[bw - 1] : 128.0;
    double bl = has_left ? (double)left_col[(ptrdiff_t)(bh - 1) * rstride]
                         : 128.0;
    double inv_w = (double)(bw + 1);
    double inv_h = (double)(bh + 1);
    for (int r = 0; r < bh; r++) {
        const uint8_t *cr = cur + (ptrdiff_t)r * cstride;
        double *pr = pred_out + (ptrdiff_t)r * bw;
        double lv = has_left ? (double)left_col[(ptrdiff_t)r * rstride]
                             : 128.0;
        double wy = (double)(r + 1) / inv_h;
        for (int c = 0; c < bw; c++) {
            double x = (double)cr[c];
            double tv = has_top ? (double)top_row[c] : 128.0;
            double wx = (double)(c + 1) / inv_w;
            double horiz = lv * (1.0 - wx) + tr * wx;
            double vert = tv * (1.0 - wy) + bl * wy;
            double pl = (horiz + vert) / 2.0;
            pr[c] = pl;
            s_dc += fabs(x - dc);
            s_pl += fabs(x - pl);
            s_h += fabs(x - lv);
            s_v += fabs(x - tv);
        }
    }
    double sads[4] = {s_dc, s_pl, s_h, s_v};
    int best = 0;
    for (int m = 1; m < 4; m++)
        if (sads[m] < sads[best])
            best = m;
    mode_out[0] = best;
    sad_out[0] = sads[best];
    if (best == 0) {
        for (ptrdiff_t k = 0; k < (ptrdiff_t)bh * bw; k++)
            pred_out[k] = dc;
    } else if (best == 2) {
        for (int r = 0; r < bh; r++) {
            double lv = has_left ? (double)left_col[(ptrdiff_t)r * rstride]
                                 : 128.0;
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = lv;
        }
    } else if (best == 3) {
        for (int r = 0; r < bh; r++) {
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = has_top ? (double)top_row[c] : 128.0;
        }
    }
}

/* Fully fused per-block encode, v2: like encode_block_fused but the
 * current block is read from the uint8 plane, the prediction is either
 * a float64 buffer (predd, row pitch pdstride doubles: intra) or a
 * uint8 reference window (predu, row pitch pustride bytes: integer-pel
 * motion compensation — the u8 -> double conversion is exact, so the
 * residual arithmetic matches the staged float64 path bit-for-bit),
 * and the residual bits are optionally emitted into bits_buf.
 * stats_out = [bits, num_active, emitted_nbits (-1 overflow, or the
 * bit count when bits_buf is NULL)].
 */
void encode_block_fused2(const uint8_t *cur, int64_t cstride,
                         const double *predd, int64_t pdstride,
                         const uint8_t *predu, int64_t pustride,
                         int h, int w, double step, const double *basis,
                         const int32_t *zz_order,
                         int32_t *levels_out,
                         uint8_t *recon_out, int64_t recon_stride,
                         uint8_t *bits_buf, int64_t bits_cap,
                         int64_t *stats_out, double *ssd_out)
{
    int rows = h / 8, cols = w / 8;
    double res[64], tmp[64], coef[64], pred8[64];
    int64_t bits = 0, active = 0;
    double ssd = 0.0;
    BitSink sink = {bits_buf, bits_cap, 0, 0, 0, 0};
    int emit = bits_buf != NULL;
    for (int rb = 0; rb < rows; rb++) {
        for (int cb = 0; cb < cols; cb++) {
            int32_t *levels = levels_out + ((ptrdiff_t)rb * cols + cb) * 64;
            const uint8_t *csub = cur + (ptrdiff_t)rb * 8 * cstride + cb * 8;
            uint8_t *osub = recon_out
                + (ptrdiff_t)rb * 8 * recon_stride + cb * 8;
            /* Stage the 8x8 prediction as doubles (exact). */
            if (predd) {
                const double *psub =
                    predd + (ptrdiff_t)rb * 8 * pdstride + cb * 8;
                for (int r = 0; r < 8; r++)
                    for (int c = 0; c < 8; c++)
                        pred8[r * 8 + c] = psub[(ptrdiff_t)r * pdstride + c];
            } else {
                const uint8_t *psub =
                    predu + (ptrdiff_t)rb * 8 * pustride + cb * 8;
                for (int r = 0; r < 8; r++)
                    for (int c = 0; c < 8; c++)
                        pred8[r * 8 + c] =
                            (double)psub[(ptrdiff_t)r * pustride + c];
            }
            double sad = 0.0;
            for (int r = 0; r < 8; r++) {
                const uint8_t *crow = csub + (ptrdiff_t)r * cstride;
                for (int c = 0; c < 8; c++) {
                    double d = (double)crow[c] - pred8[r * 8 + c];
                    res[r * 8 + c] = d;
                    sad += fabs(d);
                }
            }
            if (sad < 3.0 * step) {
                for (int k = 0; k < 64; k++)
                    levels[k] = 0;
                bits += 1;
                if (emit)
                    bs_put_ue(&sink, 0);
            } else {
                active++;
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += basis[i * 8 + k] * res[k * 8 + j];
                        tmp[i * 8 + j] = acc;
                    }
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += tmp[i * 8 + k] * basis[j * 8 + k];
                        coef[i * 8 + j] = acc;
                    }
                for (int k = 0; k < 64; k++) {
                    double c = coef[k];
                    double mag = floor(fabs(c) / step + 0.25);
                    levels[k] = c > 0.0 ? (int32_t)mag
                              : c < 0.0 ? -(int32_t)mag : 0;
                }
                int last = -1;
                for (int s2 = 63; s2 >= 0; s2--)
                    if (levels[zz_order[s2]] != 0) {
                        last = s2;
                        break;
                    }
                bits += ue_bits((int64_t)last + 1);
                if (emit)
                    bs_put_ue(&sink, (int64_t)last + 1);
                int prev = -1;
                for (int s2 = 0; s2 <= last; s2++) {
                    int32_t lv = levels[zz_order[s2]];
                    if (lv == 0)
                        continue;
                    bits += ue_bits((int64_t)(s2 - prev - 1));
                    bits += se_bits((int64_t)lv);
                    if (emit) {
                        bs_put_ue(&sink, (int64_t)(s2 - prev - 1));
                        bs_put_se(&sink, (int64_t)lv);
                    }
                    prev = s2;
                }
            }
            recon_sub8(levels, pred8, 8, step, basis, osub, recon_stride);
            for (int r = 0; r < 8; r++) {
                const uint8_t *crow = csub + (ptrdiff_t)r * cstride;
                const uint8_t *orow = osub + (ptrdiff_t)r * recon_stride;
                for (int c = 0; c < 8; c++) {
                    double d = (double)crow[c] - (double)orow[c];
                    ssd += d * d;
                }
            }
        }
    }
    int64_t emitted = bits;
    if (emit) {
        emitted = bs_bits(&sink);
        bs_flush(&sink);
        if (sink.overflow)
            emitted = -1;
    }
    stats_out[0] = bits;
    stats_out[1] = active;
    stats_out[2] = emitted;
    ssd_out[0] = ssd;
}

/* ------------------------------------------------------------------ */
/* Integer box downscale (rendition ladder).                           */
/*                                                                     */
/* Output pixel (i, j) is the floor mean of the source box             */
/* rows [i*h/h_out, (i+1)*h/h_out) x cols [j*w/w_out, (j+1)*w/w_out),  */
/* accumulated in int64 — defined for every geometry with              */
/* h_out <= h, w_out <= w (each box holds >= 1 pixel), bit-identical   */
/* to the NumPy oracle in repro.video.scale by construction: integer   */
/* box sums are exact in any lane order, the same property that makes  */
/* the SAD tiers above dispatch freely.  Like the psadbw SAD path,     */
/* the SSE2 2x2 fast path below counts as level 0: it needs no         */
/* runtime dispatch and is always safe on x86-64.                      */
/* ------------------------------------------------------------------ */

static void downscale_box_scalar(const uint8_t *src, ptrdiff_t sstride,
                                 int64_t h, int64_t w, uint8_t *dst,
                                 int64_t h_out, int64_t w_out)
{
    for (int64_t i = 0; i < h_out; i++) {
        int64_t r0 = i * h / h_out;
        int64_t r1 = (i + 1) * h / h_out;
        uint8_t *drow = dst + (ptrdiff_t)i * w_out;
        for (int64_t j = 0; j < w_out; j++) {
            int64_t c0 = j * w / w_out;
            int64_t c1 = (j + 1) * w / w_out;
            int64_t acc = 0;
            for (int64_t r = r0; r < r1; r++) {
                const uint8_t *sr = src + (ptrdiff_t)r * sstride;
                for (int64_t c = c0; c < c1; c++)
                    acc += sr[c];
            }
            drow[j] = (uint8_t)(acc / ((r1 - r0) * (c1 - c0)));
        }
    }
}

#if REPRO_X86
/* Exact 2x downscale: widen two source rows to 16-bit, add, then
 * _mm_madd_epi16 against ones folds adjacent column pairs into the
 * 32-bit 2x2 box sums; >> 2 is the floor division by the box
 * population (always 4 here).  Max box sum 4*255 = 1020 fits 16-bit
 * lanes with room to spare. */
static void downscale_half_sse2(const uint8_t *src, ptrdiff_t sstride,
                                uint8_t *dst, int64_t h_out, int64_t w_out)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i ones = _mm_set1_epi16(1);
    for (int64_t i = 0; i < h_out; i++) {
        const uint8_t *r0 = src + (ptrdiff_t)(2 * i) * sstride;
        const uint8_t *r1 = r0 + sstride;
        uint8_t *drow = dst + (ptrdiff_t)i * w_out;
        int64_t j = 0;
        for (; j + 8 <= w_out; j += 8) {
            __m128i a = _mm_loadu_si128((const __m128i *)(r0 + 2 * j));
            __m128i b = _mm_loadu_si128((const __m128i *)(r1 + 2 * j));
            __m128i s_lo = _mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                                         _mm_unpacklo_epi8(b, zero));
            __m128i s_hi = _mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                                         _mm_unpackhi_epi8(b, zero));
            __m128i box_lo = _mm_srli_epi32(_mm_madd_epi16(s_lo, ones), 2);
            __m128i box_hi = _mm_srli_epi32(_mm_madd_epi16(s_hi, ones), 2);
            __m128i packed = _mm_packs_epi32(box_lo, box_hi);
            packed = _mm_packus_epi16(packed, packed);
            _mm_storel_epi64((__m128i *)(drow + j), packed);
        }
        for (; j < w_out; j++) {
            int64_t acc = (int64_t)r0[2 * j] + r0[2 * j + 1]
                        + (int64_t)r1[2 * j] + r1[2 * j + 1];
            drow[j] = (uint8_t)(acc / 4);
        }
    }
}
#endif

void downscale_box_u8(const uint8_t *src, int64_t sstride,
                      int64_t h, int64_t w, uint8_t *dst,
                      int64_t h_out, int64_t w_out)
{
#if REPRO_X86
    if (h == 2 * h_out && w == 2 * w_out && w_out >= 8) {
        downscale_half_sse2(src, (ptrdiff_t)sstride, dst, h_out, w_out);
        return;
    }
#endif
    downscale_box_scalar(src, (ptrdiff_t)sstride, h, w, dst, h_out, w_out);
}
