"""LUT-based workload (CPU time) estimation (paper §III-D1)."""

from repro.workload.keys import WorkloadKey, area_bucket
from repro.workload.lut import CpuTimeHistogram, WorkloadLut
from repro.workload.estimator import WorkloadEstimator

__all__ = [
    "WorkloadKey",
    "area_bucket",
    "CpuTimeHistogram",
    "WorkloadLut",
    "WorkloadEstimator",
]
