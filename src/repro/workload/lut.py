"""CPU-time histograms and the workload LUT.

"We store the histogram of the CPU time in the LUT and keep updating it
throughout the whole video encoding.  We use the stored histograms to
estimate the workload for robust thread allocation and DVFS."
(paper §III-D1)
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.workload.keys import WorkloadKey


class CpuTimeHistogram:
    """Log-spaced histogram of observed CPU times (seconds).

    Bins span ``[t_min, t_max)`` geometrically; values outside clamp to
    the edge bins.  Exact running sum/count are kept alongside so the
    mean estimate does not suffer binning error; the histogram supports
    robust quantile estimates for conservative allocation.
    """

    def __init__(
        self,
        t_min: float = 1e-6,
        t_max: float = 10.0,
        num_bins: int = 64,
    ):
        if not 0 < t_min < t_max:
            raise ValueError("need 0 < t_min < t_max")
        if num_bins < 2:
            raise ValueError("need at least 2 bins")
        self.t_min = t_min
        self.t_max = t_max
        self.num_bins = num_bins
        self._log_min = math.log(t_min)
        self._log_ratio = math.log(t_max / t_min)
        self.counts = np.zeros(num_bins, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def _bin(self, value: float) -> int:
        if value <= self.t_min:
            return 0
        if value >= self.t_max:
            return self.num_bins - 1
        frac = (math.log(value) - self._log_min) / self._log_ratio
        return min(self.num_bins - 1, int(frac * self.num_bins))

    def _bin_center(self, index: int) -> float:
        frac = (index + 0.5) / self.num_bins
        return math.exp(self._log_min + frac * self._log_ratio)

    def observe(self, cpu_time: float) -> None:
        if cpu_time < 0:
            raise ValueError("CPU time must be non-negative")
        self.counts[self._bin(cpu_time)] += 1
        self._sum += cpu_time
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._sum / self._count

    def quantile(self, q: float) -> float:
        """Approximate quantile from the histogram bins."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            raise ValueError("no observations")
        target = q * self._count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += int(c)
            if cumulative >= target:
                return self._bin_center(i)
        return self._bin_center(self.num_bins - 1)

    # -- integrity & serialization -------------------------------------
    def is_consistent(self) -> bool:
        """Internal-consistency check used to detect corrupted
        entries: bin counts must be non-negative and sum to the running
        count, and the running sum must be finite and non-negative."""
        if not math.isfinite(self._sum) or self._sum < 0:
            return False
        if self._count < 0 or (self.counts < 0).any():
            return False
        return int(self.counts.sum()) == self._count

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the histogram state."""
        return {
            "t_min": self.t_min,
            "t_max": self.t_max,
            "num_bins": self.num_bins,
            "counts": [int(c) for c in self.counts],
            "sum": self._sum,
            "count": self._count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CpuTimeHistogram":
        """Rebuild a histogram from :meth:`to_dict` output; raises
        ``ValueError``/``KeyError``/``TypeError`` on malformed data."""
        hist = cls(
            t_min=float(data["t_min"]),
            t_max=float(data["t_max"]),
            num_bins=int(data["num_bins"]),
        )
        counts = data["counts"]
        if len(counts) != hist.num_bins:
            raise ValueError("bin count mismatch")
        hist.counts = np.asarray(counts, dtype=np.int64)
        hist._sum = float(data["sum"])
        hist._count = int(data["count"])
        if not hist.is_consistent():
            raise ValueError("inconsistent histogram state")
        return hist


@dataclass
class WorkloadLut:
    """Dictionary of histograms keyed by :class:`WorkloadKey`.

    Lookups fall back to the content-class-agnostic key so that a LUT
    trained on one video of a class immediately serves other videos
    (the paper's LUT-reuse property).
    """

    tables: Dict[WorkloadKey, CpuTimeHistogram] = field(default_factory=dict)

    def observe(self, key: WorkloadKey, cpu_time: float) -> None:
        for k in (key, key.generalized()):
            hist = self.tables.get(k)
            if hist is None:
                hist = CpuTimeHistogram()
                self.tables[k] = hist
            hist.observe(cpu_time)

    def lookup(self, key: WorkloadKey) -> Optional[CpuTimeHistogram]:
        hist = self.tables.get(key)
        if hist is not None and hist.count > 0:
            return hist
        hist = self.tables.get(key.generalized())
        if hist is not None and hist.count > 0:
            return hist
        return None

    def __len__(self) -> int:
        return len(self.tables)

    # -- integrity & serialization -------------------------------------
    def validate(self) -> int:
        """Drop internally-inconsistent histograms (e.g. after in-place
        corruption); returns how many entries were removed.  Dropping
        an entry is safe: lookups fall back to the generalized key or
        the analytical seed, exactly as before the entry existed."""
        bad = [k for k, h in self.tables.items() if not h.is_consistent()]
        for k in bad:
            del self.tables[k]
        return len(bad)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot with deterministically ordered
        entries (keyed by the serialized :class:`WorkloadKey`)."""
        entries = [
            {"key": key.to_dict(), "histogram": hist.to_dict()}
            for key, hist in self.tables.items()
        ]
        entries.sort(key=lambda e: json.dumps(e["key"], sort_keys=True))
        return {"entries": entries}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadLut":
        lut = cls()
        for entry in data["entries"]:
            key = WorkloadKey.from_dict(entry["key"])
            lut.tables[key] = CpuTimeHistogram.from_dict(entry["histogram"])
        return lut
