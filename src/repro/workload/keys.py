"""LUT keys.

The paper's LUT approach works because "the proposed re-tiling approach
includes a limited number of different attainable tile structures and
numbers within a frame [and] the number of different combinations of
the encoding configurations are limited" (§III-D1).  A key therefore
combines the discrete per-tile descriptors: content class of the video,
texture/motion class of the tile, QP, search window, frame kind, and a
coarse (power-of-two) tile-area bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import FrameType
from repro.video.generator import ContentClass


def area_bucket(area: int) -> int:
    """Power-of-two bucket index of a tile area (in luma samples)."""
    if area <= 0:
        raise ValueError("area must be positive")
    return area.bit_length() - 1


@dataclass(frozen=True)
class WorkloadKey:
    """Discrete descriptor of one tile-encoding task."""

    texture: TextureClass
    motion: MotionClass
    qp: int
    search_window: int
    frame_type: FrameType
    area_bucket: int
    content_class: Optional[ContentClass] = None
    #: Output luma height of the rendition rung this task encodes
    #: (e.g. 480/360/240).  ``None`` is the legacy single-resolution
    #: key — pre-ladder checkpoints deserialize to it unchanged, and
    #: full-resolution sessions keep using it so their statistics pool
    #: with everything recorded before ladders existed.
    resolution: Optional[int] = None

    def generalized(self) -> "WorkloadKey":
        """Key with the content class erased.

        Used as a fallback: the paper notes the LUT "obtained [for] one
        MRI or CT data [applies] to the rest of images in the same
        class"; across classes, the class-agnostic statistics still
        give a first estimate before per-class data accumulates.
        """
        return WorkloadKey(
            texture=self.texture,
            motion=self.motion,
            qp=self.qp,
            search_window=self.search_window,
            frame_type=self.frame_type,
            area_bucket=self.area_bucket,
            content_class=None,
            resolution=self.resolution,
        )

    # -- serialization (LUT checkpointing) -----------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (enum names/values, not objects)."""
        return {
            "texture": self.texture.name,
            "motion": self.motion.name,
            "qp": self.qp,
            "search_window": self.search_window,
            "frame_type": self.frame_type.name,
            "area_bucket": self.area_bucket,
            "content_class": (
                None if self.content_class is None else self.content_class.value
            ),
            "resolution": self.resolution,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadKey":
        """Inverse of :meth:`to_dict`; raises ``KeyError``/``ValueError``
        on unknown enum names (treated as corruption by the checkpoint
        loader)."""
        content = data["content_class"]
        # ``get``: checkpoints written before the ladder grew the key a
        # resolution dimension stay loadable (they deserialize to the
        # legacy ``resolution=None`` keys they were recorded under).
        resolution = data.get("resolution")
        return cls(
            texture=TextureClass[data["texture"]],
            motion=MotionClass[data["motion"]],
            qp=int(data["qp"]),
            search_window=int(data["search_window"]),
            frame_type=FrameType[data["frame_type"]],
            area_bucket=int(data["area_bucket"]),
            content_class=None if content is None else ContentClass(content),
            resolution=None if resolution is None else int(resolution),
        )
