"""Workload estimator: LUT first, analytical fallback for cold start.

The estimator answers "how many CPU-seconds (at f_max) will encoding
this tile take?".  Warm paths read the LUT histograms; before any
observation exists for a key, a per-pixel analytical seed keeps the
allocator functional (the paper primes its LUT from previously
processed videos of the same body-part class — the seed plays that
role for the very first frames).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import FrameType
from repro.observability import get_registry
from repro.workload.keys import WorkloadKey
from repro.workload.lut import WorkloadLut


@dataclass(frozen=True)
class SeedModel:
    """Analytical per-pixel CPU-time seed (seconds per luma sample).

    The defaults approximate the substrate cost model's behaviour at
    f_max: inter frames are dominated by motion estimation, whose cost
    grows with the search window; texture raises entropy/transform
    cost; high motion raises the number of search iterations.
    """

    base_per_pixel: float = 2.0e-8
    window_weight: float = 1.5e-9
    texture_weight: float = 0.5
    motion_weight: float = 0.8
    intra_factor: float = 0.6

    def estimate(self, key: WorkloadKey, area: int) -> float:
        per_pixel = self.base_per_pixel
        if key.frame_type is FrameType.P:
            per_pixel += self.window_weight * key.search_window
            per_pixel *= 1.0 + self.motion_weight * int(key.motion is MotionClass.HIGH)
        else:
            per_pixel *= self.intra_factor
        per_pixel *= 1.0 + self.texture_weight * int(key.texture) / 2.0
        # Lower QP -> more coefficients survive -> more entropy work.
        per_pixel *= 1.0 + (42 - key.qp) / 40.0
        return per_pixel * area


class WorkloadEstimator:
    """LUT-backed workload estimation with quantile control.

    ``quantile=None`` estimates with the histogram mean; a quantile
    (e.g. 0.9) gives conservative estimates for tight framerate
    guarantees.
    """

    def __init__(
        self,
        lut: Optional[WorkloadLut] = None,
        seed: SeedModel = SeedModel(),
        quantile: Optional[float] = None,
    ):
        self.lut = lut if lut is not None else WorkloadLut()
        self.seed = seed
        self.quantile = quantile
        # One estimator is shared by every session of a serving
        # process; with a multi-thread encode pool the histogram
        # read-modify-writes in ``observe`` need mutual exclusion.
        self._observe_lock = threading.Lock()

    def estimate(self, key: WorkloadKey, area: int) -> float:
        """Estimated CPU time (seconds at f_max) for one tile encode."""
        hist = self.lut.lookup(key)
        get_registry().inc(
            "repro_lut_lookups_total",
            result="miss" if hist is None else "hit",
            help="Workload-LUT lookups by outcome",
        )
        if hist is None:
            return self.seed.estimate(key, area)
        if self.quantile is None:
            return hist.mean
        return hist.quantile(self.quantile)

    def observe(self, key: WorkloadKey, cpu_time: float) -> None:
        """Record a measured tile CPU time after the frame retires."""
        with self._observe_lock:
            self.lut.observe(key, cpu_time)
        get_registry().inc(
            "repro_lut_updates_total",
            help="Workload-LUT histogram updates",
        )

    def estimation_error(self, key: WorkloadKey, area: int, actual: float) -> float:
        """Signed over(+)/under(-) estimation for diagnostics/tests."""
        return self.estimate(key, area) - actual
