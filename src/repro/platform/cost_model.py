"""Operation-count to CPU-time cost model.

The paper measures the wall-clock CPU time of encoder threads on a Xeon
E5-2667.  A pure-Python encoder is orders of magnitude slower than
Kvazaar, so timing it directly would be meaningless (repro band:
"too slow for online transcoding; only simulation possible").  Instead
the encoder reports exact elementary-operation counts
(:class:`~repro.codec.ops.OpCounts`) and this model converts them to
cycles::

    cycles = w_sad * sad_pixel_ops + w_cand * me_candidates
           + w_xf * transform_blocks + w_q * quant_coeffs
           + w_e * entropy_bits + w_p * pred_pixels

    seconds(f) = cycles / f

The default weights are calibrated so that one 640x480 P frame encoded
with the default hexagon search takes a few tens of milliseconds of
CPU time at 3.6 GHz — matching the scale of the paper's Fig. 3, where
a VGA frame costs ~0.17 s across 5 tiles at 24 fps.  Only *relative*
costs matter for every reproduced result (speedup ratios, core counts,
power savings), so the calibration constant is a scale knob, not a
validity condition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.ops import OpCounts


@dataclass(frozen=True)
class CostWeights:
    """Cycles per elementary operation.

    Calibrated (see DESIGN.md) so a 640x480 frame encoded by the [19]
    baseline costs ~0.08 s at 3.6 GHz — two cores per user at 24 fps,
    reproducing Table II's 16 baseline users on 32 cores — while the
    proposed pipeline's content-aware configuration lands at ~0.05 s
    (~1.2 cores per user, ~26 users), the paper's 1.6x.
    """

    sad_pixel: float = 46.0
    me_candidate: float = 310.0
    transform_block: float = 18600.0
    quant_coeff: float = 31.0
    entropy_bit: float = 46.0
    pred_pixel: float = 23.0

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"weight {name} must be non-negative")


class CostModel:
    """Converts operation counts into cycles, seconds and CPU time."""

    def __init__(self, weights: CostWeights = CostWeights()):
        self.weights = weights

    def cycles(self, ops: OpCounts) -> float:
        w = self.weights
        return (
            w.sad_pixel * ops.sad_pixel_ops
            + w.me_candidate * ops.me_candidates
            + w.transform_block * ops.transform_blocks
            + w.quant_coeff * ops.quant_coeffs
            + w.entropy_bit * ops.entropy_bits
            + w.pred_pixel * ops.pred_pixels
        )

    def seconds(self, ops: OpCounts, frequency_hz: float) -> float:
        """CPU time of an encode unit at a given core frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles(ops) / frequency_hz
