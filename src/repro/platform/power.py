"""Per-core power model.

Classic CMOS decomposition: ``P(f) = P_static + C_eff * V(f)^2 * f``
while busy, ``P_idle`` while idle (clock-gated).  The voltage/frequency
pairs approximate a Xeon E5-2667's P-states at the paper's three
operating points.  Defaults put a busy core at f_max near 12 W —
consistent with a 135 W TDP for 8 cores plus uncore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


GHZ = 1e9

#: Default voltage (V) per frequency (Hz) operating point.
DEFAULT_VF_POINTS: Dict[float, float] = {
    2.9 * GHZ: 0.95,
    3.2 * GHZ: 1.05,
    3.6 * GHZ: 1.20,
}


@dataclass
class PowerModel:
    """CMOS-style core power model.

    Attributes
    ----------
    vf_points:
        Supported (frequency -> voltage) operating points.
    c_eff:
        Effective switched capacitance (F) scaled so that
        ``c_eff * V(f_max)^2 * f_max`` is the dynamic power at f_max.
    p_static:
        Leakage power while the core is powered (W).
    p_idle:
        Power while idle/clock-gated (W).
    """

    vf_points: Dict[float, float] = field(
        default_factory=lambda: dict(DEFAULT_VF_POINTS)
    )
    c_eff: float = 1.74e-9  # ~9 W dynamic at 3.6 GHz / 1.20 V
    p_static: float = 3.0
    p_idle: float = 1.5

    def __post_init__(self) -> None:
        if not self.vf_points:
            raise ValueError("need at least one V/f point")
        if min(self.vf_points) <= 0 or min(self.vf_points.values()) <= 0:
            raise ValueError("frequencies and voltages must be positive")
        if self.c_eff < 0 or self.p_static < 0 or self.p_idle < 0:
            raise ValueError("power parameters must be non-negative")

    def voltage(self, frequency_hz: float) -> float:
        try:
            return self.vf_points[frequency_hz]
        except KeyError:
            known = sorted(f / GHZ for f in self.vf_points)
            raise ValueError(
                f"unsupported frequency {frequency_hz / GHZ:.2f} GHz; "
                f"supported: {known} GHz"
            ) from None

    def busy_power(self, frequency_hz: float) -> float:
        """Power (W) of a core actively executing at ``frequency_hz``."""
        v = self.voltage(frequency_hz)
        return self.p_static + self.c_eff * v * v * frequency_hz

    def energy(
        self, busy_seconds: float, frequency_hz: float, idle_seconds: float = 0.0
    ) -> float:
        """Energy (J) of a busy interval plus an idle interval."""
        if busy_seconds < 0 or idle_seconds < 0:
            raise ValueError("durations must be non-negative")
        return (
            busy_seconds * self.busy_power(frequency_hz)
            + idle_seconds * self.p_idle
        )
