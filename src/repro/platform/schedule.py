"""Time-slot schedules.

The paper's allocator works in slots of ``1/FPS`` seconds: threads
(tiles) are packed onto cores against the slot capacity, then each core
gets a DVFS setting (Algorithm 2, lines 16-24): a core whose load fits
in the slot runs its work and spends the slack at the minimum
frequency; an overloaded core stays at f_max and carries the remaining
CPU time into the next slot.

Two DVFS policies are provided:

* ``RACE_TO_IDLE`` — the literal Algorithm 2: busy at f_max, slack
  idles at min(F).
* ``STRETCH`` — run the whole slot at the lowest frequency that still
  fits the load (a common alternative; exposed for the ablation bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.platform.mpsoc import MpsocConfig
from repro.platform.power import PowerModel
from repro.resilience.errors import AllocationError


@dataclass(frozen=True)
class ThreadTask:
    """One encoding thread (a tile of one user's current frame).

    ``cpu_time_fmax`` is the task's CPU demand in seconds when executed
    at f_max (the paper's ``T^i_{fmax,j}``).
    """

    thread_id: int
    user_id: int
    cpu_time_fmax: float
    tile_index: int = 0

    def __post_init__(self) -> None:
        if self.cpu_time_fmax < 0:
            raise ValueError("cpu_time_fmax must be non-negative")


class DvfsPolicy(enum.Enum):
    RACE_TO_IDLE = "race_to_idle"
    STRETCH = "stretch"
    #: Active cores hold f_max busy power for the whole slot.  Models
    #: the [19] baseline: its tiles are sized to "completely utilize a
    #: core's capacity" and its re-tiling/DVFS trigger ("once the
    #: frequency of all cores is set to the minimum or maximum value")
    #: practically never fires, so used cores never enter a low-power
    #: state (the inefficiency the paper's Fig. 4 quantifies).
    ALWAYS_ON = "always_on"


@dataclass
class CoreSlot:
    """One core's plan for one time slot."""

    core_id: int
    tasks: List[ThreadTask] = field(default_factory=list)
    carry_in_fmax: float = 0.0  # CPU time (at f_max) left over from last slot

    @property
    def load_fmax(self) -> float:
        """Total CPU demand at f_max, including carry-in."""
        return self.carry_in_fmax + sum(t.cpu_time_fmax for t in self.tasks)

    def assign(self, task: ThreadTask) -> None:
        self.tasks.append(task)


@dataclass
class CorePlan:
    """Resolved DVFS plan for one core slot."""

    core_id: int
    busy_seconds: float
    busy_frequency_hz: float
    idle_seconds: float
    carry_out_fmax: float

    @property
    def is_active(self) -> bool:
        return self.busy_seconds > 0


class SlotSchedule:
    """A complete slot: per-core task lists plus DVFS plans."""

    def __init__(
        self,
        slots: Sequence[CoreSlot],
        slot_duration: float,
        platform: MpsocConfig,
        policy: DvfsPolicy = DvfsPolicy.RACE_TO_IDLE,
    ):
        if slot_duration <= 0:
            raise ValueError("slot duration must be positive")
        self.slots = list(slots)
        self.slot_duration = slot_duration
        self.platform = platform
        self.policy = policy
        self._validate()

    def _validate(self) -> None:
        seen = set()
        for slot in self.slots:
            for task in slot.tasks:
                key = (task.user_id, task.thread_id)
                if key in seen:
                    raise ValueError(f"task {key} assigned to multiple cores")
                seen.add(key)

    # ------------------------------------------------------------------
    def has_core(self, core_id: int) -> bool:
        return any(s.core_id == core_id for s in self.slots)

    def evict_core(self, core_id: int) -> List[ThreadTask]:
        """Remove a failed core's slot and return its orphaned threads.

        Carry-in work of the failed core is lost with it (the partial
        frame cannot be resumed on another core mid-slot); the caller
        re-places the returned threads and re-checks capacity.
        """
        for i, slot in enumerate(self.slots):
            if slot.core_id == core_id:
                del self.slots[i]
                return list(slot.tasks)
        raise AllocationError(f"core {core_id} not in schedule")

    def remove_user(self, user_id: int) -> int:
        """Strip every thread of one user (shedding); returns how many
        threads were removed."""
        removed = 0
        for slot in self.slots:
            kept = [t for t in slot.tasks if t.user_id != user_id]
            removed += len(slot.tasks) - len(kept)
            slot.tasks = kept
        return removed

    # ------------------------------------------------------------------
    def plan(self, slot: CoreSlot) -> CorePlan:
        """Resolve the DVFS plan of one core for this slot."""
        f_max = self.platform.f_max
        f_min = self.platform.f_min
        load = slot.load_fmax
        duration = self.slot_duration
        if load <= 0:
            return CorePlan(slot.core_id, 0.0, f_max, duration, 0.0)

        if self.policy is DvfsPolicy.ALWAYS_ON:
            # The core burns busy power for the whole slot regardless
            # of its actual load; excess load still carries over.
            carry = max(0.0, load - duration)
            return CorePlan(slot.core_id, duration, f_max, 0.0, carry)

        if self.policy is DvfsPolicy.STRETCH:
            # Lowest frequency whose stretched runtime still fits.
            for f in self.platform.frequencies_hz:
                stretched = load * f_max / f
                if stretched <= duration:
                    return CorePlan(slot.core_id, stretched, f, duration - stretched, 0.0)
            # Does not fit even at f_max: run flat out, carry the rest.
            executed = duration * 1.0  # seconds busy at f_max
            carry = load - duration
            return CorePlan(slot.core_id, duration, f_max, 0.0, carry)

        # RACE_TO_IDLE (Algorithm 2 lines 16-24).
        if load <= duration:
            return CorePlan(slot.core_id, load, f_max, duration - load, 0.0)
        return CorePlan(slot.core_id, duration, f_max, 0.0, load - duration)

    def plans(self) -> List[CorePlan]:
        return [self.plan(s) for s in self.slots]

    # ------------------------------------------------------------------
    @property
    def active_cores(self) -> int:
        """Cores with any work this slot."""
        return sum(1 for s in self.slots if s.load_fmax > 0)

    @property
    def cores_at_fmax_whole_slot(self) -> int:
        """Cores busy for the entire slot at f_max (no slack)."""
        return sum(
            1
            for p in self.plans()
            if p.busy_frequency_hz == self.platform.f_max
            and p.busy_seconds >= self.slot_duration * (1 - 1e-9)
        )

    def total_carry_out(self) -> Dict[int, float]:
        return {p.core_id: p.carry_out_fmax for p in self.plans() if p.carry_out_fmax > 0}

    def energy(self, power_model: PowerModel, include_unused_cores: bool = True) -> float:
        """Energy (J) consumed during the slot.

        ``include_unused_cores=True`` charges idle power for platform
        cores that received no work — the whole-server view used when
        comparing approaches at equal user counts (paper Fig. 4).
        """
        total = 0.0
        for p in self.plans():
            if p.busy_seconds > 0:
                total += power_model.energy(
                    p.busy_seconds, p.busy_frequency_hz, p.idle_seconds
                )
            else:
                total += power_model.p_idle * self.slot_duration
        if include_unused_cores:
            unused = self.platform.num_cores - len(self.slots)
            if unused > 0:
                total += unused * power_model.p_idle * self.slot_duration
        return total

    def energy_by_core(self, power_model: PowerModel,
                       include_unused_cores: bool = True
                       ) -> Dict[int, float]:
        """Per-core energy (J) breakdown of :meth:`energy`.

        The values sum to exactly what :meth:`energy` returns for the
        same ``include_unused_cores`` flag; with it set, platform cores
        that received no slot appear with their idle energy.
        """
        by_core: Dict[int, float] = {}
        for p in self.plans():
            if p.busy_seconds > 0:
                by_core[p.core_id] = power_model.energy(
                    p.busy_seconds, p.busy_frequency_hz, p.idle_seconds
                )
            else:
                by_core[p.core_id] = power_model.p_idle * self.slot_duration
        if include_unused_cores:
            for core_id in range(self.platform.num_cores):
                if core_id not in by_core:
                    by_core[core_id] = power_model.p_idle * self.slot_duration
        return by_core

    def average_power(self, power_model: PowerModel,
                      include_unused_cores: bool = True) -> float:
        """Mean power (W) over the slot."""
        return self.energy(power_model, include_unused_cores) / self.slot_duration
