"""MPSoC platform substrate: operation-count cost model, DVFS levels,
power model, and time-slot schedules.

Substitutes for the paper's Intel Xeon E5-2667 server (4 sockets x 8
cores, DVFS levels {2.9, 3.2, 3.6} GHz, 10 us transition latency).  The
paper measures CPU time of encoder threads; here the encoder's exact
operation counts are converted to cycles and seconds by a calibrated
cost model (see DESIGN.md's substitution table).
"""

from repro.platform.cost_model import CostModel, CostWeights
from repro.platform.power import PowerModel
from repro.platform.mpsoc import MpsocConfig, Mpsoc, XEON_E5_2667
from repro.platform.schedule import ThreadTask, CoreSlot, SlotSchedule

__all__ = [
    "CostModel",
    "CostWeights",
    "PowerModel",
    "MpsocConfig",
    "Mpsoc",
    "XEON_E5_2667",
    "ThreadTask",
    "CoreSlot",
    "SlotSchedule",
]
