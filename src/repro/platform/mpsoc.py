"""MPSoC platform description.

Models the paper's experimental server: four 8-core Intel Xeon E5-2667
processors with per-core DVFS over {2.9, 3.2, 3.6} GHz and 10 us
transition latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.platform.power import GHZ, PowerModel


@dataclass(frozen=True)
class MpsocConfig:
    """Static platform parameters."""

    num_sockets: int = 4
    cores_per_socket: int = 8
    frequencies_hz: Tuple[float, ...] = (2.9 * GHZ, 3.2 * GHZ, 3.6 * GHZ)
    dvfs_latency_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.num_sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("socket/core counts must be positive")
        if not self.frequencies_hz:
            raise ValueError("need at least one frequency level")
        if sorted(self.frequencies_hz) != list(self.frequencies_hz):
            raise ValueError("frequencies must be ascending")
        if self.dvfs_latency_s < 0:
            raise ValueError("DVFS latency must be non-negative")

    @property
    def num_cores(self) -> int:
        return self.num_sockets * self.cores_per_socket

    @property
    def f_min(self) -> float:
        return self.frequencies_hz[0]

    @property
    def f_max(self) -> float:
        return self.frequencies_hz[-1]


#: The paper's platform.
XEON_E5_2667 = MpsocConfig()


@dataclass
class Core:
    """One physical core with its current DVFS setting."""

    core_id: int
    socket_id: int
    frequency_hz: float

    def set_frequency(self, frequency_hz: float, config: MpsocConfig) -> None:
        if frequency_hz not in config.frequencies_hz:
            raise ValueError(
                f"frequency {frequency_hz} not an available level "
                f"{config.frequencies_hz}"
            )
        self.frequency_hz = frequency_hz


class Mpsoc:
    """A multiprocessor system-on-chip instance."""

    def __init__(
        self,
        config: MpsocConfig = XEON_E5_2667,
        power_model: PowerModel = None,
    ):
        self.config = config
        self.power_model = power_model if power_model is not None else PowerModel()
        self.cores: List[Core] = [
            Core(
                core_id=i,
                socket_id=i // config.cores_per_socket,
                frequency_hz=config.f_max,
            )
            for i in range(config.num_cores)
        ]

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def set_all_frequencies(self, frequency_hz: float) -> None:
        for core in self.cores:
            core.set_frequency(frequency_hz, self.config)
