"""HEVC-like block codec substrate.

A pure-Python/numpy stand-in for Kvazaar [23], the open-source HEVC
encoder the paper builds on.  It is a genuine codec — it produces a
decodable bitstream and reconstructs frames through the same
prediction/transform/quantization loop a conformant encoder uses — but
simplified where HEVC's full generality does not affect the paper's
mechanisms (see DESIGN.md):

* 16x16 coding blocks (HEVC CTUs are up to 64x64) with 8x8 transforms;
* intra prediction: DC / planar / horizontal / vertical;
* inter prediction: integer-pel motion compensation from one reference;
* flat quantization with the HEVC QP-to-step law ``Qstep = 2^((QP-4)/6)``;
* zigzag + run-length + exp-Golomb entropy coding (HEVC uses CABAC; the
  rate *ordering* across QPs and content is what matters here).

Every encode call returns exact operation counts that feed the MPSoC
cost model (``repro.platform``).
"""

from repro.codec.config import EncoderConfig, GopConfig, FrameType
from repro.codec.encoder import (
    TileEncoder,
    FrameEncoder,
    FrameCodec,
    ChromaStats,
    VideoEncoder,
    TileStats,
    FrameStats,
    SequenceStats,
)
from repro.codec.decoder import FrameDecoder
from repro.codec.ops import OpCounts
from repro.codec.bitstream import BitReader, BitWriter

__all__ = [
    "EncoderConfig",
    "GopConfig",
    "FrameType",
    "TileEncoder",
    "FrameEncoder",
    "FrameCodec",
    "ChromaStats",
    "VideoEncoder",
    "TileStats",
    "FrameStats",
    "SequenceStats",
    "FrameDecoder",
    "OpCounts",
    "BitReader",
    "BitWriter",
]
