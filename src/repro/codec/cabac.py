"""Context-adaptive binary arithmetic coding (CABAC-style).

HEVC's entropy stage is CABAC; the substrate's default backend is the
simpler run-length/exp-Golomb scheme (:mod:`repro.codec.entropy`),
whose rate has the right *dependences* for the paper's mechanisms.
This module provides the real thing as an extension: a binary range
coder with adaptive probability contexts, plus a coefficient-block
binarization, so the rate advantage of context modelling can be
measured (see ``benchmarks/test_entropy_backends.py``).

Components
----------
* :class:`ProbabilityModel` — one adaptive binary context
  (exponentially-decaying frequency estimate, as in CABAC's state
  machine but in direct probability form).
* :class:`BinaryArithmeticEncoder` / :class:`BinaryArithmeticDecoder` —
  a 32-bit range coder with byte renormalisation; supports *bypass*
  bins (fixed p=0.5) like CABAC.
* :class:`CoefficientCabac` — significance/level/sign binarization of
  zigzag-scanned quantized coefficient blocks, mirrored exactly by the
  decoder; round-trip verified in the tests.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

#: Range-coder precision.
_TOP = 1 << 24
_BOT = 1 << 16


class ProbabilityModel:
    """An adaptive binary context.

    Keeps P(bin = 1) as a fixed-point probability in ``[p_min, 1 -
    p_min]``, updated multiplicatively toward each observed bin — the
    direct-probability equivalent of CABAC's 64-state machine.
    """

    __slots__ = ("p_one", "adapt_rate", "p_min")

    def __init__(self, p_one: float = 0.5, adapt_rate: float = 0.05,
                 p_min: float = 1e-3):
        if not 0 < p_one < 1:
            raise ValueError("p_one must be in (0, 1)")
        if not 0 < adapt_rate < 1:
            raise ValueError("adapt_rate must be in (0, 1)")
        self.p_one = p_one
        self.adapt_rate = adapt_rate
        self.p_min = p_min

    def update(self, bin_value: int) -> None:
        target = 1.0 if bin_value else 0.0
        self.p_one += self.adapt_rate * (target - self.p_one)
        self.p_one = min(max(self.p_one, self.p_min), 1.0 - self.p_min)

    def bits_of(self, bin_value: int) -> float:
        """Information content of coding ``bin_value`` now (fractional
        bits) — the rate-estimation path real encoders use for RDO."""
        p = self.p_one if bin_value else 1.0 - self.p_one
        return -math.log2(p)


class BinaryArithmeticEncoder:
    """32-bit range coder for binary decisions."""

    def __init__(self) -> None:
        self._low = 0
        self._range = 0xFFFFFFFF
        self._bytes = bytearray()

    def _renormalize(self) -> None:
        while True:
            if self._low ^ (self._low + self._range) < _TOP:
                pass  # top byte settled: emit it
            elif self._range < _BOT:
                # Underflow: force-emit with a straddling range.
                self._range = (-self._low) & (_BOT - 1)
            else:
                break
            self._bytes.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & 0xFFFFFFFF
            self._range = (self._range << 8) & 0xFFFFFFFF

    def encode(self, bin_value: int, model: Optional[ProbabilityModel] = None) -> None:
        """Encode one bin with a context (or bypass when ``None``)."""
        p_one = model.p_one if model is not None else 0.5
        split = max(1, min(self._range - 1, int(self._range * (1.0 - p_one))))
        if bin_value:
            self._low = (self._low + split) & 0xFFFFFFFF
            self._range -= split
        else:
            self._range = split
        if model is not None:
            model.update(bin_value)
        self._renormalize()

    def finish(self) -> bytes:
        """Flush the coder; returns the complete byte stream."""
        for _ in range(4):
            self._bytes.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & 0xFFFFFFFF
        return bytes(self._bytes)


class BinaryArithmeticDecoder:
    """Mirror of :class:`BinaryArithmeticEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = 0xFFFFFFFF
        self._code = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & 0xFFFFFFFF

    def _next_byte(self) -> int:
        byte = self._data[self._pos] if self._pos < len(self._data) else 0
        self._pos += 1
        return byte

    def _renormalize(self) -> None:
        while True:
            if self._low ^ (self._low + self._range) < _TOP:
                pass
            elif self._range < _BOT:
                self._range = (-self._low) & (_BOT - 1)
            else:
                break
            self._code = ((self._code << 8) | self._next_byte()) & 0xFFFFFFFF
            self._low = (self._low << 8) & 0xFFFFFFFF
            self._range = (self._range << 8) & 0xFFFFFFFF

    def decode(self, model: Optional[ProbabilityModel] = None) -> int:
        p_one = model.p_one if model is not None else 0.5
        split = max(1, min(self._range - 1, int(self._range * (1.0 - p_one))))
        offset = (self._code - self._low) & 0xFFFFFFFF
        if offset >= split:
            bin_value = 1
            self._low = (self._low + split) & 0xFFFFFFFF
            self._range -= split
        else:
            bin_value = 0
            self._range = split
        if model is not None:
            model.update(bin_value)
        self._renormalize()
        return bin_value


class CoefficientContexts:
    """Context set for coefficient-block coding.

    Contexts mirror HEVC's grouping: significance contexts by coarse
    scan region (DC / low / high frequency), a last-position context
    per region, and "level greater than k" contexts.
    """

    NUM_REGIONS = 3

    def __init__(self) -> None:
        self.significant = [ProbabilityModel(0.4) for _ in range(self.NUM_REGIONS)]
        self.last = [ProbabilityModel(0.2) for _ in range(self.NUM_REGIONS)]
        self.greater1 = ProbabilityModel(0.35)
        self.greater2 = ProbabilityModel(0.3)

    @staticmethod
    def region(position: int) -> int:
        if position == 0:
            return 0
        return 1 if position < 16 else 2


class CoefficientCabac:
    """Binarization of zigzag coefficient vectors over a shared context
    set; encode/decode are exact mirrors."""

    def __init__(self, contexts: Optional[CoefficientContexts] = None):
        self.contexts = contexts or CoefficientContexts()

    # -- encode --------------------------------------------------------
    def encode_block(self, enc: BinaryArithmeticEncoder,
                     zigzag_levels: np.ndarray) -> None:
        ctx = self.contexts
        levels = np.asarray(zigzag_levels)
        nonzero = np.flatnonzero(levels)
        length = len(levels)
        if nonzero.size == 0:
            # coded-block flag = 0 (reuse the DC significance context).
            enc.encode(0, ctx.significant[0])
            return
        enc.encode(1, ctx.significant[0])
        last = int(nonzero[-1])
        for pos in range(length):
            region = ctx.region(pos)
            sig = 1 if levels[pos] != 0 else 0
            enc.encode(sig, ctx.significant[region])
            if sig:
                self._encode_level(enc, int(levels[pos]))
                is_last = 1 if pos == last else 0
                enc.encode(is_last, ctx.last[region])
                if is_last:
                    break

    def _encode_level(self, enc: BinaryArithmeticEncoder, level: int) -> None:
        ctx = self.contexts
        magnitude = abs(level)
        enc.encode(1 if magnitude > 1 else 0, ctx.greater1)
        if magnitude > 1:
            enc.encode(1 if magnitude > 2 else 0, ctx.greater2)
            if magnitude > 2:
                self._encode_bypass_eg0(enc, magnitude - 3)
        enc.encode(1 if level < 0 else 0, None)  # sign: bypass

    def _encode_bypass_eg0(self, enc: BinaryArithmeticEncoder, value: int) -> None:
        """Exp-Golomb-0 in bypass bins."""
        code = value + 1
        length = code.bit_length()
        for _ in range(length - 1):
            enc.encode(0, None)
        for shift in range(length - 1, -1, -1):
            enc.encode((code >> shift) & 1, None)

    # -- decode --------------------------------------------------------
    def decode_block(self, dec: BinaryArithmeticDecoder, length: int) -> np.ndarray:
        ctx = self.contexts
        levels = np.zeros(length, dtype=np.int32)
        if dec.decode(ctx.significant[0]) == 0:
            return levels
        pos = 0
        while pos < length:
            region = ctx.region(pos)
            sig = dec.decode(ctx.significant[region])
            if sig:
                levels[pos] = self._decode_level(dec)
                if dec.decode(ctx.last[region]):
                    break
            pos += 1
        return levels

    def _decode_level(self, dec: BinaryArithmeticDecoder) -> int:
        ctx = self.contexts
        magnitude = 1
        if dec.decode(ctx.greater1):
            magnitude = 2
            if dec.decode(ctx.greater2):
                magnitude = 3 + self._decode_bypass_eg0(dec)
        sign = dec.decode(None)
        return -magnitude if sign else magnitude

    def _decode_bypass_eg0(self, dec: BinaryArithmeticDecoder) -> int:
        zeros = 0
        while dec.decode(None) == 0:
            zeros += 1
            if zeros > 64:
                raise ValueError("malformed bypass exp-Golomb code")
        value = 1
        for _ in range(zeros):
            value = (value << 1) | dec.decode(None)
        return value - 1

    # -- rate estimation -------------------------------------------------
    def estimate_block_bits(self, zigzag_levels: np.ndarray) -> float:
        """Fractional-bit estimate of coding the block *and* adapt the
        contexts, without producing bytes (the RDO rate path)."""
        ctx = self.contexts
        levels = np.asarray(zigzag_levels)
        nonzero = np.flatnonzero(levels)
        bits = 0.0

        def coded(model: Optional[ProbabilityModel], bin_value: int) -> float:
            if model is None:
                return 1.0
            b = model.bits_of(bin_value)
            model.update(bin_value)
            return b

        if nonzero.size == 0:
            return coded(ctx.significant[0], 0)
        bits += coded(ctx.significant[0], 1)
        last = int(nonzero[-1])
        for pos in range(len(levels)):
            region = ctx.region(pos)
            sig = 1 if levels[pos] != 0 else 0
            bits += coded(ctx.significant[region], sig)
            if sig:
                magnitude = abs(int(levels[pos]))
                bits += coded(ctx.greater1, 1 if magnitude > 1 else 0)
                if magnitude > 1:
                    bits += coded(ctx.greater2, 1 if magnitude > 2 else 0)
                    if magnitude > 2:
                        bits += 2 * ((magnitude - 2).bit_length()) - 1
                bits += 1.0  # sign (bypass)
                is_last = 1 if pos == last else 0
                bits += coded(ctx.last[region], is_last)
                if is_last:
                    break
        return bits
