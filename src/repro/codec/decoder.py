"""Frame decoder.

Parses the bitstream produced by :class:`~repro.codec.encoder.FrameEncoder`
and reconstructs frames through the identical prediction /
dequantization / inverse-transform path
(:func:`~repro.codec.encoder.reconstruct_block`), so encoder-side and
decoder-side reconstructions match bit-exactly — verified by the
round-trip tests.

As in HEVC, the tile layout and per-tile QPs travel out-of-band
(parameter-set style): the decoder receives the same
:class:`~repro.tiling.tile.TileGrid` and configs the encoder used.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.codec.bitstream import BitReader
from repro.codec.chroma import BlockInfo, decode_chroma_plane
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.encoder import normalize_references, reconstruct_block
from repro.codec.interpolate import sample_halfpel, upsample2x_cached
from repro.codec.entropy import read_block
from repro.codec.inter import motion_compensate, read_mvd
from repro.codec.intra import IntraMode, predict, reference_samples
from repro.codec.transform import TRANSFORM_SIZE
from repro.codec.zigzag import zigzag_unscan
from repro.tiling.tile import Tile, TileGrid
from repro.video.frame import Frame

_FRAME_TYPE_BY_CODE = {0: FrameType.I, 1: FrameType.P, 2: FrameType.B}


class FrameDecoder:
    """Decodes one frame from a bitstream reader."""

    def decode(
        self,
        reader: BitReader,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        reference=None,
        block_infos_out: Optional[List[List[BlockInfo]]] = None,
    ) -> np.ndarray:
        """Decode the next frame; returns the reconstructed luma plane.

        ``reference`` accepts a single reconstructed plane or a
        sequence of planes, most recent first (two are used for B
        frames), mirroring the encoder.
        """
        if len(configs) != len(grid):
            raise ValueError(f"{len(configs)} configs for {len(grid)} tiles")
        code = reader.read_bits(2)
        try:
            frame_type = _FRAME_TYPE_BY_CODE[code]
        except KeyError:
            raise ValueError(f"invalid frame-type code {code}") from None
        references = normalize_references(reference, frame_type)
        upsampled = None
        if frame_type is not FrameType.I and any(c.half_pel for c in configs):
            upsampled = [upsample2x_cached(r) for r in references]
        reconstruction = np.zeros(
            (grid.frame_height, grid.frame_width), dtype=np.uint8
        )
        for tile, config in zip(grid, configs):
            info_sink: Optional[List[BlockInfo]] = None
            if block_infos_out is not None:
                info_sink = []
                block_infos_out.append(info_sink)
            self._decode_tile(
                reader, tile, config, frame_type, references, reconstruction,
                upsampled if config.half_pel else None, info_sink,
            )
        return reconstruction

    def _decode_tile(
        self,
        reader: BitReader,
        tile: Tile,
        config: EncoderConfig,
        frame_type: FrameType,
        references: List[np.ndarray],
        reconstruction: np.ndarray,
        upsampled: Optional[List[np.ndarray]] = None,
        info_sink: Optional[List[BlockInfo]] = None,
    ) -> None:
        bs = config.block_size
        for by in range(tile.y, tile.y_end, bs):
            left_mv = (0, 0)
            for bx in range(tile.x, tile.x_end, bs):
                bw = min(bs, tile.x_end - bx)
                bh = min(bs, tile.y_end - by)
                left_mv = self._decode_block(
                    reader, bx, by, bw, bh, tile, config, frame_type,
                    references, reconstruction, left_mv, upsampled, info_sink,
                )

    def _decode_block(
        self,
        reader: BitReader,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        tile: Tile,
        config: EncoderConfig,
        frame_type: FrameType,
        references: List[np.ndarray],
        reconstruction: np.ndarray,
        left_mv: tuple,
        upsampled: Optional[List[np.ndarray]] = None,
        info_sink: Optional[List[BlockInfo]] = None,
    ) -> tuple:
        use_inter = False
        if frame_type is not FrameType.I:
            use_inter = reader.read_bits(1) == 0
        if use_inter:
            prediction, mv, info = self._decode_inter(
                reader, bx, by, bw, bh, frame_type, references, left_mv,
                config, upsampled,
            )
        else:
            intra_mode = IntraMode(reader.read_bits(2))
            top, left = reference_samples(reconstruction, bx, by, bw, bh, tile)
            prediction = predict(intra_mode, top, left, bw, bh)
            mv = left_mv
            info = BlockInfo(bx=bx, by=by, bw=bw, bh=bh, use_inter=False)
        if info_sink is not None:
            info_sink.append(info)

        num_sub = (bw // TRANSFORM_SIZE) * (bh // TRANSFORM_SIZE)
        vectors = np.stack(
            [
                read_block(reader, TRANSFORM_SIZE * TRANSFORM_SIZE)
                for _ in range(num_sub)
            ]
        )
        levels = zigzag_unscan(vectors, TRANSFORM_SIZE)
        recon = reconstruct_block(prediction, levels, config.qp)
        reconstruction[by : by + bh, bx : bx + bw] = recon
        return mv

    def _decode_inter(
        self,
        reader: BitReader,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        frame_type: FrameType,
        references: List[np.ndarray],
        left_mv: tuple,
        config: EncoderConfig,
        upsampled: Optional[List[np.ndarray]] = None,
    ) -> tuple:
        """Returns (prediction, next left predictor, BlockInfo)."""
        b_coded = frame_type is FrameType.B and len(references) == 2
        mode = reader.read_bits(2) if b_coded else 0
        mv0 = read_mvd(reader, left_mv)

        def compensate(ref_index: int, mv: tuple) -> np.ndarray:
            if config.half_pel:
                if mv[0] % 2 == 0 and mv[1] % 2 == 0:
                    return motion_compensate(
                        references[ref_index], bx, by,
                        (mv[0] // 2, mv[1] // 2), bw, bh,
                    )
                if upsampled is None:
                    raise ValueError("half-pel MV without an upsampled grid")
                return sample_halfpel(upsampled[ref_index], bx, by, mv, bw, bh)
            return motion_compensate(references[ref_index], bx, by, mv, bw, bh)

        mvs = (mv0,)
        if mode == 0:
            prediction = compensate(0, mv0)
        elif mode == 1:
            prediction = compensate(1, mv0)
        elif mode == 2:
            mv1 = read_mvd(reader, mv0)
            prediction = (compensate(0, mv0) + compensate(1, mv1)) / 2.0
            mvs = (mv0, mv1)
        else:
            raise ValueError(f"invalid B prediction mode {mode}")
        info = BlockInfo(bx=bx, by=by, bw=bw, bh=bh, use_inter=True,
                         mode=mode, mvs=mvs)
        return prediction, mv0, info

    def decode_frame(
        self,
        reader: BitReader,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        reference_frames: Optional[Sequence[Frame]] = None,
        with_chroma: bool = False,
        frame_index: int = 0,
    ) -> Frame:
        """Decode one frame including optional 4:2:0 chroma payload.

        The counterpart of :meth:`repro.codec.encoder.FrameCodec.encode_frame`;
        ``with_chroma`` must match the encoder side (side-information,
        like the tile layout).
        """
        reference_frames = list(reference_frames or [])
        luma_refs = [f.luma for f in reference_frames]
        infos: List[List[BlockInfo]] = []
        luma = self.decode(
            reader, grid, configs, reference=luma_refs,
            block_infos_out=infos,
        )
        frame = Frame(luma, index=frame_index)
        if not with_chroma:
            return frame
        refs_u = [f.chroma_u for f in reference_frames if f.chroma_u is not None]
        refs_v = [f.chroma_v for f in reference_frames if f.chroma_v is not None]
        recon_u = np.zeros((grid.frame_height // 2, grid.frame_width // 2),
                           dtype=np.uint8)
        recon_v = np.zeros_like(recon_u)
        for i, tile in enumerate(grid):
            for refs, recon_plane in ((refs_u, recon_u), (refs_v, recon_v)):
                decode_chroma_plane(
                    reader, refs, recon_plane, tile, infos[i],
                    configs[i].qp, half_pel=configs[i].half_pel,
                )
        frame.chroma_u = recon_u
        frame.chroma_v = recon_v
        return frame
