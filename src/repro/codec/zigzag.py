"""Zigzag coefficient scan order.

Orders 2-D transform coefficients by increasing spatial frequency so
that the quantized high-frequency zeros cluster at the scan tail, which
run-length entropy coding exploits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


@lru_cache(maxsize=None)
def zigzag_indices(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """(rows, cols) index arrays of the zigzag scan for a size x size block."""
    if size <= 0:
        raise ValueError("size must be positive")
    coords = []
    for s in range(2 * size - 1):
        diagonal = [
            (r, s - r) for r in range(size) if 0 <= s - r < size
        ]
        if s % 2 == 0:
            diagonal.reverse()  # even diagonals walk up-right
        coords.extend(diagonal)
    rows = np.array([r for r, _ in coords], dtype=np.intp)
    cols = np.array([c for _, c in coords], dtype=np.intp)
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


def zigzag_scan(blocks: np.ndarray) -> np.ndarray:
    """Scan ``(..., N, N)`` blocks into ``(..., N*N)`` zigzag vectors."""
    size = blocks.shape[-1]
    if blocks.shape[-2] != size:
        raise ValueError("blocks must be square")
    rows, cols = zigzag_indices(size)
    return blocks[..., rows, cols]


def zigzag_unscan(vectors: np.ndarray, size: int) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    if vectors.shape[-1] != size * size:
        raise ValueError(
            f"vector length {vectors.shape[-1]} does not match size {size}"
        )
    rows, cols = zigzag_indices(size)
    out = np.empty(vectors.shape[:-1] + (size, size), dtype=vectors.dtype)
    out[..., rows, cols] = vectors
    return out
