"""4:2:0 chroma coding.

Chroma planes ride on the luma coding decisions, as in HEVC's default
configuration: each luma block's chroma companion (half resolution)
reuses the luma prediction mode — inter blocks derive their chroma
motion vector from the luma MV (halved, rounded), intra blocks use DC
prediction — and codes its residual through the same transform /
quantization / entropy machinery.

The chroma payload is written after the luma frame, tile by tile
(U plane then V plane), so luma-only decoders simply stop early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import count_stack_bits, read_block, write_block
from repro.codec.inter import clamp_mv, motion_compensate
from repro.codec.ops import OpCounts
from repro.codec.quant import dequantize, quantization_step, quantize
from repro.codec.transform import blockify, forward_dct, inverse_dct, unblockify
from repro.codec.zigzag import zigzag_scan, zigzag_unscan
from repro.tiling.tile import Tile

#: HEVC offsets chroma QP below luma at high QPs; a flat small offset
#: keeps the substrate simple and the rate share realistic (~10-20%).
CHROMA_QP_OFFSET = 3


@dataclass(frozen=True)
class BlockInfo:
    """Coding decisions of one luma block, as needed by chroma."""

    bx: int
    by: int
    bw: int
    bh: int
    use_inter: bool
    mode: int = 0                       # 0: list0, 1: list1, 2: bi
    mvs: Tuple[Tuple[int, int], ...] = ((0, 0),)


def chroma_mv(mv: Tuple[int, int], half_pel: bool) -> Tuple[int, int]:
    """Integer chroma-pel displacement derived from a luma MV.

    Luma MVs are in luma pels (or half-pels when ``half_pel``); chroma
    sits at half resolution, so the divisor is 2 (or 4).  Rounding is
    half-away-from-zero via the floor identity, identical on encoder
    and decoder.
    """
    divisor = 4 if half_pel else 2

    def scale(v: int) -> int:
        return (v + divisor // 2) // divisor if v >= 0 else -((-v + divisor // 2) // divisor)

    return scale(mv[0]), scale(mv[1])


def _chroma_transform_size(w: int, h: int) -> int:
    """8x8 transforms when the chroma block allows, else 4x4."""
    return 8 if (w % 8 == 0 and h % 8 == 0) else 4


def _dc_predict(
    recon: np.ndarray, cx: int, cy: int, cw: int, ch: int, tile_c: Tile
) -> np.ndarray:
    """DC intra prediction from reconstructed chroma neighbours."""
    refs = []
    if cy - 1 >= tile_c.y:
        refs.append(recon[cy - 1, cx : cx + cw].astype(np.float64))
    if cx - 1 >= tile_c.x:
        refs.append(recon[cy : cy + ch, cx - 1].astype(np.float64))
    value = float(np.mean(np.concatenate(refs))) if refs else 128.0
    return np.full((ch, cw), value)


def _chroma_tile(tile: Tile) -> Tile:
    return Tile(tile.x // 2, tile.y // 2, max(1, tile.width // 2),
                max(1, tile.height // 2))


def _predict_block(
    info: BlockInfo,
    references: List[np.ndarray],
    recon: np.ndarray,
    tile_c: Tile,
    half_pel: bool,
) -> np.ndarray:
    cx, cy = info.bx // 2, info.by // 2
    cw, ch = info.bw // 2, info.bh // 2
    if not info.use_inter or not references:
        return _dc_predict(recon, cx, cy, cw, ch, tile_c)
    ref_h, ref_w = references[0].shape

    def compensate(ref_index: int, mv):
        cmv = clamp_mv(chroma_mv(mv, half_pel), cx, cy, cw, ch, ref_w, ref_h)
        return motion_compensate(references[ref_index], cx, cy, cmv, cw, ch)

    if info.mode == 2 and len(references) >= 2 and len(info.mvs) >= 2:
        return (compensate(0, info.mvs[0]) + compensate(1, info.mvs[1])) / 2.0
    ref_index = min(info.mode, len(references) - 1) if info.mode != 2 else 0
    return compensate(ref_index, info.mvs[0])


def encode_chroma_plane(
    plane: np.ndarray,
    references: List[np.ndarray],
    recon: np.ndarray,
    tile: Tile,
    block_infos: List[BlockInfo],
    qp: int,
    half_pel: bool = False,
    writer: Optional[BitWriter] = None,
    ops: Optional[OpCounts] = None,
) -> Tuple[int, float]:
    """Encode one tile of one chroma plane; returns ``(bits, ssd)``.

    ``plane``/``recon``/``references`` are chroma-resolution arrays;
    ``tile`` and ``block_infos`` are in luma coordinates.
    """
    qp_c = min(51, qp + CHROMA_QP_OFFSET)
    tile_c = _chroma_tile(tile)
    step = quantization_step(qp_c)
    bits = 0
    ssd = 0.0
    for info in block_infos:
        cx, cy = info.bx // 2, info.by // 2
        cw, ch = info.bw // 2, info.bh // 2
        block = plane[cy : cy + ch, cx : cx + cw].astype(np.float64)
        prediction = _predict_block(info, references, recon, tile_c, half_pel)
        residual = block - prediction
        ts = _chroma_transform_size(cw, ch)
        sub = blockify(residual, ts)
        sub_sad = np.abs(sub).sum(axis=(1, 2))
        active = sub_sad >= 3.0 * step
        levels = np.zeros(sub.shape, dtype=np.int32)
        if active.any():
            levels[active] = quantize(forward_dct(sub[active]), qp_c)
        zz = zigzag_scan(levels)
        block_bits = count_stack_bits(zz)
        bits += block_bits
        if ops is not None:
            ops.transform_blocks += int(active.sum())
            ops.quant_coeffs += int(active.sum()) * ts * ts
            ops.entropy_bits += block_bits
            ops.pred_pixels += cw * ch * 2
        if writer is not None:
            for i in range(zz.shape[0]):
                write_block(writer, zz[i])
        if levels.any():
            res_q = unblockify(inverse_dct(dequantize(levels, qp_c)), ch, cw)
            out = np.clip(np.rint(prediction + res_q), 0, 255).astype(np.uint8)
        else:
            out = np.clip(np.rint(prediction), 0, 255).astype(np.uint8)
        recon[cy : cy + ch, cx : cx + cw] = out
        diff = block - out
        ssd += float((diff * diff).sum())
    return bits, ssd


def decode_chroma_plane(
    reader: BitReader,
    references: List[np.ndarray],
    recon: np.ndarray,
    tile: Tile,
    block_infos: List[BlockInfo],
    qp: int,
    half_pel: bool = False,
) -> None:
    """Decode one tile of one chroma plane into ``recon`` (in place)."""
    qp_c = min(51, qp + CHROMA_QP_OFFSET)
    tile_c = _chroma_tile(tile)
    for info in block_infos:
        cx, cy = info.bx // 2, info.by // 2
        cw, ch = info.bw // 2, info.bh // 2
        prediction = _predict_block(info, references, recon, tile_c, half_pel)
        ts = _chroma_transform_size(cw, ch)
        num_sub = (cw // ts) * (ch // ts)
        vectors = np.stack([read_block(reader, ts * ts) for _ in range(num_sub)])
        levels = zigzag_unscan(vectors, ts)
        if levels.any():
            res_q = unblockify(inverse_dct(dequantize(levels, qp_c)), ch, cw)
            out = np.clip(np.rint(prediction + res_q), 0, 255).astype(np.uint8)
        else:
            out = np.clip(np.rint(prediction), 0, 255).astype(np.uint8)
        recon[cy : cy + ch, cx : cx + cw] = out
