"""Quantization with the HEVC QP law.

HEVC maps the quantization parameter QP (0..51) to a step size that
doubles every 6 QP values: ``Qstep = 2^((QP-4)/6)``.  The paper's QP
ladder {22, 27, 32, 37, 42} therefore spans step sizes of roughly
8 .. 80, a ~10x rate range.  Flat (uniform) quantization with a
dead-zone rounding offset approximates HEVC's RDOQ-less quantizer.
"""

from __future__ import annotations

import numpy as np

MIN_QP = 0
MAX_QP = 51

#: Dead-zone rounding offset: HEVC uses 1/3 for intra and 1/6 for
#: inter; a single intermediate value keeps the substrate simple.
ROUNDING_OFFSET = 0.25


def quantization_step(qp: int) -> float:
    """HEVC quantization step size for ``qp``."""
    if not MIN_QP <= qp <= MAX_QP:
        raise ValueError(f"QP must be in [{MIN_QP}, {MAX_QP}], got {qp}")
    return 2.0 ** ((qp - 4) / 6.0)


def quantize(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """Quantize transform coefficients to integer levels."""
    step = quantization_step(qp)
    magnitudes = np.floor(np.abs(coefficients) / step + ROUNDING_OFFSET)
    return (np.sign(coefficients) * magnitudes).astype(np.int32)


def dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """Reconstruct coefficient values from integer levels."""
    step = quantization_step(qp)
    return levels.astype(np.float64) * step
