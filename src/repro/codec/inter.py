"""Inter prediction: integer-pel motion compensation and MV coding.

Motion vectors are predicted from the left neighbouring block within
the same tile (a simplification of HEVC's AMVP candidate list) and the
difference is exp-Golomb coded.  Motion compensation may read reference
samples from anywhere in the reference frame — as in HEVC, tiles break
*intra-frame* dependencies only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, se_bit_length

MotionVector = Tuple[int, int]


def motion_compensate(
    reference: np.ndarray,
    x: int,
    y: int,
    mv: MotionVector,
    block_w: int,
    block_h: int,
) -> np.ndarray:
    """Fetch the reference block displaced by ``mv`` (integer pel)."""
    dx, dy = mv
    rx, ry = x + dx, y + dy
    ref_h, ref_w = reference.shape
    if rx < 0 or ry < 0 or rx + block_w > ref_w or ry + block_h > ref_h:
        raise ValueError(
            f"motion vector {mv} at ({x},{y}) reads outside the reference"
        )
    return reference[ry : ry + block_h, rx : rx + block_w].astype(np.float64)


def clamp_mv(
    mv: MotionVector,
    x: int,
    y: int,
    block_w: int,
    block_h: int,
    ref_w: int,
    ref_h: int,
) -> MotionVector:
    """Clamp a motion vector so compensation stays inside the reference."""
    dx = min(max(int(mv[0]), -x), ref_w - block_w - x)
    dy = min(max(int(mv[1]), -y), ref_h - block_h - y)
    return dx, dy


def mvd_bit_length(mv: MotionVector, predictor: MotionVector) -> int:
    """Bits to code the MV difference against its predictor."""
    return se_bit_length(mv[0] - predictor[0]) + se_bit_length(mv[1] - predictor[1])


def write_mvd(writer: BitWriter, mv: MotionVector, predictor: MotionVector) -> None:
    writer.write_se(mv[0] - predictor[0])
    writer.write_se(mv[1] - predictor[1])


def read_mvd(reader: BitReader, predictor: MotionVector) -> MotionVector:
    dx = reader.read_se() + predictor[0]
    dy = reader.read_se() + predictor[1]
    return dx, dy
