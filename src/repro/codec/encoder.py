"""Tile / frame / video encoders.

The encoding loop mirrors a real HEVC encoder structure:

* frames are encoded tile by tile; tiles are independent within a
  frame (no prediction across tile boundaries) and can therefore be
  dispatched as parallel threads — the property the paper's workload
  allocation builds on;
* each tile is encoded in ``block_size`` coding blocks (raster order):
  intra or inter prediction, residual transform (8x8 DCT),
  quantization, entropy coding, and reconstruction through the same
  dequant/inverse-transform path the decoder uses;
* every stage updates an :class:`~repro.codec.ops.OpCounts`, which the
  MPSoC cost model converts to CPU time (the simulation substitute for
  the paper's wall-clock measurements).

The optional ``writer`` produces a decodable bitstream
(:class:`~repro.codec.decoder.FrameDecoder` reads it back); without a
writer the encoder only *counts* the identical bits, which is much
faster and is what the benchmark harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.codec.bitstream import BitWriter
from repro.codec.chroma import BlockInfo, encode_chroma_plane
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.entropy import count_block_bits, write_block
from repro.codec.inter import clamp_mv, motion_compensate, mvd_bit_length, write_mvd
from repro.codec.interpolate import halfpel_feasible, sample_halfpel, upsample2x
from repro.codec.intra import choose_mode, reference_samples
from repro.codec.ops import OpCounts
from repro.codec.quant import dequantize, quantization_step, quantize
from repro.codec.transform import (
    TRANSFORM_SIZE,
    blockify,
    forward_dct,
    inverse_dct,
    unblockify,
)
from repro.codec.zigzag import zigzag_scan
from repro.motion.base import MotionSearchResult, SearchContext
from repro.tiling.tile import Tile, TileGrid
from repro.video.frame import Frame, Video
from repro.video.metrics import psnr_from_mse

#: Signature of a motion hook: receives a context factory
#: ``(window) -> SearchContext`` and the MV predictor, returns the
#: search result.  Lets the proposed bio-medical policy plug into the
#: block loop.
MotionHook = Callable[[Callable[[int], SearchContext], tuple], MotionSearchResult]

#: A reference argument: a single reconstructed plane, a sequence of
#: them (most recent first; B frames use up to two), or None (I frames).
ReferenceLike = Optional[object]


def normalize_references(
    reference: ReferenceLike, frame_type: FrameType
) -> List[np.ndarray]:
    """Normalize the ``reference`` argument to a list of planes."""
    if reference is None:
        refs: List[np.ndarray] = []
    elif isinstance(reference, np.ndarray):
        refs = [reference]
    else:
        refs = [np.asarray(r) for r in reference]
    if frame_type in (FrameType.P, FrameType.B) and not refs:
        raise ValueError(f"{frame_type.value} frame requires a reference frame")
    if frame_type is FrameType.P:
        refs = refs[:1]
    elif frame_type is FrameType.B:
        refs = refs[:2]
    else:
        refs = []
    return refs


def reconstruct_block(prediction: np.ndarray, levels: np.ndarray, qp: int) -> np.ndarray:
    """Shared encoder/decoder reconstruction path.

    ``levels`` is the ``(n, 8, 8)`` stack of quantized coefficient
    blocks covering the prediction block.  Returns the reconstructed
    samples as ``uint8``.  Encoder and decoder call exactly this
    function, guaranteeing bit-exact reconstruction match.
    """
    if not levels.any():
        # All-zero residual: the inverse transform of zeros is zeros,
        # so skip it (encoder and decoder share this shortcut).
        return np.clip(np.rint(prediction), 0, 255).astype(np.uint8)
    h, w = prediction.shape
    residual = unblockify(inverse_dct(dequantize(levels, qp)), h, w)
    return np.clip(np.rint(prediction + residual), 0, 255).astype(np.uint8)


@dataclass
class TileStats:
    """Per-tile encoding outcome."""

    tile: Tile
    bits: int
    ssd: float
    ops: OpCounts

    @property
    def num_pixels(self) -> int:
        return self.tile.area

    @property
    def mse(self) -> float:
        return self.ssd / self.tile.area

    @property
    def psnr(self) -> float:
        return psnr_from_mse(self.mse)


@dataclass
class FrameStats:
    """Per-frame encoding outcome."""

    frame_index: int
    frame_type: FrameType
    tiles: List[TileStats]

    @property
    def bits(self) -> int:
        return sum(t.bits for t in self.tiles)

    @property
    def ssd(self) -> float:
        return sum(t.ssd for t in self.tiles)

    @property
    def num_pixels(self) -> int:
        return sum(t.num_pixels for t in self.tiles)

    @property
    def psnr(self) -> float:
        return psnr_from_mse(self.ssd / self.num_pixels)

    @property
    def ops(self) -> OpCounts:
        total = OpCounts()
        for t in self.tiles:
            total += t.ops
        return total


@dataclass
class SequenceStats:
    """Whole-sequence encoding outcome."""

    frames: List[FrameStats] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    @property
    def average_psnr(self) -> float:
        if not self.frames:
            raise ValueError("no frames encoded")
        return float(np.mean([f.psnr for f in self.frames]))

    @property
    def ops(self) -> OpCounts:
        total = OpCounts()
        for f in self.frames:
            total += f.ops
        return total

    def bitrate_mbps(self, fps: float) -> float:
        if not self.frames:
            raise ValueError("no frames encoded")
        return self.total_bits / (len(self.frames) / fps) / 1e6


class TileEncoder:
    """Encodes one tile of one frame."""

    def __init__(self, config: EncoderConfig):
        self.config = config

    @staticmethod
    def _is_b_coded(frame_type: FrameType, references: List[np.ndarray]) -> bool:
        """B-frame list signalling applies only with two references."""
        return frame_type is FrameType.B and len(references) == 2

    def encode(
        self,
        original: np.ndarray,
        reference: "ReferenceLike",
        reconstruction: np.ndarray,
        tile: Tile,
        frame_type: FrameType,
        writer: Optional[BitWriter] = None,
        motion_hook: Optional[MotionHook] = None,
        upsampled_refs: Optional[List[np.ndarray]] = None,
        block_info_out: Optional[List[BlockInfo]] = None,
    ) -> TileStats:
        """Encode ``tile`` of ``original`` into ``reconstruction``.

        ``reference`` is the reconstructed reference frame (P) or a
        sequence of up to two reference frames, most recent first (B).
        ``reconstruction`` is the current frame's output buffer, filled
        in place.  ``upsampled_refs`` carries the half-pel grids when
        the configuration enables sub-pel refinement (the frame encoder
        computes them once per frame).
        """
        references = normalize_references(reference, frame_type)
        if self.config.half_pel and upsampled_refs is None:
            upsampled_refs = [upsample2x(r) for r in references]
        cfg = self.config
        bs = cfg.block_size
        ops = OpCounts()
        bits = 0
        ssd = 0.0
        for by in range(tile.y, tile.y_end, bs):
            left_mv = (0, 0)
            for bx in range(tile.x, tile.x_end, bs):
                bw = min(bs, tile.x_end - bx)
                bh = min(bs, tile.y_end - by)
                block = original[by : by + bh, bx : bx + bw]
                block_bits, block_ssd, mv, info = self._encode_block(
                    block, bx, by, bw, bh, tile, frame_type, references,
                    reconstruction, left_mv, writer, motion_hook, ops,
                    upsampled_refs,
                )
                bits += block_bits
                ssd += block_ssd
                left_mv = mv
                if block_info_out is not None:
                    block_info_out.append(info)
        return TileStats(tile=tile, bits=bits, ssd=ssd, ops=ops)

    # ------------------------------------------------------------------
    def _search_reference(
        self,
        reference: np.ndarray,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        left_mv: tuple,
        motion_hook: Optional[MotionHook],
        ops: OpCounts,
        upsampled: Optional[np.ndarray] = None,
    ) -> tuple:
        """Motion-search one reference; returns (mv, prediction).

        With ``half_pel`` enabled, ``left_mv`` and the returned MV are
        in half-pel units and the integer search result is refined over
        the eight half-pel neighbours on the upsampled grid.
        """
        cfg = self.config
        start = left_mv
        if cfg.half_pel:
            start = (left_mv[0] // 2, left_mv[1] // 2)

        def ctx_factory(window: int) -> SearchContext:
            return SearchContext(
                reference, block, bx, by, window, lambda_mv=cfg.lambda_mv
            )

        if motion_hook is not None:
            result = motion_hook(ctx_factory, start)
        else:
            result = cfg.make_search().search(
                ctx_factory(cfg.search_window), start=start
            )
        ops.sad_pixel_ops += result.pixel_ops
        ops.me_candidates += result.sad_evaluations
        mv = clamp_mv(
            result.mv, bx, by, bw, bh, reference.shape[1], reference.shape[0]
        )
        prediction = motion_compensate(reference, bx, by, mv, bw, bh)
        if not cfg.half_pel:
            return mv, prediction
        assert upsampled is not None, "half_pel requires an upsampled reference"
        return self._halfpel_refine(
            upsampled, reference, block, bx, by, bw, bh, mv, prediction, ops
        )

    def _halfpel_refine(
        self,
        upsampled: np.ndarray,
        reference: np.ndarray,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        int_mv: tuple,
        int_prediction: np.ndarray,
        ops: OpCounts,
    ) -> tuple:
        """Evaluate the 8 half-pel neighbours of the integer optimum."""
        block_f = block.astype(np.float64)
        best_mv = (2 * int_mv[0], 2 * int_mv[1])
        best_pred = int_prediction
        best_sad = float(np.abs(block_f - int_prediction).sum())
        ref_h, ref_w = reference.shape
        for hy in (-1, 0, 1):
            for hx in (-1, 0, 1):
                if hx == 0 and hy == 0:
                    continue
                cand = (2 * int_mv[0] + hx, 2 * int_mv[1] + hy)
                if not halfpel_feasible(cand, bx, by, bw, bh, ref_w, ref_h):
                    continue
                pred = sample_halfpel(upsampled, bx, by, cand, bw, bh)
                sad = float(np.abs(block_f - pred).sum())
                ops.sad_pixel_ops += bw * bh
                ops.me_candidates += 1
                ops.pred_pixels += bw * bh  # interpolation fetch
                if sad < best_sad:
                    best_mv, best_pred, best_sad = cand, pred, sad
        return best_mv, best_pred

    def _encode_block(
        self,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        tile: Tile,
        frame_type: FrameType,
        references: List[np.ndarray],
        reconstruction: np.ndarray,
        left_mv: tuple,
        writer: Optional[BitWriter],
        motion_hook: Optional[MotionHook],
        ops: OpCounts,
        upsampled_refs: Optional[List[np.ndarray]] = None,
    ) -> tuple:
        cfg = self.config
        block_f = block.astype(np.float64)
        area = bw * bh

        # --- intra candidate -------------------------------------------------
        top, left = reference_samples(reconstruction, bx, by, bw, bh, tile)
        intra_mode, intra_pred, intra_sad = choose_mode(block, top, left)
        ops.pred_pixels += 4 * area  # four intra mode trials

        # --- inter candidates (P: list 0; B: list 0, list 1, bi) --------------
        # Each option: (mode_code, prediction, cost, rate_bits, mvs).
        options = []
        if frame_type is not FrameType.I and references:
            per_ref = []
            for ref_index, ref in enumerate(references):
                up = upsampled_refs[ref_index] if upsampled_refs else None
                mv, pred = self._search_reference(
                    ref, block, bx, by, bw, bh, left_mv, motion_hook, ops,
                    upsampled=up,
                )
                sad = float(np.abs(block_f - pred).sum())
                ops.pred_pixels += area
                per_ref.append((mv, pred, sad))
            list_bits = 2 if self._is_b_coded(frame_type, references) else 0
            for idx, (mv, pred, sad) in enumerate(per_ref):
                rate = list_bits + mvd_bit_length(mv, left_mv)
                options.append((idx, pred, sad + cfg.lambda_mv * rate, rate, (mv,)))
            if self._is_b_coded(frame_type, references):
                mv0, pred0, _ = per_ref[0]
                mv1, pred1, _ = per_ref[1]
                bi_pred = (pred0 + pred1) / 2.0
                bi_sad = float(np.abs(block_f - bi_pred).sum())
                ops.pred_pixels += area
                rate = list_bits + mvd_bit_length(mv0, left_mv) + mvd_bit_length(mv1, mv0)
                options.append((2, bi_pred, bi_sad + cfg.lambda_mv * rate, rate, (mv0, mv1)))

        use_inter = False
        inter_mode = 0
        inter_rate = 0
        mvs: tuple = ((0, 0),)
        inter_pred = None
        if options:
            inter_mode, inter_pred, cost, inter_rate, mvs = min(
                options, key=lambda o: o[2]
            )
            use_inter = cost <= intra_sad
        mv = mvs[0]

        prediction = inter_pred if use_inter else intra_pred

        # --- residual coding --------------------------------------------------
        residual = block_f - prediction
        sub = blockify(residual, TRANSFORM_SIZE)
        # Zero-block early skip: an orthonormal 8x8 DCT coefficient is
        # bounded by SAD/4, and a level survives quantization only when
        # |coef| >= 0.75 * Qstep, so a sub-block with SAD < 3 * Qstep
        # provably quantizes to all zeros — skip its transform.  This
        # is the skip-mode analogue that makes low-activity content
        # cheap in real encoders; the output bitstream is identical.
        step = quantization_step(cfg.qp)
        sub_sad = np.abs(sub).sum(axis=(1, 2))
        active = sub_sad >= 3.0 * step
        levels = np.zeros(sub.shape, dtype=np.int32)
        num_active = int(active.sum())
        if num_active:
            coefs = forward_dct(sub[active])
            levels[active] = quantize(coefs, cfg.qp)
        ops.transform_blocks += num_active
        ops.quant_coeffs += num_active * TRANSFORM_SIZE * TRANSFORM_SIZE

        zz = zigzag_scan(levels)
        residual_bits = sum(count_block_bits(zz[i]) for i in range(zz.shape[0]))

        header_bits = 0
        if frame_type is not FrameType.I:
            header_bits += 1  # inter/intra flag
        if use_inter:
            header_bits += inter_rate
        else:
            header_bits += 2  # intra mode index
        total_bits = header_bits + residual_bits
        ops.entropy_bits += total_bits

        if writer is not None:
            if frame_type is not FrameType.I:
                writer.write_bits(0 if use_inter else 1, 1)
            if use_inter:
                if self._is_b_coded(frame_type, references):
                    writer.write_bits(inter_mode, 2)
                write_mvd(writer, mvs[0], left_mv)
                if inter_mode == 2:
                    write_mvd(writer, mvs[1], mvs[0])
                elif inter_mode == 1:
                    pass  # list-1 MV was written as mvs[0]
            else:
                writer.write_bits(int(intra_mode), 2)
            for i in range(zz.shape[0]):
                write_block(writer, zz[i])

        # --- reconstruction ----------------------------------------------------
        recon = reconstruct_block(prediction, levels, cfg.qp)
        reconstruction[by : by + bh, bx : bx + bw] = recon
        ops.pred_pixels += area
        diff = block_f - recon
        ssd = float((diff * diff).sum())

        info = BlockInfo(
            bx=bx, by=by, bw=bw, bh=bh,
            use_inter=use_inter, mode=inter_mode if use_inter else 0,
            mvs=mvs if use_inter else ((0, 0),),
        )
        return total_bits, ssd, (mv if use_inter else left_mv), info


class FrameEncoder:
    """Encodes a full frame over a tile grid with per-tile configs."""

    #: Frame-type codes in the bitstream header.
    FRAME_TYPE_CODES = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def encode(
        self,
        original: np.ndarray,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        frame_type: FrameType,
        reference: ReferenceLike = None,
        frame_index: int = 0,
        writer: Optional[BitWriter] = None,
        motion_hooks: Optional[Sequence[Optional[MotionHook]]] = None,
        block_infos_out: Optional[List[List[BlockInfo]]] = None,
    ) -> tuple:
        """Returns ``(FrameStats, reconstruction)``.

        ``reference`` accepts a single reconstructed plane (P frames)
        or a sequence of up to two planes, most recent first (B
        frames).
        """
        if len(configs) != len(grid):
            raise ValueError(
                f"{len(configs)} configs for {len(grid)} tiles"
            )
        if motion_hooks is not None and len(motion_hooks) != len(grid):
            raise ValueError("motion_hooks length must match tile count")
        if original.shape != (grid.frame_height, grid.frame_width):
            raise ValueError(
                f"frame {original.shape} does not match grid "
                f"{grid.frame_height}x{grid.frame_width}"
            )
        if writer is not None:
            writer.write_bits(self.FRAME_TYPE_CODES[frame_type], 2)
        upsampled_refs = None
        if frame_type is not FrameType.I and any(c.half_pel for c in configs):
            refs = normalize_references(reference, frame_type)
            upsampled_refs = [upsample2x(r) for r in refs]
        reconstruction = np.zeros_like(original)
        tile_stats = []
        for i, tile in enumerate(grid):
            hook = motion_hooks[i] if motion_hooks is not None else None
            encoder = TileEncoder(configs[i])
            info_sink: Optional[List[BlockInfo]] = None
            if block_infos_out is not None:
                info_sink = []
                block_infos_out.append(info_sink)
            stats = encoder.encode(
                original, reference, reconstruction, tile, frame_type,
                writer=writer, motion_hook=hook,
                upsampled_refs=upsampled_refs if configs[i].half_pel else None,
                block_info_out=info_sink,
            )
            tile_stats.append(stats)
        return (
            FrameStats(frame_index=frame_index, frame_type=frame_type,
                       tiles=tile_stats),
            reconstruction,
        )


@dataclass
class ChromaStats:
    """Chroma-plane encoding outcome of one frame (U and V)."""

    bits: int = 0
    ssd_u: float = 0.0
    ssd_v: float = 0.0
    num_pixels: int = 0  # per plane
    ops: OpCounts = field(default_factory=OpCounts)

    @property
    def psnr_u(self) -> float:
        if self.num_pixels == 0:
            raise ValueError("no chroma pixels encoded")
        return psnr_from_mse(self.ssd_u / self.num_pixels)

    @property
    def psnr_v(self) -> float:
        if self.num_pixels == 0:
            raise ValueError("no chroma pixels encoded")
        return psnr_from_mse(self.ssd_v / self.num_pixels)


class FrameCodec:
    """Frame-level encode with 4:2:0 chroma (extension entry point).

    ``encode_frame`` wraps :class:`FrameEncoder` for luma and appends
    the chroma payload (U then V per tile) when the frame carries
    chroma planes.  References are :class:`~repro.video.frame.Frame`
    objects so chroma reconstruction travels with luma.
    """

    def __init__(self) -> None:
        self._frame_encoder = FrameEncoder()

    def encode_frame(
        self,
        frame: Frame,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        frame_type: FrameType,
        reference_frames: Optional[Sequence[Frame]] = None,
        frame_index: int = 0,
        writer: Optional[BitWriter] = None,
        motion_hooks: Optional[Sequence[Optional[MotionHook]]] = None,
    ) -> tuple:
        """Returns ``(FrameStats, Optional[ChromaStats], Frame)``."""
        reference_frames = list(reference_frames or [])
        luma_refs = [f.luma for f in reference_frames]
        infos: List[List[BlockInfo]] = []
        stats, recon_luma = self._frame_encoder.encode(
            frame.luma, grid, configs, frame_type,
            reference=luma_refs, frame_index=frame_index, writer=writer,
            motion_hooks=motion_hooks, block_infos_out=infos,
        )
        recon = Frame(recon_luma, index=frame_index)
        if frame.chroma_u is None or frame.chroma_v is None:
            return stats, None, recon

        refs_u = [f.chroma_u for f in reference_frames if f.chroma_u is not None]
        refs_v = [f.chroma_v for f in reference_frames if f.chroma_v is not None]
        recon_u = np.zeros_like(frame.chroma_u)
        recon_v = np.zeros_like(frame.chroma_v)
        chroma = ChromaStats(num_pixels=int(frame.chroma_u.size))
        for i, tile in enumerate(grid):
            for plane, refs, recon_plane, attr in (
                (frame.chroma_u, refs_u, recon_u, "ssd_u"),
                (frame.chroma_v, refs_v, recon_v, "ssd_v"),
            ):
                bits, ssd = encode_chroma_plane(
                    plane, refs, recon_plane, tile, infos[i],
                    configs[i].qp, half_pel=configs[i].half_pel,
                    writer=writer, ops=chroma.ops,
                )
                chroma.bits += bits
                setattr(chroma, attr, getattr(chroma, attr) + ssd)
        recon.chroma_u = recon_u
        recon.chroma_v = recon_v
        return stats, chroma, recon


class VideoEncoder:
    """Encodes a video with a fixed tile grid and uniform config.

    This is the encoder used for the paper's Table I experiments
    (uniform tilings, one search algorithm for the whole sequence).
    The full content-aware pipeline lives in
    :mod:`repro.transcode.pipeline`.
    """

    def __init__(
        self,
        config: EncoderConfig,
        gop: GopConfig = GopConfig(),
    ):
        self.config = config
        self.gop = gop
        self._frame_encoder = FrameEncoder()

    def encode(
        self,
        video: Video,
        grid: Optional[TileGrid] = None,
        motion_hook_factory: Optional[Callable[[int, int], Optional[MotionHook]]] = None,
    ) -> SequenceStats:
        """Encode ``video``; returns sequence statistics.

        ``motion_hook_factory(frame_index, tile_index)`` may supply a
        per-tile motion hook (used to drive the proposed search policy).
        """
        if len(video) == 0:
            raise ValueError("cannot encode an empty video")
        if grid is None:
            grid = TileGrid.single(video.width, video.height)
        configs = [self.config] * len(grid)
        stats = SequenceStats()
        references: List[np.ndarray] = []  # most recent first
        for frame in video:
            frame_type = self.gop.frame_type(frame.index)
            hooks = None
            if motion_hook_factory is not None and frame_type is not FrameType.I:
                hooks = [
                    motion_hook_factory(frame.index, t) for t in range(len(grid))
                ]
            frame_stats, reconstruction = self._frame_encoder.encode(
                frame.luma, grid, configs, frame_type,
                reference=references, frame_index=frame.index,
                motion_hooks=hooks,
            )
            stats.frames.append(frame_stats)
            references = [reconstruction] + references[:1]
        return stats
