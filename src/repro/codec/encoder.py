"""Tile / frame / video encoders.

The encoding loop mirrors a real HEVC encoder structure:

* frames are encoded tile by tile; tiles are independent within a
  frame (no prediction across tile boundaries) and can therefore be
  dispatched as parallel threads — the property the paper's workload
  allocation builds on;
* each tile is encoded in ``block_size`` coding blocks (raster order):
  intra or inter prediction, residual transform (8x8 DCT),
  quantization, entropy coding, and reconstruction through the same
  dequant/inverse-transform path the decoder uses;
* every stage updates an :class:`~repro.codec.ops.OpCounts`, which the
  MPSoC cost model converts to CPU time (the simulation substitute for
  the paper's wall-clock measurements).

The optional ``writer`` produces a decodable bitstream
(:class:`~repro.codec.decoder.FrameDecoder` reads it back); without a
writer the encoder only *counts* the identical bits, which is much
faster and is what the benchmark harness uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.codec.bitstream import BitWriter
from repro.codec.chroma import BlockInfo, encode_chroma_plane
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.entropy import count_stack_bits, write_block
from repro.codec.inter import clamp_mv, motion_compensate, mvd_bit_length, write_mvd
from repro.codec.interpolate import halfpel_feasible, upsample2x_cached
from repro.codec.intra import IntraMode, choose_mode, reference_samples
from repro.codec.ops import OpCounts
from repro.codec.quant import dequantize, quantization_step, quantize
from repro.codec.transform import (
    TRANSFORM_SIZE,
    blockify,
    dct_basis,
    forward_dct,
    inverse_dct,
    unblockify,
)
from repro.codec.zigzag import zigzag_indices, zigzag_scan
from repro import native
from repro.observability import get_tracer
from repro.motion.base import MotionSearchResult, SearchContext
from repro.tiling.tile import Tile, TileGrid
from repro.video.frame import Frame, Video
from repro.video.metrics import psnr_from_mse

#: Signature of a motion hook: receives a context factory
#: ``(window) -> SearchContext`` and the MV predictor, returns the
#: search result.  Lets the proposed bio-medical policy plug into the
#: block loop.
MotionHook = Callable[[Callable[[int], SearchContext], tuple], MotionSearchResult]

#: A reference argument: a single reconstructed plane, a sequence of
#: them (most recent first; B frames use up to two), or None (I frames).
ReferenceLike = Optional[object]


def _zz_order8() -> np.ndarray:
    """Zigzag scan order of an 8x8 block as flat row-major indices."""
    rows, cols = zigzag_indices(TRANSFORM_SIZE)
    order = (rows * TRANSFORM_SIZE + cols).astype(np.int32)
    order.flags.writeable = False
    return order


_ZZ_ORDER8 = _zz_order8()

#: Pointer ints of the module-constant native kernel inputs, computed
#: once (the arrays are immutable and live for the process lifetime).
_BASIS8 = np.ascontiguousarray(dct_basis(TRANSFORM_SIZE))
_BASIS8_PTR = _BASIS8.ctypes.data
_ZZ_ORDER8_PTR = _ZZ_ORDER8.ctypes.data


def normalize_references(
    reference: ReferenceLike, frame_type: FrameType
) -> List[np.ndarray]:
    """Normalize the ``reference`` argument to a list of planes."""
    if reference is None:
        refs: List[np.ndarray] = []
    elif isinstance(reference, np.ndarray):
        refs = [reference]
    else:
        refs = [np.asarray(r) for r in reference]
    if frame_type in (FrameType.P, FrameType.B) and not refs:
        raise ValueError(f"{frame_type.value} frame requires a reference frame")
    if frame_type is FrameType.P:
        refs = refs[:1]
    elif frame_type is FrameType.B:
        refs = refs[:2]
    else:
        refs = []
    return refs


def reconstruct_block(prediction: np.ndarray, levels: np.ndarray, qp: int) -> np.ndarray:
    """Shared encoder/decoder reconstruction path.

    ``levels`` is the ``(n, 8, 8)`` stack of quantized coefficient
    blocks covering the prediction block.  Returns the reconstructed
    samples as ``uint8``.  Encoder and decoder call exactly this
    function, guaranteeing bit-exact reconstruction match.
    """
    h, w = prediction.shape
    if (
        native.lib is not None
        and TRANSFORM_SIZE == 8
        and h % 8 == 0
        and w % 8 == 0
        and prediction.dtype == np.float64
        and prediction.flags.c_contiguous
        and levels.dtype == np.int32
        and levels.flags.c_contiguous
    ):
        # Same kernel the fused encoder path uses, so encoder and
        # decoder reconstructions agree sample-for-sample whenever
        # they run with the same kernel availability.  (The native
        # inverse DCT may differ from the NumPy matmul in the last
        # ulp; within one environment both sides share one path.)
        out_u8 = np.empty((h, w), dtype=np.uint8)
        native.lib.reconstruct_block_u8(
            prediction.ctypes.data, levels.ctypes.data,
            h, w, quantization_step(qp), _BASIS8_PTR,
            out_u8.ctypes.data, w,
        )
        return out_u8
    if not levels.any():
        # All-zero residual: the inverse transform of zeros is zeros,
        # so skip it (encoder and decoder share this shortcut).
        out = np.rint(prediction)
    else:
        out = unblockify(inverse_dct(dequantize(levels, qp)), h, w)
        out = out + prediction
        np.rint(out, out=out)
    # Same samples as clip(rint(x), 0, 255): rint first, then bound.
    np.minimum(out, 255.0, out=out)
    np.maximum(out, 0.0, out=out)
    return out.astype(np.uint8)


@dataclass
class TileStats:
    """Per-tile encoding outcome."""

    tile: Tile
    bits: int
    ssd: float
    ops: OpCounts
    #: Wall-clock seconds spent in the motion-search and residual
    #: coding (transform/quant/entropy) stages of this tile, measured
    #: only when the encode ran with ``measure_stages=True`` (i.e. the
    #: span tracer was enabled); ``None`` otherwise.  Travels through
    #: the process pool so the parent can emit stage spans for tiles
    #: encoded in workers.
    stage_seconds: Optional[Dict[str, float]] = None

    @property
    def num_pixels(self) -> int:
        return self.tile.area

    @property
    def mse(self) -> float:
        return self.ssd / self.tile.area

    @property
    def psnr(self) -> float:
        return psnr_from_mse(self.mse)


@dataclass
class FrameStats:
    """Per-frame encoding outcome."""

    frame_index: int
    frame_type: FrameType
    tiles: List[TileStats]

    @property
    def bits(self) -> int:
        return sum(t.bits for t in self.tiles)

    @property
    def ssd(self) -> float:
        return sum(t.ssd for t in self.tiles)

    @property
    def num_pixels(self) -> int:
        return sum(t.num_pixels for t in self.tiles)

    @property
    def psnr(self) -> float:
        return psnr_from_mse(self.ssd / self.num_pixels)

    @property
    def ops(self) -> OpCounts:
        total = OpCounts()
        for t in self.tiles:
            total += t.ops
        return total


@dataclass
class SequenceStats:
    """Whole-sequence encoding outcome."""

    frames: List[FrameStats] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    @property
    def average_psnr(self) -> float:
        if not self.frames:
            raise ValueError("no frames encoded")
        return float(np.mean([f.psnr for f in self.frames]))

    @property
    def ops(self) -> OpCounts:
        total = OpCounts()
        for f in self.frames:
            total += f.ops
        return total

    def bitrate_mbps(self, fps: float) -> float:
        if not self.frames:
            raise ValueError("no frames encoded")
        return self.total_bits / (len(self.frames) / fps) / 1e6


class TileEncoder:
    """Encodes one tile of one frame."""

    def __init__(self, config: EncoderConfig):
        self.config = config
        #: Lazily-built search algorithm (one instance per tile encode
        #: instead of one per block) and its native driver dispatch.
        self._search = None
        self._native_search_spec = None

    def _get_search(self):
        if self._search is None:
            self._search = self.config.make_search()
            self._native_search_spec = self._search.native_spec()
        return self._search

    @staticmethod
    def _is_b_coded(frame_type: FrameType, references: List[np.ndarray]) -> bool:
        """B-frame list signalling applies only with two references."""
        return frame_type is FrameType.B and len(references) == 2

    def encode(
        self,
        original: np.ndarray,
        reference: "ReferenceLike",
        reconstruction: np.ndarray,
        tile: Tile,
        frame_type: FrameType,
        writer: Optional[BitWriter] = None,
        motion_hook: Optional[MotionHook] = None,
        upsampled_refs: Optional[List[np.ndarray]] = None,
        block_info_out: Optional[List[BlockInfo]] = None,
        measure_stages: bool = False,
    ) -> TileStats:
        """Encode ``tile`` of ``original`` into ``reconstruction``.

        ``reference`` is the reconstructed reference frame (P) or a
        sequence of up to two reference frames, most recent first (B).
        ``reconstruction`` is the current frame's output buffer, filled
        in place.  ``upsampled_refs`` carries the half-pel grids when
        the configuration enables sub-pel refinement (the frame encoder
        computes them once per frame).  ``measure_stages`` accumulates
        per-stage wall time into :attr:`TileStats.stage_seconds`
        (tracing support; off by default so the hot path pays nothing).
        """
        references = normalize_references(reference, frame_type)
        if self.config.half_pel and upsampled_refs is None:
            upsampled_refs = [upsample2x_cached(r) for r in references]
        cfg = self.config
        bs = cfg.block_size
        ops = OpCounts()
        bits = 0
        ssd = 0.0
        stage_acc = {"motion": 0.0, "entropy": 0.0} if measure_stages else None
        # Fully-native block path: I/P frames at integer-pel precision
        # on contiguous uint8 planes go through `_encode_block_native`,
        # which keeps the whole block pipeline (intra choice, motion
        # search, transform/quant, entropy emission, reconstruction)
        # inside the C kernels — same outputs bit-for-bit.
        native_ok = (
            native.lib is not None
            and TRANSFORM_SIZE == 8
            and not cfg.half_pel
            and frame_type is not FrameType.B
            and bs <= 64
            and original.dtype == np.uint8
            and original.flags.c_contiguous
            and reconstruction.dtype == np.uint8
            and reconstruction.flags.c_contiguous
            and all(
                r.dtype == np.uint8 and r.flags.c_contiguous
                for r in references
            )
        )
        if native_ok:
            return self._encode_tile_native(
                original, references, reconstruction, tile, frame_type,
                writer, motion_hook, ops, block_info_out, stage_acc,
            )
        for by in range(tile.y, tile.y_end, bs):
            left_mv = (0, 0)
            for bx in range(tile.x, tile.x_end, bs):
                bw = min(bs, tile.x_end - bx)
                bh = min(bs, tile.y_end - by)
                block = original[by : by + bh, bx : bx + bw]
                block_bits, block_ssd, mv, info = self._encode_block(
                    block, bx, by, bw, bh, tile, frame_type, references,
                    reconstruction, left_mv, writer, motion_hook, ops,
                    upsampled_refs, stage_acc,
                )
                bits += block_bits
                ssd += block_ssd
                left_mv = mv
                if block_info_out is not None:
                    block_info_out.append(info)
        return TileStats(tile=tile, bits=bits, ssd=ssd, ops=ops,
                         stage_seconds=stage_acc)

    # ------------------------------------------------------------------
    def _encode_tile_native(
        self,
        original: np.ndarray,
        references: List[np.ndarray],
        reconstruction: np.ndarray,
        tile: Tile,
        frame_type: FrameType,
        writer: Optional[BitWriter],
        motion_hook: Optional[MotionHook],
        ops: OpCounts,
        block_info_out: Optional[List[BlockInfo]],
        stage_acc: Optional[Dict[str, float]],
    ) -> TileStats:
        """Fused-kernel twin of the block loop for I/P frames.

        The current samples never leave the uint8 plane (uint8 ->
        float64 conversion is exact, so every arithmetic result matches
        the staged float64 path bit-for-bit), the motion search runs in
        the C driver when the algorithm has a native spec, and the
        residual bits are batch-emitted and spliced into the writer.
        Outputs, op accounting, and written bits are identical to the
        legacy path.

        Plane base pointers, strides and per-tile constants are hoisted
        out of the block loop; blocks address the kernels by pointer
        arithmetic, so the steady state performs no ndarray slicing and
        no ``.ctypes`` attribute traffic.
        """
        cfg = self.config
        lib = native.lib
        sc = native.scratch()
        bs = cfg.block_size
        step = quantization_step(cfg.qp)
        lam = cfg.lambda_mv
        window = cfg.search_window
        ostride = original.strides[0]
        orig_ptr = original.ctypes.data
        rstride = reconstruction.strides[0]
        recon_ptr = reconstruction.ctypes.data
        not_i = frame_type is not FrameType.I
        is_p = not_i and bool(references)
        spec = None
        ref = ref_ptr = ref_stride = ref_h = ref_w = None
        if is_p:
            ref = references[0]
            ref_stride = ref.strides[0]
            ref_ptr = ref.ctypes.data
            ref_h, ref_w = ref.shape
            if motion_hook is None:
                self._get_search()
                spec = self._native_search_spec
        emit = writer is not None
        bitbuf_ptr = sc.bitbuf_ptr if emit else None
        bitbuf_cap = sc.bitbuf.size if emit else 0
        pred_ptr = sc.pred_ptr
        mode_ptr = sc.mode_ptr
        sad_ptr = sc.sad_ptr
        stats3 = sc.stats3
        stats3_ptr = sc.stats3_ptr
        levels_ptr = sc.levels_ptr
        sadf = sc.sad
        tile_x = tile.x
        tile_y = tile.y
        choose_intra = lib.choose_intra_plane_u8
        fused = lib.encode_block_fused2
        infos = block_info_out
        measure = stage_acc is not None
        bits = 0
        ssd = 0.0
        pp = spx = mec = tb = eb = 0  # op-count accumulators
        for by in range(tile_y, tile.y_end, bs):
            left_mv = (0, 0)
            for bx in range(tile_x, tile.x_end, bs):
                bw = min(bs, tile.x_end - bx)
                bh = min(bs, tile.y_end - by)
                if bw % 8 or bh % 8:
                    # Partial edge block: the legacy path handles it
                    # (native_ok guarantees integer-pel, so no
                    # upsampled references are needed).
                    block = original[by : by + bh, bx : bx + bw]
                    b_bits, b_ssd, mv, info = self._encode_block(
                        block, bx, by, bw, bh, tile, frame_type, references,
                        reconstruction, left_mv, writer, motion_hook, ops,
                        None, stage_acc,
                    )
                    bits += b_bits
                    ssd += b_ssd
                    left_mv = mv
                    if infos is not None:
                        infos.append(info)
                    continue
                area = bw * bh
                blk_ptr = orig_ptr + by * ostride + bx

                # --- intra candidate -----------------------------------------
                choose_intra(
                    blk_ptr, ostride, recon_ptr, rstride,
                    bh, bw, bx, by, tile_x, tile_y,
                    pred_ptr, mode_ptr, sad_ptr,
                )
                intra_sad = sadf[0]
                pp += 4 * area  # four intra mode trials

                # --- inter candidate (single reference; B frames take
                # --- the legacy path) ----------------------------------------
                use_inter = False
                inter_rate = 0
                pred_f = None
                mv = (0, 0)
                if is_p:
                    if measure:
                        _t_motion = time.perf_counter()
                    raw = (ref_ptr, ref_stride, ref_h, ref_w,
                           blk_ptr, ostride, bh, bw, bx, by)
                    if motion_hook is not None:
                        def ctx_factory(w, _bx=bx, _by=by, _bw=bw, _bh=bh):
                            return SearchContext(
                                ref,
                                original[_by : _by + _bh, _bx : _bx + _bw],
                                _bx, _by, w, lambda_mv=lam,
                            )

                        ctx_factory.native_args = (ref, None, bx, by, lam, raw)
                        result = motion_hook(ctx_factory, left_mv)
                    else:
                        result = None
                        if spec is not None:
                            ns = native.motion_search_raw(
                                raw, window, lam, spec[0], spec[1],
                                ((0, 0), left_mv),
                            )
                            if ns is not None:
                                result = MotionSearchResult(
                                    mv=ns[0], cost=ns[1],
                                    sad_evaluations=ns[2],
                                    pixel_ops=ns[2] * area, sad=ns[3],
                                )
                        if result is None:
                            result = self._search.search(
                                SearchContext(
                                    ref,
                                    original[by : by + bh, bx : bx + bw],
                                    bx, by, window, lambda_mv=lam,
                                ),
                                start=left_mv,
                            )
                    spx += result.pixel_ops
                    mec += result.sad_evaluations
                    rmv = result.mv
                    sad = result.sad
                    if (
                        sad is None
                        or sad < 0
                        or bx + rmv[0] < 0
                        or by + rmv[1] < 0
                        or bx + rmv[0] + bw > ref_w
                        or by + rmv[1] + bh > ref_h
                    ):
                        # Search didn't hand back the winning SAD
                        # (non-native algorithm) or the MV needs
                        # clamping — derive both like the legacy path.
                        mv = clamp_mv(rmv, bx, by, bw, bh, ref_w, ref_h)
                        pred_f = motion_compensate(ref, bx, by, mv, bw, bh)
                        sad = float(np.abs(
                            original[by : by + bh, bx : bx + bw]
                            .astype(np.float64) - pred_f
                        ).sum())
                    else:
                        mv = rmv
                    pp += area
                    # Inline mvd_bit_length (signed exp-Golomb rate).
                    mdx = mv[0] - left_mv[0]
                    mdy = mv[1] - left_mv[1]
                    mdx = 2 * mdx - 1 if mdx > 0 else -2 * mdx
                    mdy = 2 * mdy - 1 if mdy > 0 else -2 * mdy
                    inter_rate = (
                        2 * (mdx + 1).bit_length()
                        + 2 * (mdy + 1).bit_length() - 2
                    )
                    use_inter = sad + lam * inter_rate <= intra_sad
                    if measure:
                        stage_acc["motion"] += time.perf_counter() - _t_motion

                # --- residual coding + reconstruction ------------------------
                if measure:
                    _t_entropy = time.perf_counter()
                if use_inter:
                    if pred_f is None:
                        # Integer-pel motion compensation straight off
                        # the uint8 reference window — no staging copy.
                        predd_ptr, pds = None, 0
                        predu_ptr = (
                            ref_ptr + (by + mv[1]) * ref_stride + (bx + mv[0])
                        )
                        pus = ref_stride
                    else:
                        pred_f = np.ascontiguousarray(pred_f)
                        predd_ptr, pds = pred_f.ctypes.data, bw
                        predu_ptr, pus = None, 0
                else:
                    predd_ptr, pds = pred_ptr, bw
                    predu_ptr, pus = None, 0
                fused(
                    blk_ptr, ostride, predd_ptr, pds, predu_ptr, pus,
                    bh, bw, step, _BASIS8_PTR, _ZZ_ORDER8_PTR,
                    levels_ptr, recon_ptr + by * rstride + bx, rstride,
                    bitbuf_ptr, bitbuf_cap, stats3_ptr, sad_ptr,
                )
                residual_bits, num_active, emitted = stats3.tolist()
                tb += num_active
                header_bits = (1 if not_i else 0) + (
                    inter_rate if use_inter else 2
                )
                total_bits = header_bits + residual_bits
                eb += total_bits
                if emit:
                    if not_i:
                        writer.write_bits(0 if use_inter else 1, 1)
                    if use_inter:
                        write_mvd(writer, mv, left_mv)
                    else:
                        writer.write_bits(int(sc.mode[0]), 2)
                    if emitted == residual_bits:
                        writer.append_bits(
                            sc.bitbuf[: (emitted + 7) // 8].tobytes(), emitted
                        )
                    else:
                        # Emission buffer overflow (pathological
                        # residual): re-emit the cached levels through
                        # the Python writer.
                        n_sub = (bh // TRANSFORM_SIZE) * (bw // TRANSFORM_SIZE)
                        zz = zigzag_scan(sc.levels[:n_sub].copy())
                        for i in range(zz.shape[0]):
                            write_block(writer, zz[i])
                if measure:
                    stage_acc["entropy"] += time.perf_counter() - _t_entropy
                pp += area  # reconstruction
                bits += total_bits
                ssd += sadf[0]
                if infos is not None:
                    infos.append(BlockInfo(
                        bx=bx, by=by, bw=bw, bh=bh,
                        use_inter=use_inter, mode=0,
                        mvs=((mv if use_inter else (0, 0)),),
                    ))
                if use_inter:
                    left_mv = mv
        ops.pred_pixels += pp
        ops.sad_pixel_ops += spx
        ops.me_candidates += mec
        ops.transform_blocks += tb
        ops.quant_coeffs += tb * (TRANSFORM_SIZE * TRANSFORM_SIZE)
        ops.entropy_bits += eb
        return TileStats(tile=tile, bits=bits, ssd=float(ssd), ops=ops,
                         stage_seconds=stage_acc)

    # ------------------------------------------------------------------
    def _search_reference(
        self,
        reference: np.ndarray,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        left_mv: tuple,
        motion_hook: Optional[MotionHook],
        ops: OpCounts,
        upsampled: Optional[np.ndarray] = None,
    ) -> tuple:
        """Motion-search one reference; returns (mv, prediction).

        With ``half_pel`` enabled, ``left_mv`` and the returned MV are
        in half-pel units and the integer search result is refined over
        the eight half-pel neighbours on the upsampled grid.
        """
        cfg = self.config
        start = left_mv
        if cfg.half_pel:
            start = (left_mv[0] // 2, left_mv[1] // 2)

        def ctx_factory(window: int) -> SearchContext:
            return SearchContext(
                reference, block, bx, by, window, lambda_mv=cfg.lambda_mv
            )

        if (
            native.lib is not None
            and reference.dtype == np.uint8
            and reference.flags.c_contiguous
            and block.dtype == np.uint8
            and block.ndim == 2
            and block.strides[1] == block.itemsize
        ):
            # Hooks that understand the native search driver (the
            # bio-medical policy) can skip SearchContext entirely.
            ctx_factory.native_args = (
                reference, block, bx, by, cfg.lambda_mv,
                (
                    reference.ctypes.data, reference.strides[0],
                    reference.shape[0], reference.shape[1],
                    block.ctypes.data, block.strides[0],
                    bh, bw, bx, by,
                ),
            )
        if motion_hook is not None:
            result = motion_hook(ctx_factory, start)
        else:
            search = self._get_search()
            spec = self._native_search_spec
            result = None
            if spec is not None and hasattr(ctx_factory, "native_args"):
                ns = native.motion_search(
                    reference, block, bx, by, cfg.search_window,
                    cfg.lambda_mv, spec[0], spec[1], [(0, 0), start],
                )
                if ns is not None:
                    result = MotionSearchResult(
                        mv=ns[0], cost=ns[1], sad_evaluations=ns[2],
                        pixel_ops=ns[2] * block.shape[0] * block.shape[1],
                        sad=ns[3],
                    )
            if result is None:
                result = search.search(
                    ctx_factory(cfg.search_window), start=start
                )
        ops.sad_pixel_ops += result.pixel_ops
        ops.me_candidates += result.sad_evaluations
        mv = clamp_mv(
            result.mv, bx, by, bw, bh, reference.shape[1], reference.shape[0]
        )
        prediction = motion_compensate(reference, bx, by, mv, bw, bh)
        if not cfg.half_pel:
            return mv, prediction
        assert upsampled is not None, "half_pel requires an upsampled reference"
        return self._halfpel_refine(
            upsampled, reference, block, bx, by, bw, bh, mv, prediction, ops
        )

    def _halfpel_refine(
        self,
        upsampled: np.ndarray,
        reference: np.ndarray,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        int_mv: tuple,
        int_prediction: np.ndarray,
        ops: OpCounts,
    ) -> tuple:
        """Evaluate the 8 half-pel neighbours of the integer optimum.

        All feasible neighbour blocks are gathered from the upsampled
        grid with one strided fancy index and reduced to SADs in a
        single pass — same candidates, same visiting order, same
        strict-improvement comparison as probing them one by one.
        """
        block_f = block.astype(np.float64)
        best_mv = (2 * int_mv[0], 2 * int_mv[1])
        best_pred = int_prediction
        best_sad = float(np.abs(block_f - int_prediction).sum())
        ref_h, ref_w = reference.shape
        base_sx = 2 * bx + 2 * int_mv[0]
        base_sy = 2 * by + 2 * int_mv[1]
        cands = []
        xs = []
        ys = []
        for hy in (-1, 0, 1):
            for hx in (-1, 0, 1):
                if hx == 0 and hy == 0:
                    continue
                cand = (2 * int_mv[0] + hx, 2 * int_mv[1] + hy)
                if not halfpel_feasible(cand, bx, by, bw, bh, ref_w, ref_h):
                    continue
                cands.append(cand)
                xs.append(base_sx + hx)
                ys.append(base_sy + hy)
        if not cands:
            return best_mv, best_pred
        if native.lib is not None and upsampled.flags.c_contiguous:
            # Integer SADs on the half-pel grid: the samples are uint8,
            # so the int64 sums equal the float sums below exactly.
            block_i = np.ascontiguousarray(block, dtype=np.int32)
            n = len(xs)
            nsc = native.scratch()
            if n > nsc.cap:
                nsc.ensure(n)
            nsc.xs[:n] = xs
            nsc.ys[:n] = ys
            native.lib.sad_batch_u8(
                upsampled.ctypes.data, upsampled.strides[0], 2,
                block_i.ctypes.data, bh, bw,
                nsc.xs_ptr, nsc.ys_ptr, n, nsc.sads_ptr,
            )
            sads = nsc.sads[:n]
            gathered = None
        else:
            # Windows of the half-pel grid sampled at integer pitch:
            # outer axes address the half-pel anchor, inner axes stride
            # by 2.
            s0, s1 = upsampled.strides
            uh, uw = upsampled.shape
            windows = np.ndarray(
                shape=(uh - 2 * bh + 2, uw - 2 * bw + 2, bh, bw),
                strides=(s0, s1, 2 * s0, 2 * s1),
                dtype=upsampled.dtype,
                buffer=upsampled,
            )
            gathered = windows[np.asarray(ys), np.asarray(xs)]  # (k, bh, bw)
            sads = np.abs(block_f - gathered).sum(axis=(1, 2))
        k = len(cands)
        ops.sad_pixel_ops += k * bw * bh
        ops.me_candidates += k
        ops.pred_pixels += k * bw * bh  # interpolation fetch
        best_idx = -1
        for idx, sad in enumerate(sads.tolist()):
            if sad < best_sad:
                best_mv, best_sad, best_idx = cands[idx], sad, idx
        if best_idx >= 0:
            if gathered is not None:
                best_pred = gathered[best_idx].astype(np.float64)
            else:
                sx, sy = xs[best_idx], ys[best_idx]
                best_pred = upsampled[
                    sy : sy + 2 * bh : 2, sx : sx + 2 * bw : 2
                ].astype(np.float64)
        return best_mv, best_pred

    def _encode_block(
        self,
        block: np.ndarray,
        bx: int,
        by: int,
        bw: int,
        bh: int,
        tile: Tile,
        frame_type: FrameType,
        references: List[np.ndarray],
        reconstruction: np.ndarray,
        left_mv: tuple,
        writer: Optional[BitWriter],
        motion_hook: Optional[MotionHook],
        ops: OpCounts,
        upsampled_refs: Optional[List[np.ndarray]] = None,
        stage_acc: Optional[Dict[str, float]] = None,
    ) -> tuple:
        cfg = self.config
        block_f = block.astype(np.float64)
        area = bw * bh
        # Pointer of the block samples, reused by every native kernel
        # call below (0 when native kernels are off).
        bf_ptr = block_f.ctypes.data if native.lib is not None else 0

        # --- intra candidate -------------------------------------------------
        top, left = reference_samples(reconstruction, bx, by, bw, bh, tile)
        if native.lib is not None and block_f.flags.c_contiguous:
            # Fused native decision; the winning prediction is
            # bit-identical to predict(), which the decoder shares.
            mode_i, intra_pred, intra_sad = native.choose_intra(
                block_f, top, left
            )
            intra_mode = IntraMode(mode_i)
        else:
            intra_mode, intra_pred, intra_sad = choose_mode(block_f, top, left)
        ops.pred_pixels += 4 * area  # four intra mode trials

        # --- inter candidates (P: list 0; B: list 0, list 1, bi) --------------
        # Each option: (mode_code, prediction, cost, rate_bits, mvs).
        options = []
        if stage_acc is not None:
            _t_motion = time.perf_counter()
        if frame_type is not FrameType.I and references:
            per_ref = []
            for ref_index, ref in enumerate(references):
                up = upsampled_refs[ref_index] if upsampled_refs else None
                mv, pred = self._search_reference(
                    ref, block, bx, by, bw, bh, left_mv, motion_hook, ops,
                    upsampled=up,
                )
                if (
                    bf_ptr
                    and pred.dtype == np.float64
                    and pred.flags.c_contiguous
                ):
                    # Bit-identical to the NumPy sum: both operands are
                    # integer-valued, so summation order cannot matter.
                    nsc = native.scratch()
                    native.lib.sad_pred_d(
                        bf_ptr, pred.ctypes.data, area, nsc.sad_ptr
                    )
                    sad = float(nsc.sad[0])
                else:
                    sad = float(np.abs(block_f - pred).sum())
                ops.pred_pixels += area
                per_ref.append((mv, pred, sad))
            list_bits = 2 if self._is_b_coded(frame_type, references) else 0
            for idx, (mv, pred, sad) in enumerate(per_ref):
                rate = list_bits + mvd_bit_length(mv, left_mv)
                options.append((idx, pred, sad + cfg.lambda_mv * rate, rate, (mv,)))
            if self._is_b_coded(frame_type, references):
                mv0, pred0, _ = per_ref[0]
                mv1, pred1, _ = per_ref[1]
                bi_pred = (pred0 + pred1) / 2.0
                bi_sad = float(np.abs(block_f - bi_pred).sum())
                ops.pred_pixels += area
                rate = list_bits + mvd_bit_length(mv0, left_mv) + mvd_bit_length(mv1, mv0)
                options.append((2, bi_pred, bi_sad + cfg.lambda_mv * rate, rate, (mv0, mv1)))

        if stage_acc is not None:
            stage_acc["motion"] += time.perf_counter() - _t_motion

        use_inter = False
        inter_mode = 0
        inter_rate = 0
        mvs: tuple = ((0, 0),)
        inter_pred = None
        if options:
            inter_mode, inter_pred, cost, inter_rate, mvs = min(
                options, key=lambda o: o[2]
            )
            use_inter = cost <= intra_sad
        mv = mvs[0]

        prediction = inter_pred if use_inter else intra_pred

        # --- residual coding --------------------------------------------------
        # Zero-block early skip: an orthonormal 8x8 DCT coefficient is
        # bounded by SAD/4, and a level survives quantization only when
        # |coef| >= 0.75 * Qstep, so a sub-block with SAD < 3 * Qstep
        # provably quantizes to all zeros — skip its transform.  This
        # is the skip-mode analogue that makes low-activity content
        # cheap in real encoders; the output bitstream is identical.
        if stage_acc is not None:
            _t_entropy = time.perf_counter()
        step = quantization_step(cfg.qp)
        zz = None
        ssd = None
        if (
            native.lib is not None
            and TRANSFORM_SIZE == 8
            and bw % TRANSFORM_SIZE == 0
            and bh % TRANSFORM_SIZE == 0
            and block_f.flags.c_contiguous
            and prediction.dtype == np.float64
            and prediction.flags.c_contiguous
            and reconstruction.dtype == np.uint8
            and reconstruction.flags.c_contiguous
        ):
            # Fully fused native pipeline: residual, zero skip, DCT,
            # quantization, zigzag bit count, reconstruction written
            # straight into the frame plane, and the block SSD — one
            # call with the module-constant basis/zigzag pointers.
            # The reconstruction kernel is the same one
            # reconstruct_block dispatches to, so the decoder matches.
            n_sub = (bh // TRANSFORM_SIZE) * (bw // TRANSFORM_SIZE)
            levels = np.empty((n_sub, 8, 8), dtype=np.int32)
            nsc = native.scratch()
            stride = reconstruction.strides[0]
            native.lib.encode_block_fused(
                block_f.ctypes.data, prediction.ctypes.data,
                bh, bw, step, _BASIS8_PTR, _ZZ_ORDER8_PTR,
                levels.ctypes.data,
                reconstruction.ctypes.data + by * stride + bx, stride,
                nsc.stats_ptr, nsc.sad_ptr,
            )
            residual_bits = int(nsc.stats[0])
            num_active = int(nsc.stats[1])
            ssd = float(nsc.sad[0])
        else:
            residual = block_f - prediction
            sub = blockify(residual, TRANSFORM_SIZE)
            sub_sad = np.abs(sub).sum(axis=(1, 2))
            active = sub_sad >= 3.0 * step
            levels = np.zeros(sub.shape, dtype=np.int32)
            num_active = int(active.sum())
            if num_active:
                coefs = forward_dct(sub[active])
                levels[active] = quantize(coefs, cfg.qp)
            zz = zigzag_scan(levels)
            residual_bits = count_stack_bits(zz)
        ops.transform_blocks += num_active
        ops.quant_coeffs += num_active * TRANSFORM_SIZE * TRANSFORM_SIZE

        header_bits = 0
        if frame_type is not FrameType.I:
            header_bits += 1  # inter/intra flag
        if use_inter:
            header_bits += inter_rate
        else:
            header_bits += 2  # intra mode index
        total_bits = header_bits + residual_bits
        ops.entropy_bits += total_bits

        if writer is not None:
            if frame_type is not FrameType.I:
                writer.write_bits(0 if use_inter else 1, 1)
            if use_inter:
                if self._is_b_coded(frame_type, references):
                    writer.write_bits(inter_mode, 2)
                write_mvd(writer, mvs[0], left_mv)
                if inter_mode == 2:
                    write_mvd(writer, mvs[1], mvs[0])
                elif inter_mode == 1:
                    pass  # list-1 MV was written as mvs[0]
            else:
                writer.write_bits(int(intra_mode), 2)
            if zz is None:
                zz = zigzag_scan(levels)
            for i in range(zz.shape[0]):
                write_block(writer, zz[i])

        if stage_acc is not None:
            stage_acc["entropy"] += time.perf_counter() - _t_entropy

        # --- reconstruction ----------------------------------------------------
        # The fused native path already reconstructed into the plane
        # and computed the SSD (integer samples: exact in any order).
        if ssd is None:
            recon = reconstruct_block(prediction, levels, cfg.qp)
            reconstruction[by : by + bh, bx : bx + bw] = recon
            diff = block_f - recon
            ssd = float((diff * diff).sum())
        ops.pred_pixels += area

        info = BlockInfo(
            bx=bx, by=by, bw=bw, bh=bh,
            use_inter=use_inter, mode=inter_mode if use_inter else 0,
            mvs=mvs if use_inter else ((0, 0),),
        )
        return total_bits, ssd, (mv if use_inter else left_mv), info


class FrameEncoder:
    """Encodes a full frame over a tile grid with per-tile configs."""

    #: Frame-type codes in the bitstream header.
    FRAME_TYPE_CODES = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}

    def encode(
        self,
        original: np.ndarray,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        frame_type: FrameType,
        reference: ReferenceLike = None,
        frame_index: int = 0,
        writer: Optional[BitWriter] = None,
        motion_hooks: Optional[Sequence[Optional[MotionHook]]] = None,
        block_infos_out: Optional[List[List[BlockInfo]]] = None,
    ) -> tuple:
        """Returns ``(FrameStats, reconstruction)``.

        ``reference`` accepts a single reconstructed plane (P frames)
        or a sequence of up to two planes, most recent first (B
        frames).
        """
        if len(configs) != len(grid):
            raise ValueError(
                f"{len(configs)} configs for {len(grid)} tiles"
            )
        if motion_hooks is not None and len(motion_hooks) != len(grid):
            raise ValueError("motion_hooks length must match tile count")
        if original.shape != (grid.frame_height, grid.frame_width):
            raise ValueError(
                f"frame {original.shape} does not match grid "
                f"{grid.frame_height}x{grid.frame_width}"
            )
        if writer is not None:
            writer.write_bits(self.FRAME_TYPE_CODES[frame_type], 2)
        upsampled_refs = None
        if frame_type is not FrameType.I and any(c.half_pel for c in configs):
            refs = normalize_references(reference, frame_type)
            upsampled_refs = [upsample2x_cached(r) for r in refs]
        reconstruction = np.zeros_like(original)
        tile_stats = []
        tracer = get_tracer()
        trace_on = tracer.enabled
        for i, tile in enumerate(grid):
            hook = motion_hooks[i] if motion_hooks is not None else None
            encoder = TileEncoder(configs[i])
            info_sink: Optional[List[BlockInfo]] = None
            if block_infos_out is not None:
                info_sink = []
                block_infos_out.append(info_sink)
            with tracer.span("stage.encode", tile=i, frame=frame_index,
                             type=frame_type.value):
                stats = encoder.encode(
                    original, reference, reconstruction, tile, frame_type,
                    writer=writer, motion_hook=hook,
                    upsampled_refs=upsampled_refs if configs[i].half_pel else None,
                    block_info_out=info_sink,
                    measure_stages=trace_on,
                )
                if trace_on and stats.stage_seconds is not None:
                    tracer.record_span(
                        "stage.motion", stats.stage_seconds["motion"],
                        tile=i, frame=frame_index,
                    )
                    tracer.record_span(
                        "stage.entropy", stats.stage_seconds["entropy"],
                        tile=i, frame=frame_index,
                    )
            tile_stats.append(stats)
        return (
            FrameStats(frame_index=frame_index, frame_type=frame_type,
                       tiles=tile_stats),
            reconstruction,
        )


@dataclass
class ChromaStats:
    """Chroma-plane encoding outcome of one frame (U and V)."""

    bits: int = 0
    ssd_u: float = 0.0
    ssd_v: float = 0.0
    num_pixels: int = 0  # per plane
    ops: OpCounts = field(default_factory=OpCounts)

    @property
    def psnr_u(self) -> float:
        if self.num_pixels == 0:
            raise ValueError("no chroma pixels encoded")
        return psnr_from_mse(self.ssd_u / self.num_pixels)

    @property
    def psnr_v(self) -> float:
        if self.num_pixels == 0:
            raise ValueError("no chroma pixels encoded")
        return psnr_from_mse(self.ssd_v / self.num_pixels)


class FrameCodec:
    """Frame-level encode with 4:2:0 chroma (extension entry point).

    ``encode_frame`` wraps :class:`FrameEncoder` for luma and appends
    the chroma payload (U then V per tile) when the frame carries
    chroma planes.  References are :class:`~repro.video.frame.Frame`
    objects so chroma reconstruction travels with luma.
    """

    def __init__(self) -> None:
        self._frame_encoder = FrameEncoder()

    def encode_frame(
        self,
        frame: Frame,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        frame_type: FrameType,
        reference_frames: Optional[Sequence[Frame]] = None,
        frame_index: int = 0,
        writer: Optional[BitWriter] = None,
        motion_hooks: Optional[Sequence[Optional[MotionHook]]] = None,
    ) -> tuple:
        """Returns ``(FrameStats, Optional[ChromaStats], Frame)``."""
        reference_frames = list(reference_frames or [])
        luma_refs = [f.luma for f in reference_frames]
        infos: List[List[BlockInfo]] = []
        stats, recon_luma = self._frame_encoder.encode(
            frame.luma, grid, configs, frame_type,
            reference=luma_refs, frame_index=frame_index, writer=writer,
            motion_hooks=motion_hooks, block_infos_out=infos,
        )
        recon = Frame(recon_luma, index=frame_index)
        if frame.chroma_u is None or frame.chroma_v is None:
            return stats, None, recon

        refs_u = [f.chroma_u for f in reference_frames if f.chroma_u is not None]
        refs_v = [f.chroma_v for f in reference_frames if f.chroma_v is not None]
        recon_u = np.zeros_like(frame.chroma_u)
        recon_v = np.zeros_like(frame.chroma_v)
        chroma = ChromaStats(num_pixels=int(frame.chroma_u.size))
        for i, tile in enumerate(grid):
            for plane, refs, recon_plane, attr in (
                (frame.chroma_u, refs_u, recon_u, "ssd_u"),
                (frame.chroma_v, refs_v, recon_v, "ssd_v"),
            ):
                bits, ssd = encode_chroma_plane(
                    plane, refs, recon_plane, tile, infos[i],
                    configs[i].qp, half_pel=configs[i].half_pel,
                    writer=writer, ops=chroma.ops,
                )
                chroma.bits += bits
                setattr(chroma, attr, getattr(chroma, attr) + ssd)
        recon.chroma_u = recon_u
        recon.chroma_v = recon_v
        return stats, chroma, recon


class VideoEncoder:
    """Encodes a video with a fixed tile grid and uniform config.

    This is the encoder used for the paper's Table I experiments
    (uniform tilings, one search algorithm for the whole sequence).
    The full content-aware pipeline lives in
    :mod:`repro.transcode.pipeline`.
    """

    def __init__(
        self,
        config: EncoderConfig,
        gop: GopConfig = GopConfig(),
        parallel_workers: Optional[int] = None,
    ):
        self.config = config
        self.gop = gop
        self._frame_encoder = FrameEncoder()
        #: ``None`` encodes serially; an integer enables the
        #: tile-parallel executor with that many workers (0 means one
        #: per core).  Bit-exact either way.
        self.parallel_workers = parallel_workers

    def encode(
        self,
        video: Video,
        grid: Optional[TileGrid] = None,
        motion_hook_factory: Optional[Callable[[int, int], Optional[MotionHook]]] = None,
    ) -> SequenceStats:
        """Encode ``video``; returns sequence statistics.

        ``motion_hook_factory(frame_index, tile_index)`` may supply a
        per-tile motion hook (used to drive the proposed search policy).
        Hook closures cannot cross process boundaries, so frames with
        hooks are always encoded serially even when ``parallel_workers``
        is set.
        """
        if len(video) == 0:
            raise ValueError("cannot encode an empty video")
        if grid is None:
            grid = TileGrid.single(video.width, video.height)
        executor = None
        if self.parallel_workers is not None:
            # Deferred import: the executor module imports this one.
            from repro.parallel.executor import TileParallelExecutor

            executor = TileParallelExecutor(self.parallel_workers or None)
        configs = [self.config] * len(grid)
        stats = SequenceStats()
        references: List[np.ndarray] = []  # most recent first
        try:
            for frame in video:
                frame_type = self.gop.frame_type(frame.index)
                hooks = None
                if motion_hook_factory is not None and frame_type is not FrameType.I:
                    hooks = [
                        motion_hook_factory(frame.index, t) for t in range(len(grid))
                    ]
                if executor is not None and hooks is None:
                    frame_stats, reconstruction = executor.encode_frame(
                        frame.luma, grid, configs, frame_type,
                        reference=references, frame_index=frame.index,
                    )
                else:
                    frame_stats, reconstruction = self._frame_encoder.encode(
                        frame.luma, grid, configs, frame_type,
                        reference=references, frame_index=frame.index,
                        motion_hooks=hooks,
                    )
                stats.frames.append(frame_stats)
                references = [reconstruction] + references[:1]
        finally:
            if executor is not None:
                executor.close()
        return stats
