"""Bit-exact bitstream writer/reader with exponential-Golomb codes.

The entropy layer of the codec substrate.  ``ue``/``se`` are the
unsigned/signed exp-Golomb codes of H.264/HEVC syntax.  Writers and
readers are symmetric: every ``write_*`` has a ``read_*`` that consumes
exactly the same bits, which the round-trip tests verify.
"""

from __future__ import annotations

from typing import List


def ue_bit_length(value: int) -> int:
    """Number of bits of the unsigned exp-Golomb code of ``value >= 0``."""
    if value < 0:
        raise ValueError(f"ue requires non-negative value, got {value}")
    return 2 * (value + 1).bit_length() - 1


def se_bit_length(value: int) -> int:
    """Number of bits of the signed exp-Golomb code of ``value``."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return ue_bit_length(mapped)


class BitWriter:
    """Accumulates bits most-significant-first into bytes."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._bit_count = 0
        self.bits_written = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._bit_count += 1
        self.bits_written += 1
        if self._bit_count == 8:
            self._bytes.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, MSB first.

        Batched: the value is spliced into the accumulator whole and
        flushed a byte at a time, instead of looping bit by bit.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if value < 0 or (count < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {count} bits")
        acc = (self._accumulator << count) | value
        n = self._bit_count + count
        self.bits_written += count
        out = self._bytes
        while n >= 8:
            n -= 8
            out.append((acc >> n) & 0xFF)
        self._accumulator = acc & ((1 << n) - 1)
        self._bit_count = n

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb."""
        if value < 0:
            raise ValueError(f"ue requires non-negative value, got {value}")
        code = value + 1
        length = code.bit_length()
        self.write_bits(0, length - 1)  # leading zeros
        self.write_bits(code, length)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb (positive maps to odd codes)."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def append_bits(self, data: bytes, nbits: int) -> None:
        """Append the first ``nbits`` bits of ``data``, MSB-first.

        Splices another writer's flushed payload (``data = w.flush()``,
        ``nbits = w.bits_written``) into this stream at the current bit
        position, as if every bit had been written here directly —
        the primitive behind merging per-tile bitstreams.
        """
        if nbits < 0 or nbits > len(data) * 8:
            raise ValueError(f"{nbits} bits not available in {len(data)} bytes")
        full, rem = divmod(nbits, 8)
        if self._bit_count == 0:
            # Byte-aligned fast path: splice whole bytes directly.
            self._bytes.extend(data[:full])
            self.bits_written += full * 8
        else:
            for byte in data[:full]:
                self.write_bits(byte, 8)
        if rem:
            self.write_bits(data[full] >> (8 - rem), rem)

    def flush(self) -> bytes:
        """Byte-align with zero padding and return the stream."""
        while self._bit_count != 0:
            self.write_bit(0)
        return bytes(self._bytes)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._data) * 8:
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_ue(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > 64:
                raise ValueError("malformed exp-Golomb code")
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value - 1

    def read_se(self) -> int:
        mapped = self.read_ue()
        if mapped % 2 == 1:
            return (mapped + 1) // 2
        return -(mapped // 2)
