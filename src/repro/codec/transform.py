"""2-D DCT / inverse DCT on stacks of square transform blocks.

HEVC uses integer approximations of the DCT-II; the orthonormal
floating DCT-II used here has the same energy-compaction behaviour,
and determinism is preserved because quantization (not the transform)
is the only lossy stage: encoder and decoder run the *same* inverse
transform on the *same* dequantized coefficients.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Transform block edge length used by the codec substrate.
TRANSFORM_SIZE = 8

#: Per-size cache of orthonormal DCT-II basis matrices.
_BASES: Dict[int, np.ndarray] = {}


def dct_basis(n: int) -> np.ndarray:
    """Orthonormal DCT-II basis matrix ``C`` with ``C @ C.T == I``.

    Row ``k`` is ``s_k * cos(pi * (2j + 1) * k / (2n))`` with
    ``s_0 = sqrt(1/n)`` and ``s_k = sqrt(2/n)`` otherwise, so
    ``C @ x`` is the 1-D orthonormal DCT-II of ``x``.
    """
    basis = _BASES.get(n)
    if basis is None:
        k = np.arange(n).reshape(-1, 1)
        j = np.arange(n).reshape(1, -1)
        basis = np.cos(np.pi * (2 * j + 1) * k / (2 * n)) * np.sqrt(2.0 / n)
        basis[0] *= np.sqrt(0.5)
        basis.flags.writeable = False
        _BASES[n] = basis
    return basis


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal 2-D DCT-II over the trailing two axes.

    ``blocks`` has shape ``(..., N, N)`` of residual samples.  The
    separable transform is applied as two dense matrix products
    (``C @ X @ C.T``): for the 8x8 blocks used here that beats a
    general FFT-based DCT, whose per-call planning overhead dominates
    at this size, and it broadcasts over arbitrary leading stack axes.
    """
    basis = dct_basis(blocks.shape[-1])
    return basis @ blocks.astype(np.float64, copy=False) @ basis.T


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct` (``C.T @ X @ C``)."""
    basis = dct_basis(coefficients.shape[-1])
    return basis.T @ coefficients.astype(np.float64, copy=False) @ basis


def blockify(region: np.ndarray, size: int = TRANSFORM_SIZE) -> np.ndarray:
    """Split an ``(H, W)`` region into a ``(H//size * W//size, size, size)``
    stack, row-major.  ``H`` and ``W`` must be multiples of ``size``."""
    h, w = region.shape
    if h % size or w % size:
        raise ValueError(f"region {w}x{h} not divisible by transform size {size}")
    return (
        region.reshape(h // size, size, w // size, size)
        .swapaxes(1, 2)
        .reshape(-1, size, size)
    )


def unblockify(blocks: np.ndarray, height: int, width: int,
               size: int = TRANSFORM_SIZE) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    rows, cols = height // size, width // size
    if blocks.shape[0] != rows * cols:
        raise ValueError(
            f"{blocks.shape[0]} blocks cannot tile a {width}x{height} region"
        )
    return (
        blocks.reshape(rows, cols, size, size)
        .swapaxes(1, 2)
        .reshape(height, width)
    )
