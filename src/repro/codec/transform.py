"""2-D DCT / inverse DCT on stacks of square transform blocks.

HEVC uses integer approximations of the DCT-II; the orthonormal
floating DCT-II used here has the same energy-compaction behaviour,
and determinism is preserved because quantization (not the transform)
is the only lossy stage: encoder and decoder run the *same* inverse
transform on the *same* dequantized coefficients.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

#: Transform block edge length used by the codec substrate.
TRANSFORM_SIZE = 8


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal 2-D DCT-II over the trailing two axes.

    ``blocks`` has shape ``(..., N, N)`` of residual samples.
    """
    return dctn(blocks.astype(np.float64, copy=False), axes=(-2, -1), norm="ortho")


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    return idctn(
        coefficients.astype(np.float64, copy=False), axes=(-2, -1), norm="ortho"
    )


def blockify(region: np.ndarray, size: int = TRANSFORM_SIZE) -> np.ndarray:
    """Split an ``(H, W)`` region into a ``(H//size * W//size, size, size)``
    stack, row-major.  ``H`` and ``W`` must be multiples of ``size``."""
    h, w = region.shape
    if h % size or w % size:
        raise ValueError(f"region {w}x{h} not divisible by transform size {size}")
    return (
        region.reshape(h // size, size, w // size, size)
        .swapaxes(1, 2)
        .reshape(-1, size, size)
    )


def unblockify(blocks: np.ndarray, height: int, width: int,
               size: int = TRANSFORM_SIZE) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    rows, cols = height // size, width // size
    if blocks.shape[0] != rows * cols:
        raise ValueError(
            f"{blocks.shape[0]} blocks cannot tile a {width}x{height} region"
        )
    return (
        blocks.reshape(rows, cols, size, size)
        .swapaxes(1, 2)
        .reshape(height, width)
    )
