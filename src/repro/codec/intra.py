"""Intra prediction: DC, planar, horizontal, vertical.

HEVC defines 35 intra modes; the four implemented here are the ones
that capture the bulk of intra coding gain on smooth medical content
(DC/planar dominate mode statistics on low-texture regions).  As in
HEVC, tiles break intra prediction dependencies: reference samples are
only *available* inside the current tile, since tiles must be
independently decodable.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.tiling.tile import Tile

#: Neutral sample value used when no reference samples are available
#: (HEVC's 1 << (bitDepth - 1)).
DEFAULT_SAMPLE = 128


class IntraMode(enum.IntEnum):
    """Intra prediction modes; values are the coded 2-bit indices."""

    DC = 0
    PLANAR = 1
    HORIZONTAL = 2
    VERTICAL = 3


def reference_samples(
    reconstruction: np.ndarray,
    x: int,
    y: int,
    block_w: int,
    block_h: int,
    tile: Tile,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Top row and left column of reconstructed neighbours.

    Returns ``(top, left)`` where each is ``None`` when outside the
    current tile (tile boundaries break prediction).
    """
    top = None
    left = None
    if y - 1 >= tile.y:
        top = reconstruction[y - 1, x : x + block_w].astype(np.float64)
    if x - 1 >= tile.x:
        left = reconstruction[y : y + block_h, x - 1].astype(np.float64)
    return top, left


def predict(
    mode: IntraMode,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
    block_w: int,
    block_h: int,
) -> np.ndarray:
    """Build the prediction block for ``mode`` from reference samples."""
    if mode is IntraMode.DC:
        refs = [r for r in (top, left) if r is not None]
        value = float(np.mean(np.concatenate(refs))) if refs else DEFAULT_SAMPLE
        return np.full((block_h, block_w), value)

    if mode is IntraMode.VERTICAL:
        row = top if top is not None else np.full(block_w, DEFAULT_SAMPLE, float)
        return np.tile(row, (block_h, 1))

    if mode is IntraMode.HORIZONTAL:
        col = left if left is not None else np.full(block_h, DEFAULT_SAMPLE, float)
        return np.tile(col.reshape(-1, 1), (1, block_w))

    if mode is IntraMode.PLANAR:
        row = top if top is not None else np.full(block_w, DEFAULT_SAMPLE, float)
        col = left if left is not None else np.full(block_h, DEFAULT_SAMPLE, float)
        # Simplified planar: blend the vertical and horizontal ramps
        # toward the opposite-corner reference estimates.
        top_right = row[-1]
        bottom_left = col[-1]
        wx = np.arange(1, block_w + 1) / (block_w + 1)
        wy = np.arange(1, block_h + 1) / (block_h + 1)
        horiz = col.reshape(-1, 1) * (1 - wx) + top_right * wx
        vert = row * (1 - wy.reshape(-1, 1)) + bottom_left * wy.reshape(-1, 1)
        return (horiz + vert) / 2.0

    raise ValueError(f"unknown intra mode {mode}")


def choose_mode(
    original: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
) -> Tuple[IntraMode, np.ndarray, float]:
    """Pick the SAD-best mode; returns (mode, prediction, sad)."""
    block_h, block_w = original.shape
    original_f = original.astype(np.float64)
    best: Tuple[IntraMode, np.ndarray, float] = None  # type: ignore[assignment]
    for mode in IntraMode:
        pred = predict(mode, top, left, block_w, block_h)
        sad = float(np.abs(original_f - pred).sum())
        if best is None or sad < best[2]:
            best = (mode, pred, sad)
    return best
