"""Intra prediction: DC, planar, horizontal, vertical.

HEVC defines 35 intra modes; the four implemented here are the ones
that capture the bulk of intra coding gain on smooth medical content
(DC/planar dominate mode statistics on low-texture regions).  As in
HEVC, tiles break intra prediction dependencies: reference samples are
only *available* inside the current tile, since tiles must be
independently decodable.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro import native
from repro.tiling.tile import Tile

#: Neutral sample value used when no reference samples are available
#: (HEVC's 1 << (bitDepth - 1)).
DEFAULT_SAMPLE = 128

#: Cached read-only helper arrays, keyed by length / block size.  Intra
#: prediction runs once per block, so ramp/default construction would
#: otherwise dominate the arithmetic.
_DEFAULT_REFS: dict = {}
_PLANAR_RAMPS: dict = {}


def _default_ref(length: int) -> np.ndarray:
    ref = _DEFAULT_REFS.get(length)
    if ref is None:
        ref = np.full(length, DEFAULT_SAMPLE, float)
        ref.flags.writeable = False
        _DEFAULT_REFS[length] = ref
    return ref


def _planar_ramp(length: int) -> np.ndarray:
    ramp = _PLANAR_RAMPS.get(length)
    if ramp is None:
        ramp = np.arange(1, length + 1) / (length + 1)
        ramp.flags.writeable = False
        _PLANAR_RAMPS[length] = ramp
    return ramp


def _dc_value(top: Optional[np.ndarray], left: Optional[np.ndarray]) -> float:
    """Mean of the available reference samples (integer-valued floats,
    so the summation order cannot change the result)."""
    if top is None and left is None:
        return float(DEFAULT_SAMPLE)
    total = 0.0
    count = 0
    for ref in (top, left):
        if ref is not None:
            total += float(np.add.reduce(ref))
            count += ref.size
    return total / count


class IntraMode(enum.IntEnum):
    """Intra prediction modes; values are the coded 2-bit indices."""

    DC = 0
    PLANAR = 1
    HORIZONTAL = 2
    VERTICAL = 3


def reference_samples(
    reconstruction: np.ndarray,
    x: int,
    y: int,
    block_w: int,
    block_h: int,
    tile: Tile,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Top row and left column of reconstructed neighbours.

    Returns ``(top, left)`` where each is ``None`` when outside the
    current tile (tile boundaries break prediction).
    """
    top = None
    left = None
    if y - 1 >= tile.y:
        top = reconstruction[y - 1, x : x + block_w].astype(np.float64)
    if x - 1 >= tile.x:
        left = reconstruction[y : y + block_h, x - 1].astype(np.float64)
    return top, left


def predict(
    mode: IntraMode,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
    block_w: int,
    block_h: int,
) -> np.ndarray:
    """Build the prediction block for ``mode`` from reference samples."""
    if mode is IntraMode.DC:
        return np.full((block_h, block_w), _dc_value(top, left))

    if mode is IntraMode.VERTICAL:
        row = top if top is not None else _default_ref(block_w)
        return np.tile(row, (block_h, 1))

    if mode is IntraMode.HORIZONTAL:
        col = left if left is not None else _default_ref(block_h)
        return np.tile(col.reshape(-1, 1), (1, block_w))

    if mode is IntraMode.PLANAR:
        row = top if top is not None else _default_ref(block_w)
        col = left if left is not None else _default_ref(block_h)
        # Simplified planar: blend the vertical and horizontal ramps
        # toward the opposite-corner reference estimates.
        top_right = row[-1]
        bottom_left = col[-1]
        wx = _planar_ramp(block_w)
        wy = _planar_ramp(block_h)
        horiz = col.reshape(-1, 1) * (1 - wx) + top_right * wx
        vert = row * (1 - wy.reshape(-1, 1)) + bottom_left * wy.reshape(-1, 1)
        return (horiz + vert) / 2.0

    raise ValueError(f"unknown intra mode {mode}")


def choose_mode(
    original: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
) -> Tuple[IntraMode, np.ndarray, float]:
    """Pick the SAD-best mode; returns (mode, prediction, sad).

    DC/horizontal/vertical SADs are computed by broadcasting against
    the reference row/column directly (bit-identical to materialising
    the tiled prediction first, since broadcasting repeats the exact
    same values); only the winning mode's prediction block is built
    via :func:`predict`, which the decoder shares.  Ties break toward
    the lower mode index, as the sequential loop did.
    """
    block_h, block_w = original.shape
    original_f = original.astype(np.float64, copy=False)
    dc = _dc_value(top, left)
    planar = predict(IntraMode.PLANAR, top, left, block_w, block_h)
    if (
        native.lib is not None
        and original_f.flags.c_contiguous
        and planar.flags.c_contiguous
        and (top is None or (top.dtype == np.float64 and top.flags.c_contiguous))
        and (left is None or (left.dtype == np.float64 and left.flags.c_contiguous))
    ):
        sads = native.intra_sads(original_f, top, left, dc, planar)
    else:
        row = top if top is not None else _default_ref(block_w)
        col = left if left is not None else _default_ref(block_h)
        sads = (
            float(np.abs(original_f - dc).sum()),
            float(np.abs(original_f - planar).sum()),
            float(np.abs(original_f - col.reshape(-1, 1)).sum()),
            float(np.abs(original_f - row).sum()),
        )
    best_mode = IntraMode.DC
    best_sad = sads[0]
    for mode in (IntraMode.PLANAR, IntraMode.HORIZONTAL, IntraMode.VERTICAL):
        if sads[mode] < best_sad:
            best_mode = mode
            best_sad = sads[mode]
    if best_mode is IntraMode.PLANAR:
        pred = planar
    else:
        pred = predict(best_mode, top, left, block_w, block_h)
    return best_mode, pred, best_sad
