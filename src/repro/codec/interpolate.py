"""Half-pel interpolation for sub-pixel motion compensation.

HEVC predicts at quarter-pel precision with 7/8-tap filters; this
substrate implements the H.264-style half-pel grid with the classic
6-tap filter ``[1, -5, 20, 20, -5, 1] / 32``.  The upsampled plane is
rounded back to ``uint8``, so the encoder and decoder — which share
these exact functions — stay bit-exact.

The half-pel grid doubles both axes: integer sample ``(x, y)`` lives at
``(2x, 2y)``; a motion vector in half-pel units addresses the grid
directly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The 6-tap half-pel filter of H.264 (normalised).
_TAPS = np.array([1.0, -5.0, 20.0, 20.0, -5.0, 1.0]) / 32.0


def _filter_axis0(plane: np.ndarray) -> np.ndarray:
    """6-tap filter between vertically adjacent samples."""
    pad = np.pad(plane, ((2, 3), (0, 0)), mode="edge")
    out = np.zeros_like(plane, dtype=np.float64)
    for k, tap in enumerate(_TAPS):
        out += tap * pad[k : k + plane.shape[0]]
    return out


def _filter_axis1(plane: np.ndarray) -> np.ndarray:
    """6-tap filter between horizontally adjacent samples."""
    pad = np.pad(plane, ((0, 0), (2, 3)), mode="edge")
    out = np.zeros_like(plane, dtype=np.float64)
    for k, tap in enumerate(_TAPS):
        out += tap * pad[:, k : k + plane.shape[1]]
    return out


def upsample2x(plane: np.ndarray) -> np.ndarray:
    """Half-pel upsampled plane of shape ``(2H, 2W)``, ``uint8``.

    Integer positions are copied; horizontal/vertical half positions
    use the 6-tap filter; diagonal halves filter the horizontal halves
    vertically (the H.264 ordering).
    """
    p = plane.astype(np.float64)
    h, w = p.shape
    out = np.zeros((2 * h, 2 * w), dtype=np.float64)
    out[::2, ::2] = p
    horiz = _filter_axis1(p)
    out[::2, 1::2] = horiz
    out[1::2, ::2] = _filter_axis0(p)
    out[1::2, 1::2] = _filter_axis0(horiz)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def halfpel_feasible(
    mv_half: Tuple[int, int],
    x: int,
    y: int,
    block_w: int,
    block_h: int,
    ref_w: int,
    ref_h: int,
) -> bool:
    """Whether a half-pel MV keeps the whole block inside the grid."""
    sx = 2 * x + mv_half[0]
    sy = 2 * y + mv_half[1]
    return (
        sx >= 0
        and sy >= 0
        and sx + 2 * (block_w - 1) <= 2 * ref_w - 2
        and sy + 2 * (block_h - 1) <= 2 * ref_h - 2
    )


def sample_halfpel(
    upsampled: np.ndarray,
    x: int,
    y: int,
    mv_half: Tuple[int, int],
    block_w: int,
    block_h: int,
) -> np.ndarray:
    """Fetch a block at half-pel displacement ``mv_half`` from the
    upsampled plane (``float64`` output, like integer compensation)."""
    sx = 2 * x + mv_half[0]
    sy = 2 * y + mv_half[1]
    if sx < 0 or sy < 0:
        raise ValueError(f"half-pel MV {mv_half} at ({x},{y}) out of bounds")
    block = upsampled[sy : sy + 2 * block_h : 2, sx : sx + 2 * block_w : 2]
    if block.shape != (block_h, block_w):
        raise ValueError(f"half-pel MV {mv_half} at ({x},{y}) out of bounds")
    return block.astype(np.float64)
