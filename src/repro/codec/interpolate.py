"""Half-pel interpolation for sub-pixel motion compensation.

HEVC predicts at quarter-pel precision with 7/8-tap filters; this
substrate implements the H.264-style half-pel grid with the classic
6-tap filter ``[1, -5, 20, 20, -5, 1] / 32``.  The upsampled plane is
rounded back to ``uint8``, so the encoder and decoder — which share
these exact functions — stay bit-exact.

The half-pel grid doubles both axes: integer sample ``(x, y)`` lives at
``(2x, 2y)``; a motion vector in half-pel units addresses the grid
directly.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Tuple

import numpy as np

#: The 6-tap half-pel filter of H.264 (normalised).
_TAPS = np.array([1.0, -5.0, 20.0, 20.0, -5.0, 1.0]) / 32.0

#: LRU of half-pel planes keyed by reference-plane identity.  Eight
#: entries cover several concurrently referenced frames per stream.
_HALFPEL_CACHE_SIZE = 8
_HALFPEL_CACHE: "OrderedDict[int, Tuple[weakref.ref, np.ndarray]]" = OrderedDict()
_HALFPEL_LOCK = threading.Lock()


def _filter_axis0(plane: np.ndarray) -> np.ndarray:
    """6-tap filter between vertically adjacent samples."""
    pad = np.pad(plane, ((2, 3), (0, 0)), mode="edge")
    out = np.zeros_like(plane, dtype=np.float64)
    for k, tap in enumerate(_TAPS):
        out += tap * pad[k : k + plane.shape[0]]
    return out


def _filter_axis1(plane: np.ndarray) -> np.ndarray:
    """6-tap filter between horizontally adjacent samples."""
    pad = np.pad(plane, ((0, 0), (2, 3)), mode="edge")
    out = np.zeros_like(plane, dtype=np.float64)
    for k, tap in enumerate(_TAPS):
        out += tap * pad[:, k : k + plane.shape[1]]
    return out


def upsample2x(plane: np.ndarray) -> np.ndarray:
    """Half-pel upsampled plane of shape ``(2H, 2W)``, ``uint8``.

    Integer positions are copied; horizontal/vertical half positions
    use the 6-tap filter; diagonal halves filter the horizontal halves
    vertically (the H.264 ordering).
    """
    p = plane.astype(np.float64)
    h, w = p.shape
    out = np.zeros((2 * h, 2 * w), dtype=np.float64)
    out[::2, ::2] = p
    horiz = _filter_axis1(p)
    out[::2, 1::2] = horiz
    out[1::2, ::2] = _filter_axis0(p)
    out[1::2, 1::2] = _filter_axis0(horiz)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def upsample2x_cached(plane: np.ndarray) -> np.ndarray:
    """Memoized :func:`upsample2x`, keyed on plane object identity.

    The encoder interpolates the same reference plane once per block
    without this cache; with it, each distinct plane is upsampled once
    per process.  The key is ``id(plane)`` guarded by a weak reference,
    so a recycled id cannot alias a dead plane, and entries vanish with
    their planes.  Callers must not mutate a plane after passing it
    here — reference planes are immutable once reconstructed, which is
    what makes identity a sound cache key.
    """
    key = id(plane)
    with _HALFPEL_LOCK:
        entry = _HALFPEL_CACHE.get(key)
        if entry is not None:
            ref, upsampled = entry
            if ref() is plane:
                _HALFPEL_CACHE.move_to_end(key)
                return upsampled
            del _HALFPEL_CACHE[key]
    upsampled = upsample2x(plane)
    with _HALFPEL_LOCK:
        _HALFPEL_CACHE[key] = (weakref.ref(plane), upsampled)
        while len(_HALFPEL_CACHE) > _HALFPEL_CACHE_SIZE:
            _HALFPEL_CACHE.popitem(last=False)
    return upsampled


def halfpel_feasible(
    mv_half: Tuple[int, int],
    x: int,
    y: int,
    block_w: int,
    block_h: int,
    ref_w: int,
    ref_h: int,
) -> bool:
    """Whether a half-pel MV keeps the whole block inside the grid."""
    sx = 2 * x + mv_half[0]
    sy = 2 * y + mv_half[1]
    return (
        sx >= 0
        and sy >= 0
        and sx + 2 * (block_w - 1) <= 2 * ref_w - 2
        and sy + 2 * (block_h - 1) <= 2 * ref_h - 2
    )


def sample_halfpel(
    upsampled: np.ndarray,
    x: int,
    y: int,
    mv_half: Tuple[int, int],
    block_w: int,
    block_h: int,
) -> np.ndarray:
    """Fetch a block at half-pel displacement ``mv_half`` from the
    upsampled plane (``float64`` output, like integer compensation)."""
    sx = 2 * x + mv_half[0]
    sy = 2 * y + mv_half[1]
    if sx < 0 or sy < 0:
        raise ValueError(f"half-pel MV {mv_half} at ({x},{y}) out of bounds")
    block = upsampled[sy : sy + 2 * block_h : 2, sx : sx + 2 * block_w : 2]
    if block.shape != (block_h, block_w):
        raise ValueError(f"half-pel MV {mv_half} at ({x},{y}) out of bounds")
    return block.astype(np.float64)
