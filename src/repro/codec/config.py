"""Encoder configuration.

:class:`EncoderConfig` captures the per-tile encoding knobs the paper
tunes (§III-C): the quantization parameter, the motion search algorithm
and its window.  :class:`GopConfig` captures the GOP structure: the
paper uses a Random Access configuration with GOP size 8, re-tiling and
allocation once per GOP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.codec.quant import MAX_QP, MIN_QP
from repro.motion.base import MotionSearch
from repro.motion.registry import get_search


class FrameType(enum.Enum):
    """Frame coding types.

    The paper's Random Access configuration uses B slices.  The
    substrate supports I (intra-only), P (one past reference) and B
    (bi-prediction from the two most recent references, low-delay
    order).  The default pipeline uses I+P — bi-prediction shifts
    absolute rate but not the content/QP/search-window dependences the
    paper's mechanisms exploit (see DESIGN.md) — and B frames are
    enabled via ``GopConfig(use_b_frames=True)``.
    """

    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class GopConfig:
    """Group-of-pictures structure (paper: RA, GOP of size 8).

    With ``use_b_frames=True``, frames after the second of each GOP are
    coded as B (low-delay: both references are past frames), matching
    the paper's "B slices allow both intra- and inter-picture
    predictions" at the substrate's single-direction reordering level.
    """

    size: int = 8
    use_b_frames: bool = False

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("GOP size must be >= 1")

    def frame_type(self, frame_index: int) -> FrameType:
        pos = frame_index % self.size
        if pos == 0:
            return FrameType.I
        if self.use_b_frames and pos >= 2:
            return FrameType.B
        return FrameType.P

    def is_gop_start(self, frame_index: int) -> bool:
        return frame_index % self.size == 0

    def position_in_gop(self, frame_index: int) -> int:
        return frame_index % self.size


@dataclass(frozen=True)
class EncoderConfig:
    """Per-tile encoding knobs.

    Attributes
    ----------
    qp:
        Quantization parameter (paper ladder: 22/27/32/37/42).
    search:
        Motion search algorithm name (see ``repro.motion.registry``).
        Ignored when the encoder is driven by a
        :class:`~repro.motion.proposed.BioMedicalSearchPolicy`.
    search_window:
        Maximum displacement per axis (paper windows: 64/32/16/8).
    block_size:
        Coding block edge (the substrate's CTU).
    lambda_mv:
        MV rate penalty weight in the search cost.
    """

    qp: int = 32
    search: str = "hexagon"
    search_window: int = 64
    block_size: int = 16
    lambda_mv: float = 4.0
    #: Refine integer motion vectors to half-pel precision (6-tap
    #: interpolation, H.264-style).  MVs are then coded in half-pel
    #: units.  Off by default: the paper's mechanisms operate on
    #: integer-search complexity.
    half_pel: bool = False

    def __post_init__(self) -> None:
        if not MIN_QP <= self.qp <= MAX_QP:
            raise ValueError(f"QP must be in [{MIN_QP}, {MAX_QP}], got {self.qp}")
        if self.search_window < 0:
            raise ValueError("search_window must be non-negative")
        if self.block_size <= 0 or self.block_size % 8:
            raise ValueError("block_size must be a positive multiple of 8")
        get_search(self.search)  # validate the name eagerly

    def make_search(self) -> MotionSearch:
        """Instantiate the configured search algorithm."""
        return get_search(self.search)

    def with_qp(self, qp: int) -> "EncoderConfig":
        return replace(self, qp=qp)

    def with_search(self, search: str, window: Optional[int] = None) -> "EncoderConfig":
        if window is None:
            return replace(self, search=search)
        return replace(self, search=search, search_window=window)

    def with_window(self, window: int) -> "EncoderConfig":
        return replace(self, search_window=window)
