"""Operation accounting.

The encoder counts the elementary operations that dominate HEVC
encoding time.  The MPSoC cost model (``repro.platform.cost_model``)
converts these counts into CPU cycles and seconds — the substitute for
wall-clock measurement on the paper's Xeon server (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OpCounts:
    """Elementary operation counts for one encode unit (block/tile/frame).

    Attributes
    ----------
    sad_pixel_ops:
        Pixel differences evaluated during motion search (the dominant
        inter-prediction cost; "the main complexity comes from ...
        motion estimation", paper §I).
    me_candidates:
        Motion-vector candidates evaluated (per-candidate overhead).
    transform_blocks:
        Forward+inverse transform block pairs.
    quant_coeffs:
        Coefficients quantized and dequantized.
    entropy_bits:
        Bits produced by entropy coding (bin-processing cost).
    pred_pixels:
        Pixels produced by intra/inter prediction and reconstruction.
    """

    sad_pixel_ops: int = 0
    me_candidates: int = 0
    transform_blocks: int = 0
    quant_coeffs: int = 0
    entropy_bits: int = 0
    pred_pixels: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            sad_pixel_ops=self.sad_pixel_ops + other.sad_pixel_ops,
            me_candidates=self.me_candidates + other.me_candidates,
            transform_blocks=self.transform_blocks + other.transform_blocks,
            quant_coeffs=self.quant_coeffs + other.quant_coeffs,
            entropy_bits=self.entropy_bits + other.entropy_bits,
            pred_pixels=self.pred_pixels + other.pred_pixels,
        )

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        self.sad_pixel_ops += other.sad_pixel_ops
        self.me_candidates += other.me_candidates
        self.transform_blocks += other.transform_blocks
        self.quant_coeffs += other.quant_coeffs
        self.entropy_bits += other.entropy_bits
        self.pred_pixels += other.pred_pixels
        return self

    def copy(self) -> "OpCounts":
        return OpCounts(**vars(self))

    @property
    def total(self) -> int:
        """Unweighted sum, useful for quick relative comparisons."""
        return (
            self.sad_pixel_ops
            + self.me_candidates
            + self.transform_blocks
            + self.quant_coeffs
            + self.entropy_bits
            + self.pred_pixels
        )
