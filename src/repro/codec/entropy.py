"""Coefficient entropy coding: zigzag + run-length + exp-Golomb.

HEVC uses CABAC; this substrate uses a static run-length/exp-Golomb
scheme whose rate has the same *dependence* on content and QP (more
texture and lower QP mean more and larger levels, hence more bits),
which is the property the paper's mechanisms rely on.

Syntax per transform block (zigzag-scanned levels ``v[0..N-1]``)::

    ue(L + 1)                  # L = index of last non-zero level, or
                               # ue(0) for an all-zero block
    repeat over non-zero levels in scan order:
        ue(run_of_zeros_before)
        se(level)

Counting and writing share one symbol derivation, so
``count_block_bits`` equals the bits produced by ``write_block``
exactly — the rate used for bitrate accounting without paying for
byte-stream assembly in simulation runs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, se_bit_length, ue_bit_length


def _symbols(zigzag_levels: np.ndarray) -> Tuple[int, List[Tuple[int, int]]]:
    """Derive (last_plus_one, [(run, level), ...]) for one block."""
    nonzero = np.flatnonzero(zigzag_levels)
    if nonzero.size == 0:
        return 0, []
    last = int(nonzero[-1])
    pairs = []
    prev = -1
    for idx in nonzero:
        idx = int(idx)
        pairs.append((idx - prev - 1, int(zigzag_levels[idx])))
        prev = idx
    return last + 1, pairs


def count_block_bits(zigzag_levels: np.ndarray) -> int:
    """Exact bit cost of one block under the syntax above."""
    last_plus_one, pairs = _symbols(zigzag_levels)
    bits = ue_bit_length(last_plus_one)
    for run, level in pairs:
        bits += ue_bit_length(run) + se_bit_length(level)
    return bits


def _ue_bits_arr(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ue_bit_length` for a non-negative int array.

    ``bit_length(v)`` of a positive integer is the binary exponent
    ``frexp`` returns (``v = m * 2**e`` with ``0.5 <= m < 1``), exact
    for the level/run magnitudes the quantizer can produce.
    """
    _, exponents = np.frexp((values + 1).astype(np.float64))
    return 2 * exponents.astype(np.int64) - 1


def count_stack_bits(zigzag_stack: np.ndarray) -> int:
    """Bit cost of a ``(num_blocks, N)`` stack of zigzag vectors.

    Vectorized over the whole stack; equals
    ``sum(count_block_bits(row) for row in zigzag_stack)`` exactly.
    """
    stack = np.asarray(zigzag_stack)
    num_rows = stack.shape[0]
    rows, cols = np.nonzero(stack)
    if rows.size == 0:
        return num_rows  # ue(0) is one bit per all-zero block
    # Header: ue(last_nonzero + 1) per block.  ``np.nonzero`` walks
    # row-major, so the final write per row is its largest column.
    last = np.full(num_rows, -1, dtype=np.int64)
    last[rows] = cols
    # Runs of zeros before each non-zero level, within each row.
    prev = np.empty_like(cols)
    prev[0] = -1
    if cols.size > 1:
        np.copyto(prev[1:], np.where(rows[1:] == rows[:-1], cols[:-1], -1))
    runs = cols - prev - 1
    # Signed levels: same odd/even exp-Golomb mapping as ``write_se``.
    levels = stack[rows, cols].astype(np.int64)
    mapped = np.where(levels > 0, 2 * levels - 1, -2 * levels)
    # One fused exp-Golomb length pass over header + run + level codes.
    symbols = np.concatenate((last + 1, runs, mapped))
    return int(_ue_bits_arr(symbols).sum())


def write_block(writer: BitWriter, zigzag_levels: np.ndarray) -> None:
    """Write one block's levels to the bitstream."""
    last_plus_one, pairs = _symbols(zigzag_levels)
    writer.write_ue(last_plus_one)
    for run, level in pairs:
        writer.write_ue(run)
        writer.write_se(level)


def read_block(reader: BitReader, length: int) -> np.ndarray:
    """Read one block's levels; inverse of :func:`write_block`."""
    levels = np.zeros(length, dtype=np.int32)
    last_plus_one = reader.read_ue()
    if last_plus_one == 0:
        return levels
    last = last_plus_one - 1
    if last >= length:
        raise ValueError(f"last significant index {last} >= block length {length}")
    idx = -1
    while idx < last:
        run = reader.read_ue()
        idx += run + 1
        if idx > last:
            raise ValueError("run-length overruns the significant region")
        level = reader.read_se()
        if level == 0:
            raise ValueError("coded level must be non-zero")
        levels[idx] = level
    return levels
