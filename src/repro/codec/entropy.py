"""Coefficient entropy coding: zigzag + run-length + exp-Golomb.

HEVC uses CABAC; this substrate uses a static run-length/exp-Golomb
scheme whose rate has the same *dependence* on content and QP (more
texture and lower QP mean more and larger levels, hence more bits),
which is the property the paper's mechanisms rely on.

Syntax per transform block (zigzag-scanned levels ``v[0..N-1]``)::

    ue(L + 1)                  # L = index of last non-zero level, or
                               # ue(0) for an all-zero block
    repeat over non-zero levels in scan order:
        ue(run_of_zeros_before)
        se(level)

Counting and writing share one symbol derivation, so
``count_block_bits`` equals the bits produced by ``write_block``
exactly — the rate used for bitrate accounting without paying for
byte-stream assembly in simulation runs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, se_bit_length, ue_bit_length


def _symbols(zigzag_levels: np.ndarray) -> Tuple[int, List[Tuple[int, int]]]:
    """Derive (last_plus_one, [(run, level), ...]) for one block."""
    nonzero = np.flatnonzero(zigzag_levels)
    if nonzero.size == 0:
        return 0, []
    last = int(nonzero[-1])
    pairs = []
    prev = -1
    for idx in nonzero:
        idx = int(idx)
        pairs.append((idx - prev - 1, int(zigzag_levels[idx])))
        prev = idx
    return last + 1, pairs


def count_block_bits(zigzag_levels: np.ndarray) -> int:
    """Exact bit cost of one block under the syntax above."""
    last_plus_one, pairs = _symbols(zigzag_levels)
    bits = ue_bit_length(last_plus_one)
    for run, level in pairs:
        bits += ue_bit_length(run) + se_bit_length(level)
    return bits


def count_stack_bits(zigzag_stack: np.ndarray) -> int:
    """Bit cost of a ``(num_blocks, N)`` stack of zigzag vectors."""
    return sum(count_block_bits(zigzag_stack[i]) for i in range(zigzag_stack.shape[0]))


def write_block(writer: BitWriter, zigzag_levels: np.ndarray) -> None:
    """Write one block's levels to the bitstream."""
    last_plus_one, pairs = _symbols(zigzag_levels)
    writer.write_ue(last_plus_one)
    for run, level in pairs:
        writer.write_ue(run)
        writer.write_se(level)


def read_block(reader: BitReader, length: int) -> np.ndarray:
    """Read one block's levels; inverse of :func:`write_block`."""
    levels = np.zeros(length, dtype=np.int32)
    last_plus_one = reader.read_ue()
    if last_plus_one == 0:
        return levels
    last = last_plus_one - 1
    if last >= length:
        raise ValueError(f"last significant index {last} >= block length {length}")
    idx = -1
    while idx < last:
        run = reader.read_ue()
        idx += run + 1
        if idx > last:
            raise ValueError("run-length overruns the significant region")
        level = reader.read_se()
        if level == 0:
            raise ValueError("coded level must be non-zero")
        levels[idx] = level
    return levels
