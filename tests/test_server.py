"""Tests for the multi-user serving simulation."""

import pytest

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.platform.mpsoc import MpsocConfig
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def traces():
    videos = [
        BioMedicalVideoGenerator(GeneratorConfig(
            width=160, height=128, num_frames=8, seed=s,
            content_class=cc, motion=MotionPreset.PAN_RIGHT,
        )).generate()
        for s, cc in ((0, ContentClass.BRAIN), (1, ContentClass.BONE))
    ]
    prop = [StreamTranscoder(PipelineConfig()).run(v) for v in videos]
    khan = [StreamTranscoder(PipelineConfig.khan()).run(v) for v in videos]
    return prop, khan


class TestDemands:
    def test_cycling_over_traces(self, traces):
        prop, _ = traces
        server = TranscodingServer()
        demands = server.demands(prop, 5)
        assert [d.user_id for d in demands] == [0, 1, 2, 3, 4]
        # Users 0 and 2 share the first trace's thread structure.
        assert len(demands[0].threads) == len(demands[2].threads)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            TranscodingServer().demands([], 3)

    def test_invalid_fps_rejected(self):
        with pytest.raises(ValueError):
            TranscodingServer(fps=0)


class TestServe:
    def test_saturated_queue_is_resource_bound(self, traces):
        prop, _ = traces
        server = TranscodingServer()
        report = server.serve(prop, ProposedAllocator())
        assert report.num_users_served <= report.num_users_requested
        assert report.num_users_served > 0
        assert report.average_power_w > 0

    def test_fixed_user_count(self, traces):
        prop, _ = traces
        server = TranscodingServer()
        report = server.serve(prop, ProposedAllocator(), num_users=3)
        assert report.num_users_requested == 3
        assert report.num_users_served == 3

    def test_quality_stats_from_admitted_users(self, traces):
        prop, _ = traces
        report = TranscodingServer().serve(prop, ProposedAllocator(), num_users=4)
        assert report.psnr_min <= report.psnr_avg <= report.psnr_max
        assert report.bitrate_min_mbps <= report.bitrate_avg_mbps

    def test_power_grows_with_users(self, traces):
        _, khan = traces
        server = TranscodingServer()
        p2 = server.serve(khan, KhanAllocator(), num_users=2).average_power_w
        p6 = server.serve(khan, KhanAllocator(), num_users=6).average_power_w
        assert p6 > p2

    def test_proposed_serves_at_least_as_many_as_khan(self, traces):
        prop, khan = traces
        # Small platform so saturation actually binds with tiny videos.
        platform = MpsocConfig(num_sockets=1, cores_per_socket=4)
        server = TranscodingServer(platform=platform)
        rep_p = server.serve(prop, ProposedAllocator(platform))
        rep_k = server.serve(khan, KhanAllocator(platform))
        assert rep_p.num_users_served >= rep_k.num_users_served

    def test_power_savings_positive(self, traces):
        prop, khan = traces
        server = TranscodingServer()
        savings = server.power_savings_percent(
            prop, khan, ProposedAllocator(), KhanAllocator(), num_users=4
        )
        assert savings > 0
