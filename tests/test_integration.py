"""Full-stack integration tests: generator -> pipeline -> allocator ->
power, and cross-module consistency checks."""

import numpy as np
import pytest

from repro.allocation import (
    KhanAllocator,
    ProposedAllocator,
    UserDemand,
    cores_needed,
)
from repro.codec.config import EncoderConfig, GopConfig
from repro.codec.encoder import VideoEncoder
from repro.experiments.common import (
    encode_with_proposed_policy,
    encode_with_search,
)
from repro.platform.cost_model import CostModel
from repro.platform.mpsoc import XEON_E5_2667
from repro.platform.power import PowerModel
from repro.tiling.uniform import uniform_tiling
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def video():
    return BioMedicalVideoGenerator(GeneratorConfig(
        width=160, height=128, num_frames=16, seed=2,
        content_class=ContentClass.BONE, motion=MotionPreset.PAN_DOWN,
        motion_magnitude=3.0,
    )).generate()


class TestEndToEnd:
    def test_generate_transcode_allocate_power(self, video):
        """The full chain produces consistent, physically sensible
        numbers."""
        trace = StreamTranscoder(PipelineConfig()).run(video)
        gop = trace.steady_state_gop()
        demand = UserDemand(user_id=0, threads=gop.threads())
        result = ProposedAllocator().allocate([demand], 24.0)
        power = result.schedule.average_power(PowerModel())
        # Power is at least the all-idle floor and at most all-busy.
        pm = PowerModel()
        floor = XEON_E5_2667.num_cores * pm.p_idle
        ceiling = XEON_E5_2667.num_cores * pm.busy_power(XEON_E5_2667.f_max)
        assert floor <= power <= ceiling
        # Demand consistency between pipeline and allocator.
        assert cores_needed(demand, 24.0) == pytest.approx(
            sum(gop.mean_tile_cpu_times()) * 24.0
        )

    def test_cost_model_consistency_between_paths(self, video):
        """The Table I helper and the pipeline charge identical op
        prices (same CostModel)."""
        grid = uniform_tiling(video.width, video.height, 2, 2)
        outcome = encode_with_search(video, grid, "hexagon", window=16)
        model = CostModel()
        assert outcome.cpu_seconds == pytest.approx(
            model.seconds(outcome.stats.ops, XEON_E5_2667.f_max)
        )

    def test_proposed_policy_never_slower_than_reference(self, video):
        """On any corpus video the proposed combined search beats TZ in
        simulated CPU time at equal tiling."""
        grid = uniform_tiling(video.width, video.height, 2, 2)
        tz = encode_with_search(video, grid, "tz", window=64)
        prop = encode_with_proposed_policy(video, grid)
        assert prop.cpu_seconds < tz.cpu_seconds
        assert abs(prop.psnr - tz.psnr) < 1.0

    def test_server_headline_chain(self, video):
        """Mini Table II on a mini platform: the proposed side serves
        at least as many users at comparable quality."""
        from repro.platform.mpsoc import MpsocConfig
        platform = MpsocConfig(num_sockets=1, cores_per_socket=4)
        tp = StreamTranscoder(
            PipelineConfig(mode=PipelineMode.PROPOSED, platform=platform)
        ).run(video)
        tk = StreamTranscoder(PipelineConfig.khan(platform=platform)).run(video)
        server = TranscodingServer(platform=platform)
        rp = server.serve([tp], ProposedAllocator(platform))
        rk = server.serve([tk], KhanAllocator(platform))
        assert rp.num_users_served >= rk.num_users_served
        assert abs(rp.psnr_avg - rk.psnr_avg) < 3.0

    def test_gop_boundaries_reset_adaptation(self, video):
        """QPs inside a GOP may drift from defaults, but every GOP
        restarts from texture defaults on its I frame."""
        trace = StreamTranscoder(PipelineConfig()).run(video)
        from repro.qp.defaults import DEFAULT_QP
        defaults = set(DEFAULT_QP.values())
        for gop in trace.gops:
            first = gop.frames[0]
            assert {t.qp for t in first.tiles} <= defaults

    def test_stats_internally_consistent(self, video):
        """Frame bits/ssd equal the sum of their tiles; sequence stats
        equal the sum of their frames."""
        grid = uniform_tiling(video.width, video.height, 2, 2)
        stats = VideoEncoder(
            EncoderConfig(qp=32, search_window=8), GopConfig(8)
        ).encode(video, grid)
        for frame in stats.frames:
            assert frame.bits == sum(t.bits for t in frame.tiles)
            assert frame.ssd == pytest.approx(sum(t.ssd for t in frame.tiles))
        assert stats.total_bits == sum(f.bits for f in stats.frames)

    def test_determinism_of_whole_pipeline(self, video):
        """Two identical runs produce identical traces (no hidden
        global randomness)."""
        a = StreamTranscoder(PipelineConfig()).run(video)
        b = StreamTranscoder(PipelineConfig()).run(video)
        assert a.total_bits == b.total_bits
        assert a.average_psnr == b.average_psnr
        ta = [t.cpu_time_fmax for f in a.frame_records for t in f.tiles]
        tb = [t.cpu_time_fmax for f in b.frame_records for t in f.tiles]
        assert ta == tb


class TestReportModule:
    def test_build_report_smoke(self, monkeypatch):
        """The report generator runs end to end on tiny inputs."""
        import repro.experiments.report as report_mod

        def tiny_build(quick=True, seed=0):
            # exercise the real code path with minimal sizes
            from repro.experiments.table1 import run_table1, format_table1
            result = run_table1(width=96, height=80, num_frames=8,
                                tilings=[(1, 1)])
            return "# Reproduction report\n" + format_table1(result)

        text = tiny_build()
        assert "Reproduction report" in text
        assert "speedup" in text
