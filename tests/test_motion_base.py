"""Tests for the motion search context and shared machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion.base import INFEASIBLE, SearchContext


def _context(rng, window=8, lambda_mv=0.0):
    ref = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
    block = ref[24:32, 24:32].copy()
    return SearchContext(ref, block, 24, 24, window, lambda_mv=lambda_mv)


class TestSearchContext:
    def test_zero_mv_of_colocated_block_costs_zero(self, rng):
        ctx = _context(rng)
        assert ctx.evaluate((0, 0)) == 0.0

    def test_cache_avoids_recount(self, rng):
        ctx = _context(rng)
        ctx.evaluate((1, 1))
        count = ctx.sad_evaluations
        ctx.evaluate((1, 1))
        assert ctx.sad_evaluations == count

    def test_pixel_ops_scale_with_block_area(self, rng):
        ctx = _context(rng)
        ctx.evaluate((2, 0))
        assert ctx.pixel_ops == 64  # 8x8 block

    def test_window_violation_is_infeasible(self, rng):
        ctx = _context(rng, window=4)
        assert ctx.evaluate((5, 0)) == INFEASIBLE
        assert ctx.evaluate((0, -5)) == INFEASIBLE

    def test_frame_bound_violation_is_infeasible(self, rng):
        ref = rng.integers(0, 255, size=(16, 16)).astype(np.uint8)
        block = ref[0:8, 0:8].copy()
        ctx = SearchContext(ref, block, 0, 0, window=8)
        assert ctx.evaluate((-1, 0)) == INFEASIBLE
        assert ctx.evaluate((0, 9)) == INFEASIBLE

    def test_infeasible_candidates_cost_no_ops(self, rng):
        ctx = _context(rng, window=2)
        ctx.evaluate((3, 3))
        assert ctx.sad_evaluations == 0

    def test_lambda_mv_penalizes_long_vectors(self, rng):
        ref = np.zeros((32, 32), dtype=np.uint8)
        block = np.zeros((8, 8), dtype=np.uint8)
        ctx = SearchContext(ref, block, 12, 12, window=8, lambda_mv=2.0)
        assert ctx.evaluate((0, 0)) == 0.0
        assert ctx.evaluate((3, -2)) == pytest.approx(10.0)

    def test_evaluate_many_returns_best(self, rng):
        ctx = _context(rng)
        mv, cost = ctx.evaluate_many([(1, 0), (0, 0), (0, 1)])
        assert mv == (0, 0)
        assert cost == 0.0

    def test_evaluate_many_all_infeasible_falls_back_to_zero(self, rng):
        ctx = _context(rng, window=2)
        mv, cost = ctx.evaluate_many([(5, 5), (-9, 0)])
        assert mv == (0, 0)
        assert cost == ctx.evaluate((0, 0))

    def test_negative_window_rejected(self, rng):
        ref = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(ValueError):
            SearchContext(ref, ref[:8, :8], 0, 0, window=-1)

    @given(st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=40, deadline=None)
    def test_feasibility_matches_evaluation(self, dx, dy):
        rng = np.random.default_rng(0)
        ctx = _context(rng, window=6)
        feasible = ctx.is_feasible((dx, dy))
        cost = ctx.evaluate((dx, dy))
        assert feasible == (cost != INFEASIBLE)
