"""Resilience subsystem: fault injection, degradation ladder,
re-allocation on core failure, LUT checkpointing, and the fault drill."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.demand import UserDemand
from repro.allocation.proposed import ProposedAllocator
from repro.cli import main
from repro.platform.mpsoc import MpsocConfig
from repro.platform.schedule import ThreadTask
from repro.resilience.checkpoint import load_lut, save_lut
from repro.resilience.degradation import (
    DegradationController,
    DegradationLevel,
    ResilienceConfig,
)
from repro.resilience.drill import DrillConfig, run_drill
from repro.resilience.errors import (
    AllocationError,
    CorruptFrameError,
    DeadlineMissError,
    LutCorruptionError,
    TranscodeError,
)
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.frame import Frame, Video
from repro.workload.estimator import WorkloadEstimator
from repro.workload.lut import WorkloadLut

SMALL_PLATFORM = MpsocConfig(num_sockets=1, cores_per_socket=4)


def make_demand(user_id: int, thread_times, fps: float = 24.0) -> UserDemand:
    return UserDemand(
        user_id=user_id,
        threads=[
            ThreadTask(thread_id=i, user_id=user_id, cpu_time_fmax=t,
                       tile_index=i)
            for i, t in enumerate(thread_times)
        ],
    )


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_all_errors_share_base(self):
        for exc in (CorruptFrameError, DeadlineMissError, AllocationError,
                    LutCorruptionError):
            assert issubclass(exc, TranscodeError)

    def test_value_error_compatibility(self):
        # Pre-existing `except ValueError` call sites must keep working.
        assert issubclass(CorruptFrameError, ValueError)
        assert issubclass(AllocationError, ValueError)
        assert issubclass(LutCorruptionError, ValueError)
        assert issubclass(DeadlineMissError, RuntimeError)


# ---------------------------------------------------------------------------
# Allocator edge cases
# ---------------------------------------------------------------------------
class TestAllocatorEdgeCases:
    def test_zero_thread_demand_not_admitted(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        empty = UserDemand(user_id=0, threads=[])
        busy = make_demand(1, [0.01, 0.01])
        result = allocator.allocate([empty, busy], fps=24.0)
        admitted_ids = {d.user_id for d in result.admitted}
        assert admitted_ids == {1}
        assert empty in result.rejected

    def test_single_demand_exceeding_capacity_rejected(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        slot = 1.0 / 24.0
        # One user demanding more cores than the whole platform has.
        giant = make_demand(0, [slot] * (SMALL_PLATFORM.num_cores + 2))
        result = allocator.allocate([giant], fps=24.0)
        assert result.num_users_served == 0
        assert giant in result.rejected

    def test_allocate_rejects_nonpositive_fps(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        with pytest.raises(AllocationError):
            allocator.allocate([make_demand(0, [0.01])], fps=0.0)

    def test_allocate_with_all_cores_failed_raises(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        with pytest.raises(AllocationError):
            allocator.allocate(
                [make_demand(0, [0.01])], fps=24.0,
                failed_cores=set(range(SMALL_PLATFORM.num_cores)),
            )

    def test_allocate_avoids_failed_cores(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        failed = {0, 2}
        result = allocator.allocate(
            [make_demand(0, [0.01, 0.01])], fps=24.0, failed_cores=failed
        )
        used = {s.core_id for s in result.schedule.slots}
        assert not used & failed

    def test_reallocate_repacks_orphans(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        fps = 24.0
        # ~0.96 cores per user: the packing spans several cores, so a
        # failure orphans only part of the load.
        demands = [make_demand(i, [0.02, 0.02]) for i in range(3)]
        result = allocator.allocate(demands, fps)
        assert len(result.schedule.slots) > 1
        before = {
            (t.user_id, t.thread_id)
            for s in result.schedule.slots for t in s.tasks
        }
        failed = result.schedule.slots[0].core_id
        recovered = allocator.reallocate(result, [failed], fps)
        assert not recovered.schedule.has_core(failed)
        after = {
            (t.user_id, t.thread_id)
            for s in recovered.schedule.slots for t in s.tasks
        }
        # No thread lost: every task re-packed onto a surviving core.
        assert after == before
        assert recovered.shed == []

    def test_reallocate_sheds_lowest_priority_first(self):
        platform = MpsocConfig(num_sockets=1, cores_per_socket=2)
        allocator = ProposedAllocator(platform)
        fps = 24.0
        slot = 1.0 / fps
        # Each user needs one full core; both cores start occupied.
        demands = [make_demand(i, [slot]) for i in range(2)]
        result = allocator.allocate(demands, fps)
        assert result.num_users_served == 2
        failed = result.schedule.slots[0].core_id
        recovered = allocator.reallocate(result, [failed], fps)
        # Highest user_id (= lowest priority) is the victim.
        assert [d.user_id for d in recovered.shed] == [1]
        assert [d.user_id for d in recovered.admitted] == [0]
        for s in recovered.schedule.slots:
            assert all(t.user_id == 0 for t in s.tasks)

    def test_reallocate_all_cores_failed_sheds_everyone(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        fps = 24.0
        demands = [make_demand(i, [0.005]) for i in range(2)]
        result = allocator.allocate(demands, fps)
        every_core = [s.core_id for s in result.schedule.slots]
        recovered = allocator.reallocate(result, every_core, fps)
        assert recovered.admitted == []
        assert {d.user_id for d in recovered.shed} == {0, 1}

    def test_evict_unknown_core_raises(self):
        allocator = ProposedAllocator(SMALL_PLATFORM)
        result = allocator.allocate([make_demand(0, [0.005])], fps=24.0)
        with pytest.raises(AllocationError):
            result.schedule.evict_core(10_000)


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    FPS = 100.0  # slot = 10 ms

    def controller(self, **overrides) -> DegradationController:
        defaults = dict(escalate_after=1, recover_after=2,
                        escalate_debt_slots=1.0)
        defaults.update(overrides)
        return DegradationController(self.FPS, ResilienceConfig(**defaults))

    def test_escalates_on_consecutive_misses(self):
        ctl = self.controller(escalate_after=2)
        assert ctl.observe_frame([0.02])  # miss 1: no escalation yet
        assert ctl.level is DegradationLevel.NONE
        assert ctl.observe_frame([0.02])  # miss 2: climb one rung
        assert ctl.level is DegradationLevel.QP_BUMP

    def test_escalates_while_debt_outstanding(self):
        # One huge spike, then individually on-time frames: the ladder
        # must keep climbing while the backlog exceeds a slot.
        ctl = self.controller()
        ctl.observe_frame([0.08])  # 7 slots of debt
        assert ctl.level is DegradationLevel.QP_BUMP
        ctl.observe_frame([0.005])  # on time but still behind budget
        assert ctl.level is DegradationLevel.WINDOW_SHRINK

    def test_hysteresis_requires_streak_and_drained_debt(self):
        ctl = self.controller(recover_after=2)
        ctl.observe_frame([0.012])  # small miss -> QP_BUMP, slight debt
        assert ctl.level is DegradationLevel.QP_BUMP
        ctl.observe_frame([0.002])  # on time, drains debt (streak 1)
        assert ctl.level is DegradationLevel.QP_BUMP
        ctl.observe_frame([0.002])  # streak 2 and no debt: descend
        assert ctl.level is DegradationLevel.NONE

    def test_max_level_caps_the_ladder(self):
        ctl = self.controller(max_level=DegradationLevel.WINDOW_SHRINK)
        for _ in range(10):
            ctl.observe_frame([0.05])
        assert ctl.level is DegradationLevel.WINDOW_SHRINK

    def test_adjust_tile_per_rung(self):
        ctl = self.controller()
        # NONE: untouched.
        assert ctl.adjust_tile(30, 64, True, 42, 5) == (30, 64)
        ctl.observe_frame([0.05])  # -> QP_BUMP
        qp, window = ctl.adjust_tile(30, 64, True, 42, 5)
        assert (qp, window) == (35, 32)
        assert ctl.adjust_tile(30, 64, False, 42, 5) == (30, 64)
        ctl.observe_frame([0.05])  # -> WINDOW_SHRINK
        qp, window = ctl.adjust_tile(30, 64, False, 42, 5)
        assert (qp, window) == (30, 32)  # every tile's window shrinks

    def test_frame_drop_reclaims_debt_and_recovers(self):
        ctl = self.controller()
        for _ in range(4):
            ctl.observe_frame([0.05])  # climb to FRAME_DROP
        assert ctl.level is DegradationLevel.FRAME_DROP
        assert ctl.should_drop_frame()
        drops = 0
        while ctl.should_drop_frame():
            ctl.observe_dropped_frame(100 + drops)
            drops += 1
            assert drops < 100  # each drop reclaims a slot: must end
        assert ctl.debt_seconds == 0.0
        assert ctl.level is DegradationLevel.TILE_MERGE  # one rung down
        assert ctl.report.frames_dropped == drops

    def test_hard_failure_when_ladder_exhausted(self):
        ctl = self.controller(fail_after_debt_slots=2.0,
                              max_level=DegradationLevel.QP_BUMP)
        with pytest.raises(DeadlineMissError):
            for _ in range(5):
                ctl.observe_frame([0.1])

    def test_report_action_counts_sorted(self):
        ctl = self.controller()
        ctl.observe_frame([0.05])
        ctl.observe_corrupt_frame(7)
        counts = ctl.report.action_counts()
        assert list(counts) == sorted(counts)
        assert counts["escalate"] == 1
        assert counts["corrupt_drop"] == 1


# ---------------------------------------------------------------------------
# Fault injection determinism
# ---------------------------------------------------------------------------
class TestFaultInjectorDeterminism:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(frame_corruption_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(time_spike_factor=0.5)

    def test_core_failure_quota(self):
        injector = FaultInjector(FaultConfig(seed=3, core_failure_rate=0.25))
        failed = injector.sample_core_failures(list(range(8)))
        assert len(failed) == 2
        assert failed == sorted(failed)

    def test_same_seed_same_faults(self):
        def draw(seed):
            inj = FaultInjector(FaultConfig(
                seed=seed, core_failure_rate=0.25, time_spike_rate=0.5,
            ))
            schedule = inj.failure_schedule(list(range(8)), num_slots=6)
            times = [inj.perturb_cpu_time(0.01) for _ in range(20)]
            return schedule, times, dict(inj.counts)

        assert draw(42) == draw(42)

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultConfig(seed=0, time_spike_rate=0.5))
        b = FaultInjector(FaultConfig(seed=1, time_spike_rate=0.5))
        times_a = [a.perturb_cpu_time(0.01) for _ in range(50)]
        times_b = [b.perturb_cpu_time(0.01) for _ in range(50)]
        assert times_a != times_b

    def test_corrupt_video_spares_frame_zero(self, rng):
        frames = [
            Frame(index=i, luma=rng.integers(0, 255, (64, 64)))
            for i in range(20)
        ]
        video = Video(name="t", fps=24.0, frames=frames)
        injector = FaultInjector(FaultConfig(seed=5,
                                             frame_corruption_rate=1.0))
        corrupted = injector.corrupt_video(video)
        assert 0 not in corrupted
        assert len(corrupted) == 19
        assert injector.count("corrupt_frame") == 19


# ---------------------------------------------------------------------------
# Input validation in StreamTranscoder.run
# ---------------------------------------------------------------------------
class TestInputValidation:
    def test_empty_video_raises(self):
        with pytest.raises(CorruptFrameError):
            StreamTranscoder().run(Video(name="e", fps=24.0, frames=[]))

    def test_mismatched_frame_shape_raises_without_resilience(
            self, small_video):
        frames = [Frame(index=f.index, luma=f.luma.copy())
                  for f in small_video.frames]
        frames[3].luma = frames[3].luma[:-8, :]
        video = Video(name="bad", fps=small_video.fps, frames=frames)
        with pytest.raises(CorruptFrameError):
            StreamTranscoder(PipelineConfig(fps=video.fps)).run(video)

    def test_nonfinite_luma_dropped_under_resilience(self, small_video):
        frames = [Frame(index=f.index, luma=f.luma.copy())
                  for f in small_video.frames]
        poisoned = frames[4].luma.astype(np.float64)
        poisoned[::8] = np.nan
        frames[4].luma = poisoned
        video = Video(name="nan", fps=small_video.fps, frames=frames)
        config = PipelineConfig(fps=video.fps, resilience=ResilienceConfig())
        trace = StreamTranscoder(config).run(video)
        assert 4 in trace.dropped_frames
        assert trace.resilience.corrupt_frames_dropped == 1
        assert len(trace.frame_records) == len(frames) - 1

    def test_frame_below_min_tile_size_raises(self, rng):
        tiny = Frame(index=0, luma=rng.integers(0, 255, (16, 16)))
        video = Video(name="tiny", fps=24.0, frames=[tiny])
        with pytest.raises(CorruptFrameError):
            StreamTranscoder().run(video)

    def test_all_frames_corrupt_raises_even_with_resilience(self, rng):
        frame = Frame(index=0, luma=rng.integers(0, 255, (64, 64)))
        frame.luma = frame.luma.astype(np.float32)
        video = Video(name="allbad", fps=24.0, frames=[frame])
        config = PipelineConfig(resilience=ResilienceConfig())
        with pytest.raises(CorruptFrameError):
            StreamTranscoder(config).run(video)


# ---------------------------------------------------------------------------
# LUT checkpointing
# ---------------------------------------------------------------------------
def _trained_lut(small_video) -> WorkloadLut:
    estimator = WorkloadEstimator()
    transcoder = StreamTranscoder(
        PipelineConfig(fps=small_video.fps), estimator=estimator
    )
    transcoder.run(small_video)
    return estimator.lut


class TestLutCheckpoint:
    def test_roundtrip(self, small_video, tmp_path):
        lut = _trained_lut(small_video)
        assert len(lut) > 0
        path = tmp_path / "lut.json"
        save_lut(lut, path)
        loaded = load_lut(path)
        assert loaded.recovered
        assert loaded.reason == "ok"
        assert loaded.lut.to_dict() == lut.to_dict()

    def test_missing_file_is_cold_start(self, tmp_path):
        loaded = load_lut(tmp_path / "absent.json")
        assert not loaded.recovered
        assert loaded.reason == "missing"
        assert len(loaded.lut) == 0

    def test_corrupt_checkpoint_falls_back_to_fresh(
            self, small_video, tmp_path):
        lut = _trained_lut(small_video)
        path = tmp_path / "lut.json"
        save_lut(lut, path)
        FaultInjector().corrupt_file(path)
        loaded = load_lut(path)
        assert not loaded.recovered
        assert len(loaded.lut) == 0

    def test_corrupt_checkpoint_strict_raises(self, small_video, tmp_path):
        lut = _trained_lut(small_video)
        path = tmp_path / "lut.json"
        save_lut(lut, path)
        FaultInjector().corrupt_file(path)
        with pytest.raises(LutCorruptionError):
            load_lut(path, strict=True)

    def test_truncated_checkpoint_strict_raises(self, small_video, tmp_path):
        lut = _trained_lut(small_video)
        path = tmp_path / "lut.json"
        save_lut(lut, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])  # torn write
        with pytest.raises(LutCorruptionError):
            load_lut(path, strict=True)
        loaded = load_lut(path)  # lenient mode: fall back to cold start
        assert not loaded.recovered
        assert len(loaded.lut) == 0

    def test_validate_drops_corrupted_entries(self, small_video):
        lut = _trained_lut(small_video)
        before = len(lut)
        injector = FaultInjector(FaultConfig(seed=0, lut_corruption_rate=1.0))
        damaged = injector.corrupt_lut(lut)
        assert damaged == before
        assert lut.validate() == damaged
        assert len(lut) == 0

    def test_save_excludes_inconsistent_entries(self, small_video, tmp_path):
        lut = _trained_lut(small_video)
        injector = FaultInjector(FaultConfig(seed=1, lut_corruption_rate=0.5))
        injector.corrupt_lut(lut)
        path = tmp_path / "lut.json"
        save_lut(lut, path)
        loaded = load_lut(path)
        assert loaded.recovered
        assert all(h.is_consistent() for h in loaded.lut.tables.values())


# ---------------------------------------------------------------------------
# Fault drill (end to end)
# ---------------------------------------------------------------------------
DRILL = DrillConfig(seed=0, num_streams=2, frames_per_stream=8,
                    num_slots=4, num_users=6)


class TestFaultDrill:
    def test_report_is_deterministic(self):
        assert run_drill(DRILL).format() == run_drill(DRILL).format()

    def test_faults_actually_injected(self):
        report = run_drill(DRILL)
        assert report.injected.get("core_failure", 0) > 0
        assert report.injected.get("lut_entry_corruption", 0) > 0
        assert not report.checkpoint_recovered  # corruption was detected

    def test_cli_smoke_seed_zero(self, capsys):
        argv = ["fault-drill", "--seed", "0",
                "--streams", "2", "--frames", "8", "--slots", "4",
                "--users", "6"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-identical report
        assert "verdict: PASS" in first
