"""Tenant policy subsystem: document validation, compilation,
energy-budgeted brownout, hot reload, admission gates and the wire
compatibility of the HELLO ``tenant`` key."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import scoped
from repro.platform.mpsoc import GHZ, MpsocConfig, XEON_E5_2667
from repro.policy import (
    EnergyBudgetScheduler,
    EnergyLedger,
    PolicyError,
    PolicyManager,
    compile_policy,
    load_policy_file,
    parse_policy,
    plan_change,
)
from repro.policy import smoke as policy_smoke
from repro.resilience.degradation import DegradationLevel, ResilienceConfig
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serving.protocol import Hello, MessageDecoder, encode_message


def _doc(**overrides) -> dict:
    doc = {
        "version": 1,
        "power_cap_w": 100.0,
        "energy_window_s": 1.0,
        "default_tenant": "clinic",
        "brownout": {"readmit_fraction": 0.5, "readmit_after_checks": 2},
        "tenants": [
            {"name": "er", "tier": "emergency", "weight": 3.0,
             "min_psnr_db": 37.0, "max_deadline_miss_rate": 0.02},
            {"name": "clinic", "tier": "urgent", "weight": 2.0,
             "min_psnr_db": 31.0},
            {"name": "archive", "tier": "archival", "weight": 1.0,
             "max_rungs": 1, "power_budget_w": 20.0},
        ],
    }
    doc.update(overrides)
    return doc


# ----------------------------------------------------------------------
# Document validation
# ----------------------------------------------------------------------
class TestDocument:
    def test_valid_document_parses(self):
        doc = parse_policy(_doc(), source="<test>")
        assert doc.default_tenant == "clinic"
        assert [t.name for t in doc.tenants] == ["er", "clinic", "archive"]
        assert doc.tenant("archive").power_budget_w == 20.0

    def test_bad_tier_names_path_and_choices(self):
        bad = _doc()
        bad["tenants"][0]["tier"] = "critical"
        with pytest.raises(PolicyError) as exc:
            parse_policy(bad, source="pol.yaml")
        msg = str(exc.value)
        assert "tenants[0].tier" in msg
        assert "'critical'" in msg
        assert "emergency" in msg          # the accepted tiers are listed
        assert msg.startswith("pol.yaml:")

    def test_negative_budget_rejected_with_path(self):
        bad = _doc()
        bad["tenants"][2]["power_budget_w"] = -5
        with pytest.raises(PolicyError) as exc:
            parse_policy(bad)
        assert "tenants[2].power_budget_w" in str(exc.value)
        assert ">= 0" in str(exc.value)

    def test_unknown_default_tenant_reference(self):
        with pytest.raises(PolicyError) as exc:
            parse_policy(_doc(default_tenant="ghost"))
        msg = str(exc.value)
        assert "default_tenant" in msg
        assert "'ghost'" in msg
        assert "er, clinic, archive" in msg  # declared tenants listed

    def test_unknown_key_did_you_mean(self):
        with pytest.raises(PolicyError) as exc:
            parse_policy(_doc(power_cap="100"))
        assert "did you mean 'power_cap_w'" in str(exc.value)

    def test_duplicate_tenant_names_point_at_first(self):
        bad = _doc()
        bad["tenants"].append({"name": "er", "tier": "routine"})
        with pytest.raises(PolicyError) as exc:
            parse_policy(bad)
        assert "tenants[3].name" in str(exc.value)
        assert "tenants[0]" in str(exc.value)

    def test_zero_weight_rejected(self):
        bad = _doc()
        bad["tenants"][1]["weight"] = 0
        with pytest.raises(PolicyError, match="tenants\\[1\\].weight"):
            parse_policy(bad)

    def test_unsupported_version(self):
        with pytest.raises(PolicyError, match="version"):
            parse_policy(_doc(version=2))

    def test_dvfs_inverted_bounds(self):
        with pytest.raises(PolicyError, match="min_ghz"):
            parse_policy(_doc(dvfs={"min_ghz": 3.6, "max_ghz": 2.9}))

    def test_empty_tenants_rejected(self):
        with pytest.raises(PolicyError, match="tenants"):
            parse_policy(_doc(tenants=[]))

    def test_json_file_with_syntax_error_reports_line(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"version": 1,\n  "tenants": [}')
        with pytest.raises(PolicyError) as exc:
            load_policy_file(str(path))
        assert "line 2" in str(exc.value)

    def test_yaml_file_round_trips(self, tmp_path):
        path = tmp_path / "pol.yaml"
        path.write_text(json.dumps(_doc()))  # JSON is a YAML subset
        doc = load_policy_file(str(path))
        assert doc.source == str(path)
        assert len(doc.tenants) == 3


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class TestCompiler:
    def test_capacity_fractions_normalize(self):
        policy = compile_policy(parse_policy(_doc()))
        fractions = {n: rt.capacity_fraction
                     for n, rt in policy.tenants.items()}
        assert fractions == pytest.approx(
            {"er": 0.5, "clinic": 2 / 6, "archive": 1 / 6}
        )
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_shed_order_reverse_priority_excludes_top_tier(self):
        policy = compile_policy(parse_policy(_doc()))
        assert policy.shed_order == ("archive", "clinic")
        assert policy.tenants["er"].shed_rank is None

    def test_psnr_floor_caps_degradation_ladder(self):
        policy = compile_policy(parse_policy(_doc()))
        assert policy.tenants["er"].max_level is DegradationLevel.NONE
        assert policy.tenants["clinic"].max_level is (
            DegradationLevel.QP_BUMP
        )
        assert policy.tenants["archive"].max_level is (
            DegradationLevel.FRAME_DROP
        )

    def test_miss_rate_drives_escalation(self):
        policy = compile_policy(parse_policy(_doc()))
        assert policy.tenants["er"].escalate_after == 1
        assert policy.tenants["clinic"].escalate_after == 2

    def test_resolve_falls_through_to_default(self):
        policy = compile_policy(parse_policy(_doc()))
        assert policy.resolve_name("") == "clinic"
        assert policy.resolve_name("never-heard-of-it") == "clinic"
        assert policy.resolve_name("er") == "er"

    def test_resilience_for_bounds_base_config(self):
        policy = compile_policy(parse_policy(_doc()))
        base = ResilienceConfig(max_level=DegradationLevel.FRAME_DROP,
                                escalate_after=3)
        bounded = policy.resilience_for("er", base)
        assert bounded.max_level is DegradationLevel.NONE
        assert bounded.escalate_after == 1
        assert policy.resilience_for("er", None) is None

    def test_clamp_platform_filters_frequencies(self):
        policy = compile_policy(parse_policy(_doc(dvfs={"max_ghz": 3.3})))
        clamped = policy.clamp_platform(XEON_E5_2667)
        assert clamped.f_max == 3.2 * GHZ
        assert 3.6 * GHZ not in clamped.frequencies_hz

    def test_clamp_platform_impossible_bounds_raise(self):
        policy = compile_policy(parse_policy(_doc(dvfs={"max_ghz": 1.0})))
        with pytest.raises(PolicyError, match="no platform frequency"):
            policy.clamp_platform(XEON_E5_2667)


# ----------------------------------------------------------------------
# Energy ledger + brownout scheduler
# ----------------------------------------------------------------------
class TestEnergyLedger:
    def test_windowed_power_is_energy_over_window(self):
        ledger = EnergyLedger(window_s=2.0)
        ledger.record(0.0, 10.0)
        ledger.record(1.0, 10.0)
        assert ledger.windowed_power(1.0) == pytest.approx(10.0)

    def test_slot_grid_boundary_expires_exactly(self):
        # Entries land on a 1/FPS grid; float subtraction of the window
        # must not keep an extra slot alive (that inflates power 1.5x).
        fps, window = 10.0, 0.2
        ledger = EnergyLedger(window_s=window)
        for slot in range(5):
            ledger.record((slot + 1) / fps, 1.0)
        # At now=0.5 the window [0.3, 0.5] holds exactly two entries.
        assert ledger.windowed_energy(0.5) == pytest.approx(2.0)

    def test_negative_energy_and_bad_window_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger(window_s=0.0)
        with pytest.raises(ValueError):
            EnergyLedger(window_s=1.0).record(0.0, -1.0)

    @given(st.lists(st.tuples(st.floats(0.0, 10.0), st.floats(0.0, 5.0)),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_windowed_energy_never_exceeds_total(self, entries):
        ledger = EnergyLedger(window_s=1.0)
        now = 0.0
        for dt, energy in entries:
            now += dt
            ledger.record(now, energy)
        assert 0.0 <= ledger.windowed_energy(now) <= ledger.total_j + 1e-9


class TestBrownout:
    def _scheduler(self, **overrides) -> EnergyBudgetScheduler:
        return EnergyBudgetScheduler(
            compile_policy(parse_policy(_doc(**overrides)))
        )

    def test_sheds_in_strict_reverse_priority_order(self):
        with scoped():
            sched = self._scheduler()
            sched.observe(1.0, 500.0)     # 500 W >> 100 W cap
            assert [e.kind for e in sched.check(1.0)] == ["shed"]
            assert sched.shed_tenants == ("archive",)
            sched.observe(1.1, 500.0)
            sched.check(1.1)
            assert sched.shed_tenants == ("archive", "clinic")
            assert not sched.serves("archive")
            assert sched.serves("er")

    def test_emergency_never_shed_cap_violation_counted(self):
        with scoped():
            sched = self._scheduler()
            for i in range(5):
                sched.observe(1.0 + i / 10, 500.0)
                sched.check(1.0 + i / 10)
            assert sched.shed_tenants == ("archive", "clinic")
            assert sched.serves("er")
            assert sched.cap_violations >= 1

    def test_hysteretic_readmission_reverse_order(self):
        with scoped():
            sched = self._scheduler()
            sched.observe(1.0, 500.0)
            sched.check(1.0)
            sched.observe(1.1, 500.0)
            sched.check(1.1)
            assert sched.shed_tenants == ("archive", "clinic")
            # Window drains; below cap but above the readmit threshold
            # (50 W): nothing comes back.
            sched.observe(3.0, 60.0)
            assert sched.check(3.0) == []
            # Below the threshold: needs 2 consecutive clear checks.
            assert sched.check(5.0) == []
            events = sched.check(5.1)
            assert [(e.kind, e.tenant) for e in events] == [
                ("readmit", "clinic")
            ]
            sched.check(5.2)
            events = sched.check(5.3)
            assert [(e.kind, e.tenant) for e in events] == [
                ("readmit", "archive")
            ]
            assert sched.shed_tenants == ()

    def test_shed_tenant_admission_refused(self):
        with scoped():
            sched = self._scheduler()
            sched.observe(1.0, 500.0)
            sched.check(1.0)
            ok, reason = sched.admits("archive")
            assert not ok and "brownout" in reason
            assert sched.admits("er") == (True, "")

    def test_per_tenant_budget_throttles_only_that_tenant(self):
        with scoped():
            sched = self._scheduler(power_cap_w=None)
            # archive's 20 W budget, exceeded by archive's own draw.
            sched.observe(1.0, 100.0, tenant="archive")
            events = sched.check(1.0)
            assert [(e.kind, e.tenant) for e in events] == [
                ("throttle", "archive")
            ]
            ok, reason = sched.admits("archive")
            assert not ok and "20 W" in reason
            assert sched.admits("clinic") == (True, "")
            assert sched.serves("archive")  # throttle gates admission only
            # Drained below 50% of budget for 2 checks: unthrottles.
            sched.check(3.0)
            events = sched.check(3.1)
            assert [(e.kind, e.tenant) for e in events] == [
                ("unthrottle", "archive")
            ]


# ----------------------------------------------------------------------
# Manager: versioned plan/apply + hot reload
# ----------------------------------------------------------------------
class TestManager:
    def test_initial_load_is_strict(self, tmp_path):
        path = tmp_path / "pol.json"
        path.write_text('{"tenants": []}')
        with pytest.raises(PolicyError):
            PolicyManager(str(path))

    def test_plan_apply_bumps_revision(self, tmp_path):
        with scoped():
            path = tmp_path / "pol.json"
            path.write_text(json.dumps(_doc()))
            manager = PolicyManager(str(path))
            assert manager.revision == 1
            seen = []
            manager.on_apply(
                lambda policy, plan, rev: seen.append((rev, plan))
            )
            new = compile_policy(parse_policy(_doc(power_cap_w=50.0)))
            assert "power_cap_w" in manager.plan(new).summary()
            applied = manager.apply(new)
            assert "power_cap_w" in applied.summary()
            assert manager.revision == 2
            assert seen and seen[0][0] == 2

    def test_reload_error_keeps_active_policy(self, tmp_path):
        import os
        with scoped():
            path = tmp_path / "pol.json"
            path.write_text(json.dumps(_doc()))
            manager = PolicyManager(str(path))
            active = manager.active
            path.write_text("{broken")
            os.utime(path, (1e9, 4e9))  # force an mtime change
            assert manager.maybe_reload() is None
            assert manager.reload_errors == 1
            assert manager.last_error is not None
            assert manager.active is active

    def test_reload_applies_changed_file(self, tmp_path):
        import os
        with scoped():
            path = tmp_path / "pol.json"
            path.write_text(json.dumps(_doc()))
            manager = PolicyManager(str(path))
            path.write_text(json.dumps(_doc(power_cap_w=60.0)))
            os.utime(path, (1e9, 4e9))
            plan = manager.maybe_reload()
            assert plan is not None and not plan.empty
            assert manager.active.power_cap_w == 60.0
            assert manager.revision == 2

    def test_plan_change_no_diff_is_empty(self):
        policy = compile_policy(parse_policy(_doc()))
        again = compile_policy(parse_policy(_doc()))
        assert plan_change(policy, again).empty


# ----------------------------------------------------------------------
# Admission integration
# ----------------------------------------------------------------------
class _FixedEstimator:
    def __init__(self, cpu_per_frame: float):
        self.cpu_per_frame = cpu_per_frame

    def estimate(self, key, area):
        return self.cpu_per_frame


def _policy_controller(**policy_overrides):
    # 2-core platform; each session needs 0.45 cores.  clinic holds
    # 2/6 of capacity = 0.67 cores -> exactly one session fits its
    # entitlement; er holds 1.0 core -> two sessions fit.
    ctrl = AdmissionController(
        estimator=_FixedEstimator(0.45 / 24.0),
        platform=MpsocConfig(num_sockets=1, cores_per_socket=2),
        policy=AdmissionPolicy(park_capacity=1),
    )
    ctrl.set_policy(compile_policy(parse_policy(_doc(**policy_overrides))))
    return ctrl


class TestAdmissionGates:
    def test_entitlement_parks_then_rejects_within_tenant(self):
        with scoped():
            ctrl = _policy_controller()
            hello = Hello(width=96, height=96, fps=24.0, tenant="clinic")
            assert ctrl.decide(0, hello)[0] is AdmissionDecision.ACCEPT
            decision, reason = ctrl.decide(1, hello)
            assert decision is AdmissionDecision.PARK
            decision, reason = ctrl.decide(2, hello)
            assert decision is AdmissionDecision.REJECT
            assert "entitlement" in reason

    def test_other_tenant_unaffected_by_full_neighbour(self):
        with scoped():
            ctrl = _policy_controller()
            clinic = Hello(width=96, height=96, fps=24.0, tenant="clinic")
            er = Hello(width=96, height=96, fps=24.0, tenant="er")
            assert ctrl.decide(0, clinic)[0] is AdmissionDecision.ACCEPT
            assert ctrl.decide(1, er)[0] is AdmissionDecision.ACCEPT
            assert ctrl.decide(2, er)[0] is AdmissionDecision.ACCEPT

    def test_release_frees_entitlement(self):
        with scoped():
            ctrl = _policy_controller()
            hello = Hello(width=96, height=96, fps=24.0, tenant="clinic")
            assert ctrl.decide(0, hello)[0] is AdmissionDecision.ACCEPT
            ctrl.release(0)
            assert ctrl.decide(1, hello)[0] is AdmissionDecision.ACCEPT

    def test_tenant_occupancies_fold_by_resolved_name(self):
        with scoped():
            ctrl = _policy_controller()
            ctrl.decide(0, Hello(width=96, height=96, fps=24.0,
                                 tenant="er"))
            ctrl.decide(1, Hello(width=96, height=96, fps=24.0))
            occ = ctrl.tenant_occupancies()
            assert occ["er"] == pytest.approx(0.45)
            assert occ["clinic"] == pytest.approx(0.45)  # default tenant

    def test_energy_gate_rejects_shed_tenant(self):
        with scoped():
            ctrl = _policy_controller()
            sched = EnergyBudgetScheduler(ctrl.compiled)
            ctrl.set_policy(ctrl.compiled, energy=sched)
            sched.observe(1.0, 500.0)
            sched.check(1.0)
            decision, reason = ctrl.decide(
                0, Hello(width=96, height=96, fps=24.0, tenant="archive")
            )
            assert decision is AdmissionDecision.REJECT
            assert "brownout" in reason

    def test_lighten_respects_tenant_ladder_cap(self):
        with scoped():
            ctrl = _policy_controller()
            # Push the global ladder to FRAME_DROP.
            for _ in range(10):
                ctrl._observe_overload()
            assert ctrl.level is not DegradationLevel.NONE
            qp_er, _ = ctrl.lighten(32, 64, tenant="er")
            assert qp_er == 32  # er is capped at NONE: untouched
            qp_arch, _ = ctrl.lighten(32, 64, tenant="archive")
            assert qp_arch > 32


# ----------------------------------------------------------------------
# Wire compatibility
# ----------------------------------------------------------------------
class TestHelloTenantWire:
    def test_round_trip(self):
        hello = Hello(width=64, height=64, tenant="er")
        msgs = MessageDecoder().feed(bytes(encode_message(hello)))
        assert len(msgs) == 1
        assert isinstance(msgs[0], Hello) and msgs[0].tenant == "er"

    def test_empty_tenant_omitted_from_payload(self):
        # Pre-policy peers never sent the key; we must not start —
        # the no-policy wire bytes stay identical to PR 8's.
        payload = json.loads(Hello(width=64, height=64).payload())
        assert "tenant" not in payload

    def test_old_peer_payload_defaults_to_empty(self):
        old = Hello(width=64, height=64).payload()  # lacks the key
        assert Hello.from_payload(0, old).tenant == ""


# ----------------------------------------------------------------------
# The brownout drill
# ----------------------------------------------------------------------
class TestPolicySmoke:
    def test_drill_passes_against_golden(self, capsys):
        assert policy_smoke.run() == 0
        out = capsys.readouterr().out
        assert "policy-smoke OK" in out

    def test_drill_is_deterministic(self):
        first = policy_smoke._stream_demands()
        second = policy_smoke._stream_demands()
        assert {
            t: [d.total_cpu_time_fmax for d in ds]
            for t, ds in first.items()
        } == {
            t: [d.total_cpu_time_fmax for d in ds]
            for t, ds in second.items()
        }
