"""Tests for body-part content classification (§III-D1 LUT reuse)."""

import numpy as np
import pytest

from repro.analysis.classes import (
    ContentClassifier,
    default_classifier,
    extract_features,
)
from repro.video.frame import Frame, Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def classifier():
    return default_classifier(seed=0)


class TestFeatures:
    def test_feature_vector_shape(self, textured_plane):
        f = extract_features(textured_plane)
        assert f.as_vector().shape == (4,)

    def test_flat_frame_features(self):
        f = extract_features(np.full((32, 32), 100, dtype=np.uint8))
        assert f.cv == pytest.approx(0.0)
        assert f.edge_density == pytest.approx(0.0)

    def test_noisy_frame_has_texture_features(self, textured_plane):
        f = extract_features(textured_plane)
        assert f.cv > 0.1
        assert f.edge_density > 0.1

    def test_empty_frame_raises(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros((0, 0)))


class TestClassifier:
    def test_recognises_unseen_videos_of_each_class(self, classifier):
        """Videos generated with different seeds/motions than the
        training set classify to their true class for most classes."""
        correct = 0
        for cc in ContentClass:
            video = BioMedicalVideoGenerator(GeneratorConfig(
                width=160, height=128, num_frames=4, seed=99,
                content_class=cc, motion=MotionPreset.PAN_DOWN,
            )).generate()
            if classifier.classify_video(video) is cc:
                correct += 1
        assert correct >= 4  # allow one confusion among 5 classes

    def test_classify_frame(self, classifier):
        video = BioMedicalVideoGenerator(GeneratorConfig(
            width=160, height=128, num_frames=1, seed=5,
            content_class=ContentClass.ULTRASOUND,
        )).generate()
        label = classifier.classify_frame(video[0])
        assert isinstance(label, ContentClass)

    def test_unfitted_classifier_raises(self):
        c = ContentClassifier()
        with pytest.raises(ValueError):
            c.classify_frame(Frame.blank(16, 16))

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            ContentClassifier().fit([])

    def test_empty_video_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.classify_video(Video(frames=[], fps=24))

    def test_fit_returns_self_and_sets_centroids(self):
        video = BioMedicalVideoGenerator(GeneratorConfig(
            width=96, height=80, num_frames=2, seed=1,
            content_class=ContentClass.BONE,
        )).generate()
        c = ContentClassifier().fit([(ContentClass.BONE, video)])
        assert ContentClass.BONE in c.centroids
        assert c.classify_video(video) is ContentClass.BONE
