"""Serving layer: wire protocol, admission control, streaming
bit-exactness, metrics digest and the bench satellites."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bench
from repro.codec.config import GopConfig
from repro.observability import scoped
from repro.observability.metrics import (
    HistogramValue,
    MetricsRegistry,
    format_metrics,
    serving_summary,
)
from repro.platform.mpsoc import MpsocConfig
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serving.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    MessageDecoder,
    ProtocolError,
    Stats,
    decode_frame,
    encode_encoded_into,
    encode_frame_into,
    encode_message,
)
from repro.resilience.degradation import DegradationLevel
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, generate_video


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
_hello = st.builds(
    Hello,
    width=st.integers(1, 4096), height=st.integers(1, 4096),
    fps=st.floats(1.0, 240.0, allow_nan=False),
    num_frames=st.integers(0, 10**6), gop=st.integers(1, 64),
    content_class=st.one_of(st.none(), st.sampled_from(
        [c.value for c in ContentClass])),
    client_id=st.text(max_size=32),
)
_ack = st.builds(
    HelloAck,
    decision=st.sampled_from(["accept", "reject", "park"]),
    session_id=st.integers(0, 2**31 - 1), reason=st.text(max_size=64),
    queue_frames=st.integers(0, 1024),
)


@st.composite
def _frame_msg(draw):
    width = draw(st.integers(1, 48))
    height = draw(st.integers(1, 48))
    luma = draw(st.binary(min_size=width * height, max_size=width * height))
    return FrameMsg(frame_index=draw(st.integers(0, 2**31 - 1)),
                    width=width, height=height, luma=luma)


@st.composite
def _encoded_msg(draw):
    dropped = draw(st.sampled_from(
        [None, "corrupt", "deadline", "backpressure"]))
    if dropped is None:
        width = draw(st.integers(1, 48))
        height = draw(st.integers(1, 48))
        luma = draw(st.binary(min_size=width * height,
                              max_size=width * height))
        ftype = draw(st.sampled_from(["I", "P", "B"]))
    else:
        width = height = 0
        luma = b""
        ftype = ""
    return Encoded(
        frame_index=draw(st.integers(0, 2**31 - 1)), frame_type=ftype,
        dropped=dropped, width=width, height=height,
        bits=draw(st.integers(0, 2**40)),
        psnr=draw(st.floats(0, 120, allow_nan=False)), luma=luma,
    )


_stats = st.builds(Stats, data=st.dictionaries(
    st.text(max_size=16),
    st.one_of(st.integers(-1000, 1000), st.text(max_size=16), st.none()),
    max_size=8,
))
_any_message = st.one_of(
    _hello, _ack, _frame_msg(), _encoded_msg(), _stats,
    st.builds(Bye, reason=st.text(max_size=64)),
    st.builds(ErrorMsg, code=st.text(min_size=1, max_size=16),
              detail=st.text(max_size=64)),
)


class TestProtocolRoundTrip:
    @given(msg=_any_message)
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, msg):
        wire = encode_message(msg)
        decoded, consumed = decode_frame(wire)
        assert consumed == len(wire)
        assert decoded == msg

    @given(msgs=st.lists(_any_message, min_size=1, max_size=5),
           chunk=st.integers(1, 13))
    @settings(max_examples=50, deadline=None)
    def test_incremental_decoder_reassembles_chunks(self, msgs, chunk):
        wire = b"".join(encode_message(m) for m in msgs)
        decoder = MessageDecoder()
        out = []
        for i in range(0, len(wire), chunk):
            out.extend(decoder.feed(wire[i:i + chunk]))
        assert out == msgs
        assert decoder.pending_bytes == 0


class TestZeroCopyWire:
    """The zero-copy hot path is wire-identical to the object path."""

    @given(msgs=st.lists(_any_message, min_size=1, max_size=4),
           chunk=st.integers(1, 13))
    @settings(max_examples=50, deadline=None)
    def test_memoryview_chunks_match_bytes_feed(self, msgs, chunk):
        """Chunked bytearray/memoryview feeds (the slow path) and one
        whole-``bytes`` feed (the fast path) decode identically."""
        wire = b"".join(encode_message(m) for m in msgs)
        whole = MessageDecoder().feed(wire)
        chunked = MessageDecoder()
        out = []
        for i in range(0, len(wire), chunk):
            out.extend(chunked.feed(memoryview(wire)[i:i + chunk]))
        assert out == whole == msgs
        assert chunked.pending_bytes == 0

    def test_fast_path_luma_is_view_not_copy(self):
        luma = bytes(range(256)) * 4  # 32x32
        wire = encode_message(FrameMsg(frame_index=7, width=32,
                                       height=32, luma=luma))
        (msg,) = MessageDecoder().feed(wire)
        assert isinstance(msg.luma, memoryview)
        assert msg.luma.obj is wire  # slice of the fed buffer
        arr = np.frombuffer(msg.luma, dtype=np.uint8).reshape(32, 32)
        assert not arr.flags.writeable  # immutable backing => zero-copy
        np.testing.assert_array_equal(
            arr, np.frombuffer(luma, dtype=np.uint8).reshape(32, 32))

    @given(frame_index=st.integers(0, 2**31 - 1), width=st.integers(1, 40),
           height=st.integers(1, 40), flags=st.integers(0, 0xFFFF))
    @settings(max_examples=50, deadline=None)
    def test_encode_frame_into_wire_identity(self, frame_index, width,
                                             height, flags):
        rng = np.random.default_rng(frame_index & 0xFFFF)
        plane = rng.integers(0, 256, (height, width), dtype=np.uint8)
        want = encode_message(
            FrameMsg(frame_index=frame_index, width=width, height=height,
                     luma=plane.tobytes()), flags=flags)
        for luma in (plane, plane.tobytes(), memoryview(plane.tobytes())):
            arena = bytearray(b"junk-from-last-message")
            del arena[:]
            n = encode_frame_into(arena, frame_index, width, height,
                                  luma, flags=flags)
            assert n == len(arena) and bytes(arena) == want

    @given(frame_index=st.integers(0, 2**31 - 1),
           frame_type=st.sampled_from(["I", "P", "B"]),
           width=st.integers(1, 40), height=st.integers(1, 40),
           bits=st.integers(0, 2**40),
           psnr=st.floats(0, 120, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_encode_encoded_into_wire_identity(self, frame_index,
                                               frame_type, width, height,
                                               bits, psnr):
        rng = np.random.default_rng(frame_index & 0xFFFF)
        recon = rng.integers(0, 256, (height, width), dtype=np.uint8)
        want = encode_message(Encoded(
            frame_index=frame_index, frame_type=frame_type, dropped=None,
            width=width, height=height, bits=bits, psnr=psnr,
            luma=recon.tobytes()))
        arena = bytearray()
        n = encode_encoded_into(arena, frame_index, frame_type=frame_type,
                                width=width, height=height, bits=bits,
                                psnr=psnr, luma=recon)
        assert n == len(arena) and bytes(arena) == want
        # Arena reuse: a second message in the same buffer is intact.
        del arena[:]
        encode_encoded_into(arena, frame_index, frame_type=frame_type,
                            width=width, height=height, bits=bits,
                            psnr=psnr, luma=recon)
        assert bytes(arena) == want

    def test_encode_into_validates_geometry(self):
        with pytest.raises(ProtocolError):
            encode_frame_into(bytearray(), 0, 4, 4, b"\x00" * 15)
        with pytest.raises(ProtocolError):
            encode_encoded_into(bytearray(), 0, width=4, height=4,
                                bits=0, psnr=0.0, luma=b"\x00" * 15)

    def test_memoryview_fed_session_bitstream_identical(self):
        """Sessions fed read-only socket-buffer views produce the same
        bits, PSNR and reconstructions as sessions fed owned arrays."""
        from repro.video.frame import Frame

        video = generate_video(ContentClass.BONE, width=64, height=64,
                               num_frames=8, seed=9)
        # Round-trip every frame through the wire to get protocol views.
        view_frames = []
        for f in video.frames:
            wire = encode_message(FrameMsg(
                frame_index=f.index, width=64, height=64,
                luma=f.luma.tobytes()))
            (msg,) = MessageDecoder().feed(wire)
            arr = np.frombuffer(msg.luma, dtype=np.uint8).reshape(64, 64)
            assert not arr.flags.writeable
            view_frames.append(Frame(luma=arr, index=f.index))
        config = PipelineConfig(gop=GopConfig(4))
        runs = []
        for frames in (video.frames, view_frames):
            with scoped(), StreamTranscoder(config) as t:
                session = t.open_session()
                outs = []
                for frame in frames:
                    outs.extend(session.push(frame))
                outs.extend(session.finish())
            runs.append(outs)
        owned, viewed = runs
        assert len(owned) == len(viewed) == 8
        for a, b in zip(owned, viewed):
            assert (a.frame_index, a.frame_type, a.dropped) == \
                (b.frame_index, b.frame_type, b.dropped)
            np.testing.assert_array_equal(a.reconstruction,
                                          b.reconstruction)
        assert [t_.bits for o in owned for t_ in o.record.tiles] == \
            [t_.bits for o in viewed for t_ in o.record.tiles]


class TestProtocolRejection:
    def test_truncated_header_is_incomplete_not_error(self):
        wire = encode_message(Bye("x"))
        for cut in range(HEADER_SIZE):
            assert decode_frame(wire[:cut]) == (None, 0)

    def test_truncated_payload_is_incomplete(self):
        wire = encode_message(Bye("x"))
        assert decode_frame(wire[:-1]) == (None, 0)

    def test_bad_magic_rejected(self):
        wire = bytearray(encode_message(Bye()))
        wire[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(wire))

    def test_unknown_version_rejected(self):
        wire = bytearray(encode_message(Bye()))
        wire[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(wire))

    def test_unknown_type_rejected(self):
        wire = bytearray(encode_message(Bye()))
        wire[5] = 200
        with pytest.raises(ProtocolError, match="message type"):
            decode_frame(bytes(wire))

    def test_corrupt_payload_fails_checksum(self):
        wire = bytearray(encode_message(Hello(width=64, height=64)))
        wire[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            decode_frame(bytes(wire))

    def test_oversized_length_rejected_before_buffering(self):
        import struct

        header = struct.pack("!4sBBHII", b"RPRV", 1, int(Bye.type), 0,
                             MAX_PAYLOAD + 1, 0)
        with pytest.raises(ProtocolError, match="too large"):
            decode_frame(header)

    def test_frame_luma_length_must_match_geometry(self):
        with pytest.raises(ValueError):
            FrameMsg(frame_index=0, width=4, height=4, luma=b"\0" * 15)

    def test_unknown_decision_rejected(self):
        wire = encode_message(HelloAck(decision="accept"))
        bad = wire[:HEADER_SIZE] + wire[HEADER_SIZE:].replace(
            b"accept", b"maybe!")
        import struct
        import zlib

        payload = bad[HEADER_SIZE:]
        header = struct.pack("!4sBBHII", b"RPRV", 1, int(HelloAck.type), 0,
                             len(payload), zlib.crc32(payload))
        with pytest.raises(ProtocolError, match="decision"):
            decode_frame(header + payload)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class _FixedEstimator:
    """Estimator stub pricing every session at a fixed CPU time."""

    def __init__(self, cpu_per_frame: float):
        self.cpu_per_frame = cpu_per_frame

    def estimate(self, key, area):
        return self.cpu_per_frame


def _controller(cpu_per_frame=0.45 / 24.0, **policy_kw):
    # One core; each session needs cpu_per_frame * 24 fps = 0.45 cores,
    # so two sessions fit and the third exceeds the slot cap.
    return AdmissionController(
        estimator=_FixedEstimator(cpu_per_frame),
        platform=MpsocConfig(num_sockets=1, cores_per_socket=1),
        policy=AdmissionPolicy(**policy_kw),
    )


_HELLO = Hello(width=96, height=96, fps=24.0)


class TestAdmission:
    def test_accepts_until_slot_cap_then_parks_then_rejects(self):
        with scoped():
            ctrl = _controller(park_capacity=1)
            assert ctrl.decide(0, _HELLO)[0] is AdmissionDecision.ACCEPT
            assert ctrl.decide(1, _HELLO)[0] is AdmissionDecision.ACCEPT
            assert ctrl.decide(2, _HELLO)[0] is AdmissionDecision.PARK
            decision, reason = ctrl.decide(3, _HELLO)
            assert decision is AdmissionDecision.REJECT
            assert "waiting room" in reason

    def test_release_frees_capacity_for_unpark(self):
        with scoped():
            ctrl = _controller(park_capacity=1)
            ctrl.decide(0, _HELLO)
            ctrl.decide(1, _HELLO)
            assert ctrl.decide(2, _HELLO)[0] is AdmissionDecision.PARK
            ctrl.release(0)
            assert ctrl.unpark(2, _HELLO)[0] is AdmissionDecision.ACCEPT
            assert ctrl.active_sessions == 2

    def test_rejects_non_positive_fps(self):
        with scoped():
            ctrl = _controller()
            hello = Hello(width=96, height=96, fps=0.0)
            assert ctrl.decide(0, hello)[0] is AdmissionDecision.REJECT

    def test_overload_ladder_escalates_and_lightens(self):
        with scoped():
            ctrl = _controller(park_capacity=0, overload_trip=2)
            ctrl.decide(0, _HELLO)
            ctrl.decide(1, _HELLO)
            assert ctrl.level is DegradationLevel.NONE
            ctrl.decide(2, _HELLO)
            ctrl.decide(3, _HELLO)  # second consecutive reject: trip
            assert ctrl.level is DegradationLevel.QP_BUMP
            assert ctrl.lighten(32, 64) == (34, 64)
            ctrl.decide(4, _HELLO)
            ctrl.decide(5, _HELLO)
            assert ctrl.level is DegradationLevel.WINDOW_SHRINK
            assert ctrl.lighten(32, 64) == (34, 32)
            # Never past the configured ceiling.
            ctrl.decide(6, _HELLO)
            ctrl.decide(7, _HELLO)
            assert ctrl.level is DegradationLevel.WINDOW_SHRINK

    def test_relief_walks_ladder_down(self):
        with scoped():
            ctrl = _controller(park_capacity=0, overload_trip=1)
            ctrl.decide(0, _HELLO)
            ctrl.decide(1, _HELLO)
            ctrl.decide(2, _HELLO)  # reject -> QP_BUMP
            assert ctrl.level is DegradationLevel.QP_BUMP
            ctrl.release(0)
            ctrl.release(1)
            ctrl.decide(3, _HELLO)  # accept at low occupancy -> relief
            assert ctrl.level is DegradationLevel.NONE

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(utilization=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(park_capacity=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(overload_trip=0)


# ----------------------------------------------------------------------
# Online session bit-exactness
# ----------------------------------------------------------------------
class TestStreamingSession:
    def test_pushes_match_offline_run(self):
        video = generate_video(ContentClass.BONE, width=64, height=64,
                               num_frames=12, seed=3)
        config = PipelineConfig(gop=GopConfig(4))
        with scoped():
            with StreamTranscoder(config) as t:
                offline = t.run(video)
        with scoped():
            with StreamTranscoder(config) as t:
                session = t.open_session()
                outputs = []
                for frame in video.frames:
                    outputs.extend(session.push(frame))
                outputs.extend(session.finish())
                online = session.trace
        assert len(online.gops) == len(offline.gops)
        for g_on, g_off in zip(online.gops, offline.gops):
            assert [f.frame_type for f in g_on.frames] == \
                [f.frame_type for f in g_off.frames]
            assert [t_.bits for f in g_on.frames for t_ in f.tiles] == \
                [t_.bits for f in g_off.frames for t_ in f.tiles]
            assert [t_.psnr for f in g_on.frames for t_ in f.tiles] == \
                [t_.psnr for f in g_off.frames for t_ in f.tiles]
        assert online.dropped_frames == offline.dropped_frames
        encoded = [o for o in outputs if o.dropped is None]
        assert len(encoded) == len(video)
        for out in encoded:
            assert out.reconstruction.dtype == np.uint8
            assert out.reconstruction.shape == (64, 64)

    def test_push_returns_outputs_per_gop(self):
        video = generate_video(ContentClass.BRAIN, width=64, height=64,
                               num_frames=6, seed=1)
        with scoped(), StreamTranscoder(
                PipelineConfig(gop=GopConfig(4))) as t:
            session = t.open_session()
            sizes = [len(session.push(f)) for f in video.frames]
            tail = session.finish()
        assert sizes == [0, 0, 0, 4, 0, 0]
        assert len(tail) == 2

    def test_open_session_requires_proposed_mode(self):
        with StreamTranscoder(PipelineConfig.khan()) as t:
            with pytest.raises(ValueError):
                t.open_session()


# ----------------------------------------------------------------------
# Metrics digest
# ----------------------------------------------------------------------
class TestServingMetricsSection:
    def test_histogram_quantile(self):
        hist = HistogramValue(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 4.0
        q50 = hist.quantile(0.5)
        assert 1.0 <= q50 <= 2.0
        assert HistogramValue().quantile(0.5) is None
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def _snapshot(self):
        reg = MetricsRegistry()
        reg.inc("repro_serving_admission_total", 3, decision="accept")
        reg.inc("repro_serving_admission_total", 1, decision="reject")
        reg.inc("repro_serving_frames_encoded_total", 40)
        reg.inc("repro_serving_deadline_miss_total", 4)
        reg.inc("repro_serving_frames_dropped_total", 2,
                reason="backpressure")
        for v in (0.01, 0.02, 0.03, 0.2):
            reg.observe("repro_serving_frame_latency_seconds", v)
        return reg.to_dict()

    def test_serving_summary_digest(self):
        summary = serving_summary(self._snapshot())
        assert summary["sessions_accepted"] == 3
        assert summary["sessions_rejected"] == 1
        assert summary["frames_dropped"] == 2
        assert summary["deadline_miss_rate"] == pytest.approx(0.1)
        assert summary["latency_p50_s"] is not None
        assert summary["latency_p95_s"] >= summary["latency_p50_s"]

    def test_serving_summary_absent_without_serving_metrics(self):
        reg = MetricsRegistry()
        reg.inc("repro_frames_total", 5)
        assert serving_summary(reg.to_dict()) is None
        assert "serving" not in format_metrics(reg.to_dict())

    def test_format_metrics_renders_serving_section(self):
        text = format_metrics(self._snapshot())
        assert "serving" in text
        assert "accepted 3" in text
        assert "p95" in text
        assert "deadline miss: 4 (10.0%)" in text


# ----------------------------------------------------------------------
# Bench satellites
# ----------------------------------------------------------------------
class TestBenchOutputs:
    def test_next_bench_path_ignores_non_numeric_suffixes(self, tmp_path):
        for name in ("BENCH_0.json", "BENCH_2.json", "BENCH_x.json",
                     "BENCH_1_old.json", "BENCH_03b.json", "BENCH_.json"):
            (tmp_path / name).write_text("{}")
        assert bench.next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_next_bench_path_empty_dir(self, tmp_path):
        assert bench.next_bench_path(tmp_path).name == "BENCH_0.json"

    def test_git_sha_of_this_repo(self):
        sha = bench.git_sha()
        assert sha is not None and len(sha) == 40
        int(sha, 16)

    def test_git_sha_outside_git(self, tmp_path):
        assert bench.git_sha(tmp_path) is None

    def test_summarize_records_git_sha(self):
        summary = bench.summarize({"benchmarks": []}, ["codec"])
        assert summary["git_sha"] == bench.git_sha()
        assert summary["benchmarks"] == []

    def test_main_refuses_to_overwrite(self, tmp_path, capsys):
        out = tmp_path / "BENCH_7.json"
        out.write_text(json.dumps({"keep": True}))
        with pytest.raises(SystemExit):
            bench.main(["--groups", "codec", "--out", str(out)])
        assert json.loads(out.read_text()) == {"keep": True}
