"""Tests for the bit-exact bitstream layer."""

import pytest
from hypothesis import given, strategies as st

from repro.codec.bitstream import (
    BitReader,
    BitWriter,
    se_bit_length,
    ue_bit_length,
)


class TestBitIO:
    def test_single_bits_roundtrip(self):
        w = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for b in pattern:
            w.write_bit(b)
        r = BitReader(w.flush())
        assert [r.read_bit() for _ in range(len(pattern))] == pattern

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0b0, 4)
        data = w.flush()
        assert data == bytes([0b10110000])

    def test_flush_pads_to_byte(self):
        w = BitWriter()
        w.write_bit(1)
        data = w.flush()
        assert len(data) == 1
        assert data[0] == 0b10000000

    def test_bits_written_counter(self):
        w = BitWriter()
        w.write_bits(3, 2)
        w.write_ue(0)  # 1 bit
        assert w.bits_written == 3

    def test_write_bits_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(8, 3)

    def test_write_bits_rejects_negative_count(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0, -1)

    def test_reader_eof(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(bytes([0xFF]))
        assert r.bits_remaining == 8
        r.read_bits(3)
        assert r.bits_remaining == 5


class TestExpGolomb:
    @pytest.mark.parametrize("value,expected_bits", [
        (0, 1), (1, 3), (2, 3), (3, 5), (6, 5), (7, 7), (255, 17),
    ])
    def test_ue_bit_length(self, value, expected_bits):
        assert ue_bit_length(value) == expected_bits

    def test_ue_bit_length_rejects_negative(self):
        with pytest.raises(ValueError):
            ue_bit_length(-1)

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 17, -17, 1000])
    def test_se_roundtrip(self, value):
        w = BitWriter()
        w.write_se(value)
        assert w.bits_written == se_bit_length(value)
        r = BitReader(w.flush())
        assert r.read_se() == value

    @given(st.integers(min_value=0, max_value=10**6))
    def test_ue_roundtrip_property(self, value):
        w = BitWriter()
        w.write_ue(value)
        assert w.bits_written == ue_bit_length(value)
        r = BitReader(w.flush())
        assert r.read_ue() == value

    @given(st.lists(st.integers(min_value=-5000, max_value=5000), max_size=50))
    def test_mixed_sequence_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_se(v)
        r = BitReader(w.flush())
        assert [r.read_se() for _ in values] == values

    def test_ue_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_ue(-3)

    def test_malformed_ue_raises(self):
        # 70 zero bits: no valid exp-Golomb prefix.
        r = BitReader(bytes(10))
        with pytest.raises(ValueError):
            r.read_ue()
