"""Tests for the WPP and GOP-level parallelization models (§II-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.gop_level import GopParallelModel
from repro.parallel.wavefront import simulate_wavefront


class TestWavefront:
    def test_single_core_is_serial(self):
        costs = np.ones((4, 6))
        s = simulate_wavefront(costs, 1)
        assert s.makespan == pytest.approx(24.0)
        assert s.speedup == pytest.approx(1.0)

    def test_unlimited_cores_hit_critical_path(self):
        """With uniform unit costs, the wavefront critical path is
        cols + 2*(rows-1) CTU times."""
        rows, cols = 8, 8
        s = simulate_wavefront(np.ones((rows, cols)), 100)
        assert s.makespan == pytest.approx(cols + 2 * (rows - 1))

    def test_dependencies_cap_speedup(self):
        """The paper's point: WPP cannot use all cores concurrently."""
        rows, cols = 8, 8
        s = simulate_wavefront(np.ones((rows, cols)), rows)
        ideal = rows  # tiles with 8 rows could reach 8x
        assert s.speedup < 0.5 * ideal

    def test_more_cores_never_slower(self):
        costs = np.random.default_rng(0).uniform(0.5, 2.0, size=(6, 10))
        makespans = [simulate_wavefront(costs, k).makespan for k in (1, 2, 4, 8)]
        for a, b in zip(makespans, makespans[1:]):
            assert b <= a + 1e-9

    def test_start_times_respect_dependencies(self):
        costs = np.random.default_rng(1).uniform(0.1, 1.0, size=(5, 7))
        s = simulate_wavefront(costs, 4)
        rows, cols = costs.shape
        for r in range(rows):
            for c in range(cols):
                if c > 0:
                    assert s.start_times[r, c] >= s.finish_times[r, c - 1] - 1e-9
                if r > 0:
                    dep_c = min(c + 1, cols - 1)
                    assert s.start_times[r, c] >= s.finish_times[r - 1, dep_c] - 1e-9

    def test_work_conservation(self):
        costs = np.random.default_rng(2).uniform(0.1, 1.0, size=(4, 5))
        s = simulate_wavefront(costs, 3)
        durations = s.finish_times - s.start_times
        np.testing.assert_allclose(durations, costs)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_wavefront(np.ones((2, 2)), 0)
        with pytest.raises(ValueError):
            simulate_wavefront(np.ones(4), 1)

    @given(st.integers(1, 5), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds_property(self, rows, cols, cores):
        rng = np.random.default_rng(rows * 31 + cols * 7 + cores)
        costs = rng.uniform(0.1, 1.0, size=(rows, cols))
        s = simulate_wavefront(costs, cores)
        # Never beats the work bound or the critical path; never
        # exceeds serial time.
        assert s.makespan >= costs.sum() / cores - 1e-9
        assert s.makespan <= costs.sum() + 1e-9


class TestGopParallel:
    def test_workers_for_realtime(self):
        # A GOP of 8 at 24 fps arrives every 1/3 s; encoding takes
        # 8 * 0.08 = 0.64 s -> 2 workers needed.
        m = GopParallelModel(8, 0.08, 24.0)
        assert m.workers_for_realtime() == 2

    def test_plan_meets_throughput_with_enough_workers(self):
        m = GopParallelModel(8, 0.08, 24.0)
        plan = m.plan(m.workers_for_realtime())
        assert plan.sustained_fps == pytest.approx(24.0)

    def test_underprovisioned_throughput_drops(self):
        m = GopParallelModel(8, 0.08, 24.0)
        plan = m.plan(1)
        assert plan.sustained_fps < 24.0

    def test_latency_breaks_online_requirement(self):
        """The paper's key argument against GOP parallelism: at least
        one GOP of buffering makes per-frame deadlines unreachable."""
        m = GopParallelModel(8, 0.08, 24.0)
        plan = m.plan(4)
        frame_deadline = 1.0 / 24.0
        assert not plan.meets_online_latency(frame_deadline)
        assert plan.latency_seconds > m.gop_arrival_period

    def test_validation(self):
        with pytest.raises(ValueError):
            GopParallelModel(0, 0.1, 24)
        with pytest.raises(ValueError):
            GopParallelModel(8, -1, 24)
        with pytest.raises(ValueError):
            GopParallelModel(8, 0.1, 24).plan(0)
