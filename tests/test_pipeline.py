"""Tests for the end-to-end per-stream transcoding pipeline (Fig. 2)."""

import numpy as np
import pytest

from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.qp.defaults import QP_MAX, QP_MIN
from repro.transcode.pipeline import (
    PipelineConfig,
    PipelineMode,
    StreamTranscoder,
)
from repro.video.frame import Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def test_video():
    cfg = GeneratorConfig(
        width=160, height=128, num_frames=16, seed=11,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=2.0,
    )
    return BioMedicalVideoGenerator(cfg).generate()


@pytest.fixture(scope="module")
def proposed_trace(test_video):
    return StreamTranscoder(PipelineConfig()).run(test_video)


@pytest.fixture(scope="module")
def khan_trace(test_video):
    return StreamTranscoder(PipelineConfig.khan()).run(test_video)


class TestProposedPipeline:
    def test_one_gop_record_per_gop(self, proposed_trace, test_video):
        assert len(proposed_trace.gops) == 2  # 16 frames / GOP 8

    def test_every_frame_recorded(self, proposed_trace, test_video):
        assert len(proposed_trace.frame_records) == len(test_video)

    def test_gop_leading_frames_are_intra(self, proposed_trace):
        for gop in proposed_trace.gops:
            assert gop.frames[0].frame_type is FrameType.I
            for f in gop.frames[1:]:
                assert f.frame_type is FrameType.P

    def test_tile_records_match_grid(self, proposed_trace):
        for gop in proposed_trace.gops:
            for frame in gop.frames:
                assert len(frame.tiles) == len(gop.grid)

    def test_qps_stay_in_paper_ladder_range(self, proposed_trace):
        for frame in proposed_trace.frame_records:
            for t in frame.tiles:
                assert QP_MIN <= t.qp <= QP_MAX

    def test_cpu_times_positive(self, proposed_trace):
        for frame in proposed_trace.frame_records:
            for t in frame.tiles:
                assert t.cpu_time_fmax > 0

    def test_threads_built_from_mean_times(self, proposed_trace):
        gop = proposed_trace.steady_state_gop()
        threads = gop.threads(user_id=3)
        means = gop.mean_tile_cpu_times()
        assert len(threads) == len(gop.grid)
        for thread, mean in zip(threads, means):
            assert thread.user_id == 3
            assert thread.cpu_time_fmax == pytest.approx(mean)

    def test_quality_metrics_sane(self, proposed_trace):
        assert 25 < proposed_trace.average_psnr < 100
        assert proposed_trace.min_psnr <= proposed_trace.average_psnr
        assert proposed_trace.average_psnr <= proposed_trace.max_psnr
        assert proposed_trace.bitrate_mbps > 0

    def test_workload_lut_gets_trained(self, test_video):
        transcoder = StreamTranscoder(PipelineConfig())
        transcoder.run(test_video)
        assert len(transcoder.estimator.lut) > 0

    def test_empty_video_rejected(self):
        with pytest.raises(ValueError):
            StreamTranscoder(PipelineConfig()).run(Video(frames=[], fps=24))


class TestKhanPipeline:
    def test_capacity_rule_sets_tile_count(self, khan_trace):
        """After the probe GOP, the tile count follows ceil(W * FPS)."""
        first = khan_trace.gops[0]
        steady = khan_trace.steady_state_gop()
        frame_time = np.mean([f.cpu_time_fmax for f in first.frames])
        expected = max(1, int(np.ceil(frame_time * 24.0)))
        assert len(steady.grid) == expected

    def test_explicit_core_count_respected(self, test_video):
        config = PipelineConfig.khan(khan_cores=4)
        trace = StreamTranscoder(config).run(test_video)
        for gop in trace.gops:
            assert len(gop.grid) == 4

    def test_single_qp_everywhere(self, khan_trace):
        qps = {
            t.qp for f in khan_trace.frame_records for t in f.tiles
        }
        assert qps == {32}

    def test_khan_workload_exceeds_proposed(self, proposed_trace, khan_trace):
        """The content-aware pipeline spends fewer CPU seconds per
        frame than the baseline — the source of every headline gain."""
        prop = np.mean([f.cpu_time_fmax for f in proposed_trace.frame_records])
        khan = np.mean([f.cpu_time_fmax for f in khan_trace.frame_records])
        assert prop < khan

    def test_comparable_quality(self, proposed_trace, khan_trace):
        """Content-aware savings must not cost meaningful quality
        (paper: both approaches deliver ~40.5 dB)."""
        assert abs(proposed_trace.average_psnr - khan_trace.average_psnr) < 2.0


class TestPipelineConfig:
    def test_khan_factory_defaults(self):
        cfg = PipelineConfig.khan()
        assert cfg.mode is PipelineMode.KHAN
        assert cfg.base_config.search == "hexagon"

    def test_khan_factory_overrides(self):
        cfg = PipelineConfig.khan(fps=30.0, khan_cores=3)
        assert cfg.fps == 30.0
        assert cfg.khan_cores == 3

    def test_default_is_proposed(self):
        assert PipelineConfig().mode is PipelineMode.PROPOSED
        assert PipelineConfig().gop.size == 8
