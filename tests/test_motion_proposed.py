"""Tests for the proposed bio-medical search policy (paper §III-C2)."""

import numpy as np
import pytest

from repro.analysis.motion_probe import MotionClass
from repro.motion.base import SearchContext
from repro.motion.cross import CrossSearch
from repro.motion.hexagon import HexagonOrientation, HexagonSearch
from repro.motion.one_at_a_time import OneAtATimeSearch
from repro.motion.proposed import (
    BioMedicalSearchPolicy,
    GopMotionState,
    ProposedSearchConfig,
)


class TestPolicySelection:
    def setup_method(self):
        self.policy = BioMedicalSearchPolicy()

    def test_low_motion_first_frame_uses_cross_16(self):
        alg, window = self.policy.select(MotionClass.LOW, True)
        assert isinstance(alg, CrossSearch)
        assert window == 16

    def test_low_motion_rest_uses_oats_8(self):
        alg, window = self.policy.select(MotionClass.LOW, False)
        assert isinstance(alg, OneAtATimeSearch)
        assert window == 8

    def test_high_motion_first_frame_uses_rotating_hexagon_max_window(self):
        alg, window = self.policy.select(MotionClass.HIGH, True)
        assert isinstance(alg, HexagonSearch)
        assert alg.orientation is HexagonOrientation.ROTATING
        assert window == 64

    def test_high_motion_rest_uses_directional_hexagon_smaller_window(self):
        self.policy.state.learn(0, (5, 1))  # learn horizontal axis
        alg, window = self.policy.select(MotionClass.HIGH, False)
        assert isinstance(alg, HexagonSearch)
        assert alg.orientation is HexagonOrientation.HORIZONTAL
        assert window == 32

    def test_vertical_axis_selects_vertical_hexagon(self):
        self.policy.state.learn(0, (1, 9))
        alg, _ = self.policy.select(MotionClass.HIGH, False)
        assert alg.orientation is HexagonOrientation.VERTICAL

    def test_oats_axis_follows_learned_direction(self):
        self.policy.state.learn(0, (0, 4))
        alg, _ = self.policy.select(MotionClass.LOW, False)
        assert alg.primary_axis == "y"

    def test_custom_windows(self):
        policy = BioMedicalSearchPolicy(
            ProposedSearchConfig(low_first_window=32, high_rest_window=16)
        )
        assert policy.select(MotionClass.LOW, True)[1] == 32
        assert policy.select(MotionClass.HIGH, False)[1] == 16


class TestGopMotionState:
    def test_learn_records_tile_mv(self):
        state = GopMotionState()
        state.learn(3, (4, -2))
        assert state.predictor(3) == (4, -2)
        assert state.predictor(99) == (0, 0)

    def test_dominant_axis_from_first_nonzero(self):
        state = GopMotionState()
        state.learn(0, (0, 0))
        assert state.dominant_axis is None
        state.learn(1, (1, 5))
        assert state.dominant_axis == "y"
        state.learn(2, (9, 0))  # later votes do not flip the axis
        assert state.dominant_axis == "y"

    def test_start_gop_resets_state(self):
        policy = BioMedicalSearchPolicy()
        policy.state.learn(0, (7, 0))
        policy.start_gop()
        assert policy.state.dominant_axis is None
        assert policy.state.predictor(0) == (0, 0)


class TestSearchBlock:
    def _ctx_factory(self, ref, block, x, y):
        def factory(window):
            return SearchContext(ref, block, x, y, window, lambda_mv=0.0)
        return factory

    def test_learns_on_first_frame_and_inherits(self, rng):
        from scipy import ndimage
        base = ndimage.gaussian_filter(rng.standard_normal((96, 96)), 4.0)
        ref = np.clip(128 + 100 * base / np.abs(base).max(), 0, 255).astype(np.uint8)
        true = (6, 0)
        block = ref[40:56, 46:62]  # shifted by (6, 0)
        policy = BioMedicalSearchPolicy()
        policy.start_gop()
        factory = self._ctx_factory(ref, block, 40, 40)
        first = policy.search_block(factory, MotionClass.HIGH, True, tile_id=0)
        assert first.mv == true
        assert policy.state.dominant_axis == "x"
        # Second frame: the policy seeds from the learned MV, so even
        # the tiny 8x8-window OATS finds the same displacement.
        rest = policy.search_block(
            factory, MotionClass.LOW, False, tile_id=0
        )
        assert rest.mv == true

    def test_left_mv_seed_is_used(self):
        """A perfect left-neighbour predictor short-circuits the search."""
        yy, xx = np.mgrid[0:96, 0:96]
        ref = np.clip(128 + 60 * np.sin(2 * np.pi * xx / 80.0)
                      + 60 * np.sin(2 * np.pi * yy / 80.0), 0, 255).astype(np.uint8)
        block = ref[45:61, 47:63]  # displacement (7, 5)
        policy = BioMedicalSearchPolicy()
        policy.start_gop()
        factory = self._ctx_factory(ref, block, 40, 40)
        result = policy.search_block(
            factory, MotionClass.HIGH, False, tile_id=0, left_mv=(7, 5)
        )
        assert result.mv == (7, 5)
        assert result.cost == 0.0
