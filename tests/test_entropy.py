"""Tests for run-length/exp-Golomb coefficient coding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import (
    count_block_bits,
    count_stack_bits,
    read_block,
    write_block,
)


def _roundtrip(levels: np.ndarray) -> np.ndarray:
    w = BitWriter()
    write_block(w, levels)
    r = BitReader(w.flush())
    return read_block(r, len(levels))


class TestCoefficientCoding:
    def test_all_zero_block_costs_one_bit(self):
        levels = np.zeros(64, dtype=np.int32)
        assert count_block_bits(levels) == 1
        np.testing.assert_array_equal(_roundtrip(levels), levels)

    def test_single_dc_roundtrip(self):
        levels = np.zeros(64, dtype=np.int32)
        levels[0] = -7
        np.testing.assert_array_equal(_roundtrip(levels), levels)

    def test_dense_block_roundtrip(self, rng):
        levels = rng.integers(-20, 21, size=64).astype(np.int32)
        levels[63] = 5  # force the last position significant
        np.testing.assert_array_equal(_roundtrip(levels), levels)

    def test_count_matches_written_bits(self, rng):
        for _ in range(20):
            levels = rng.integers(-6, 7, size=64).astype(np.int32)
            w = BitWriter()
            write_block(w, levels)
            assert w.bits_written == count_block_bits(levels)

    def test_sparser_blocks_cost_fewer_bits(self):
        dense = np.ones(64, dtype=np.int32)
        sparse = np.zeros(64, dtype=np.int32)
        sparse[0] = 1
        assert count_block_bits(sparse) < count_block_bits(dense)

    def test_tail_zeros_are_free(self):
        a = np.zeros(64, dtype=np.int32)
        a[3] = 4
        b = np.zeros(16, dtype=np.int32)
        b[3] = 4
        assert count_block_bits(a) == count_block_bits(b)

    def test_count_stack_bits_sums(self, rng):
        stack = rng.integers(-3, 4, size=(5, 64)).astype(np.int32)
        assert count_stack_bits(stack) == sum(
            count_block_bits(stack[i]) for i in range(5)
        )

    @given(st.lists(st.integers(-30, 30), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        levels = np.array(values, dtype=np.int32)
        np.testing.assert_array_equal(_roundtrip(levels), levels)

    @given(st.lists(st.integers(-30, 30), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_count_equals_write_property(self, values):
        levels = np.array(values, dtype=np.int32)
        w = BitWriter()
        write_block(w, levels)
        assert w.bits_written == count_block_bits(levels)


class TestMalformedStreams:
    def test_overrunning_run_raises(self):
        # last_plus_one = 1 (ue(1)=010) then run=5 overruns index 0.
        w = BitWriter()
        w.write_ue(1)
        w.write_ue(5)
        w.write_se(1)
        r = BitReader(w.flush())
        with pytest.raises(ValueError):
            read_block(r, 64)

    def test_zero_level_raises(self):
        w = BitWriter()
        w.write_ue(1)  # one significant level at index 0
        w.write_ue(0)  # run 0
        w.write_se(0)  # invalid zero level
        r = BitReader(w.flush())
        with pytest.raises(ValueError):
            read_block(r, 64)

    def test_last_index_beyond_block_raises(self):
        w = BitWriter()
        w.write_ue(65)  # last index 64 in a 64-length block
        r = BitReader(w.flush())
        with pytest.raises(ValueError):
            read_block(r, 64)
