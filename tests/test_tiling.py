"""Tests for tile geometry, uniform tiling and constraints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tiling.constraints import TilingConstraints
from repro.tiling.tile import Tile, TileGrid, split_evenly
from repro.tiling.uniform import TABLE1_TILINGS, uniform_tiling


class TestTile:
    def test_basic_geometry(self):
        t = Tile(10, 20, 30, 40)
        assert t.x_end == 40
        assert t.y_end == 60
        assert t.area == 1200
        assert t.center == (25.0, 40.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Tile(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Tile(0, 0, 10, -1)
        with pytest.raises(ValueError):
            Tile(-1, 0, 10, 10)

    def test_overlap_detection(self):
        a = Tile(0, 0, 10, 10)
        assert a.overlaps(Tile(5, 5, 10, 10))
        assert not a.overlaps(Tile(10, 0, 10, 10))  # edge-adjacent
        assert not a.overlaps(Tile(0, 10, 10, 10))

    def test_contains_point(self):
        t = Tile(4, 4, 8, 8)
        assert t.contains_point(4, 4)
        assert t.contains_point(11, 11)
        assert not t.contains_point(12, 4)

    def test_extract_views_plane(self):
        plane = np.arange(100).reshape(10, 10)
        t = Tile(2, 3, 4, 5)
        region = t.extract(plane)
        assert region.shape == (5, 4)
        assert region[0, 0] == plane[3, 2]

    def test_extract_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            Tile(5, 5, 10, 10).extract(np.zeros((8, 8)))


class TestTileGrid:
    def test_single_tile(self):
        grid = TileGrid.single(64, 48)
        assert len(grid) == 1
        assert grid[0].area == 64 * 48

    def test_partition_invariant_accepts_exact_cover(self):
        tiles = [Tile(0, 0, 32, 48), Tile(32, 0, 32, 48)]
        TileGrid(64, 48, tiles)  # must not raise

    def test_rejects_gap(self):
        with pytest.raises(ValueError):
            TileGrid(64, 48, [Tile(0, 0, 32, 48)])

    def test_rejects_overlap(self):
        tiles = [Tile(0, 0, 40, 48), Tile(32, 0, 32, 48)]
        with pytest.raises(ValueError):
            TileGrid(64, 48, tiles)

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            TileGrid(64, 48, [Tile(0, 0, 65, 48)])

    def test_rejects_overlap_same_area_as_frame(self):
        """Equal-area sneaky overlap must still be caught."""
        tiles = [Tile(0, 0, 32, 48), Tile(16, 0, 32, 48),
                 Tile(0, 0, 16, 48)]
        with pytest.raises(ValueError):
            TileGrid(64, 48, tiles)

    def test_tile_at(self):
        grid = uniform_tiling(64, 64, 2, 2, align=16)
        t = grid.tile_at(40, 10)
        assert t.x == 32 and t.y == 0
        with pytest.raises(ValueError):
            grid.tile_at(64, 0)

    def test_coverage_map_is_total(self):
        grid = uniform_tiling(80, 48, 3, 2, align=16)
        cover = grid.coverage_map()
        assert cover.min() >= 0
        counts = np.bincount(cover.ravel())
        for idx, tile in enumerate(grid):
            assert counts[idx] == tile.area

    def test_from_grid_validates_sums(self):
        with pytest.raises(ValueError):
            TileGrid.from_grid(64, 48, [32, 16], [48])
        with pytest.raises(ValueError):
            TileGrid.from_grid(64, 48, [32, 32], [40])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            TileGrid(64, 48, [])


class TestSplitEvenly:
    def test_exact_division(self):
        assert split_evenly(64, 4, align=16) == [16, 16, 16, 16]

    def test_remainder_goes_last(self):
        sizes = split_evenly(100, 3, align=16)
        assert sum(sizes) == 100
        assert sizes[:2] == [32, 32]
        assert sizes[2] == 36

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            split_evenly(3, 4)
        with pytest.raises(ValueError):
            split_evenly(10, 0)

    @given(st.integers(1, 2000), st.integers(1, 12),
           st.sampled_from([1, 8, 16]))
    @settings(max_examples=100, deadline=None)
    def test_split_property(self, total, parts, align):
        if total < parts:
            return
        sizes = split_evenly(total, parts, align=align)
        assert len(sizes) == parts
        assert sum(sizes) == total
        assert all(s > 0 for s in sizes)


class TestUniformTiling:
    @pytest.mark.parametrize("cols,rows", TABLE1_TILINGS)
    def test_paper_tilings_valid_at_vga(self, cols, rows):
        grid = uniform_tiling(640, 480, cols, rows)
        assert len(grid) == cols * rows
        # Partition invariant checked by the constructor; verify
        # alignment of interior boundaries.
        for tile in grid:
            if tile.x_end != 640:
                assert tile.x_end % 16 == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_tiling(64, 48, 0, 1)

    def test_near_equal_sizes(self):
        grid = uniform_tiling(640, 480, 5, 3)
        widths = sorted({t.width for t in grid})
        assert max(widths) - min(widths) <= 16


class TestTilingConstraints:
    def test_defaults_valid(self):
        TilingConstraints()

    @pytest.mark.parametrize("kwargs", [
        dict(min_tile_width=0),
        dict(max_tiles=2),
        dict(growth_step=0),
        dict(growth_step=1.5),
        dict(max_margin_fraction=0.6),
        dict(align=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TilingConstraints(**kwargs)
