"""Tests for 4:2:0 chroma coding."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.chroma import BlockInfo, CHROMA_QP_OFFSET, chroma_mv
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameCodec
from repro.tiling.uniform import uniform_tiling
from repro.video.frame import Frame
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.video.metrics import psnr


@pytest.fixture(scope="module")
def chroma_video():
    cfg = GeneratorConfig(
        width=96, height=80, num_frames=6, seed=5,
        content_class=ContentClass.CARDIAC, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=2.0, with_chroma=True,
    )
    return BioMedicalVideoGenerator(cfg).generate()


class TestChromaMv:
    def test_integer_pel_halving(self):
        assert chroma_mv((4, -6), half_pel=False) == (2, -3)

    def test_rounding_half_away_from_zero(self):
        assert chroma_mv((3, -3), half_pel=False) == (2, -2)
        assert chroma_mv((1, -1), half_pel=False) == (1, -1)

    def test_half_pel_units_quartered(self):
        # mv of 8 half-pels = 4 luma pels = 2 chroma pels.
        assert chroma_mv((8, -8), half_pel=True) == (2, -2)

    def test_zero(self):
        assert chroma_mv((0, 0), half_pel=False) == (0, 0)


class TestGeneratorChroma:
    def test_planes_present_and_half_size(self, chroma_video):
        f = chroma_video[0]
        assert f.chroma_u is not None and f.chroma_v is not None
        assert f.chroma_u.shape == (f.height // 2, f.width // 2)
        assert f.chroma_u.dtype == np.uint8

    def test_chroma_disabled_by_default(self):
        v = BioMedicalVideoGenerator(GeneratorConfig(
            width=64, height=48, num_frames=1
        )).generate()
        assert v[0].chroma_u is None

    def test_tint_varies_by_class(self):
        frames = {}
        for cc in (ContentClass.CARDIAC, ContentClass.LUNG):
            v = BioMedicalVideoGenerator(GeneratorConfig(
                width=64, height=48, num_frames=1, seed=1,
                content_class=cc, with_chroma=True,
            )).generate()
            frames[cc] = v[0]
        assert (frames[ContentClass.CARDIAC].chroma_v.astype(int).mean()
                != frames[ContentClass.LUNG].chroma_v.astype(int).mean())


class TestChromaCodec:
    def _encode_decode(self, video, configs, grid, num_frames=4):
        codec = FrameCodec()
        decoder = FrameDecoder()
        writer = BitWriter()
        gop = GopConfig(8)
        refs = []
        enc_frames = []
        chroma_stats = []
        for i in range(num_frames):
            ftype = gop.frame_type(i)
            stats, chroma, recon = codec.encode_frame(
                video[i], grid, configs, ftype,
                reference_frames=refs, frame_index=i, writer=writer,
            )
            enc_frames.append(recon)
            chroma_stats.append(chroma)
            refs = [recon] + refs[:1]
        reader = BitReader(writer.flush())
        refs = []
        dec_frames = []
        for i in range(num_frames):
            frame = decoder.decode_frame(
                reader, grid, configs, reference_frames=refs,
                with_chroma=True, frame_index=i,
            )
            dec_frames.append(frame)
            refs = [frame] + refs[:1]
        return enc_frames, dec_frames, chroma_stats

    def test_roundtrip_bit_exact(self, chroma_video):
        grid = uniform_tiling(96, 80, 2, 1, align=16)
        configs = [EncoderConfig(qp=30, search_window=8)] * 2
        enc, dec, _ = self._encode_decode(chroma_video, configs, grid)
        for e, d in zip(enc, dec):
            np.testing.assert_array_equal(e.luma, d.luma)
            np.testing.assert_array_equal(e.chroma_u, d.chroma_u)
            np.testing.assert_array_equal(e.chroma_v, d.chroma_v)

    def test_chroma_quality_reasonable(self, chroma_video):
        grid = uniform_tiling(96, 80, 1, 1)
        configs = [EncoderConfig(qp=27, search_window=8)]
        enc, _, stats = self._encode_decode(chroma_video, configs, grid)
        for i, frame in enumerate(enc):
            q = psnr(chroma_video[i].chroma_u, frame.chroma_u)
            assert q > 32, f"frame {i} chroma U at {q:.1f} dB"

    def test_chroma_bits_are_minor_share(self, chroma_video):
        """Smooth medical chroma costs far less than luma (real-encoder
        behaviour; chroma is subsampled and flat)."""
        grid = uniform_tiling(96, 80, 1, 1)
        configs = [EncoderConfig(qp=30, search_window=8)]
        codec = FrameCodec()
        stats, chroma, _ = codec.encode_frame(
            chroma_video[0], grid, configs, FrameType.I,
        )
        assert chroma is not None
        assert chroma.bits < stats.bits

    def test_luma_only_frame_skips_chroma(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 1, 1)
        configs = [EncoderConfig(qp=30)]
        codec = FrameCodec()
        stats, chroma, recon = codec.encode_frame(
            small_video[0], grid, configs, FrameType.I,
        )
        assert chroma is None
        assert recon.chroma_u is None

    def test_chroma_stats_psnr(self, chroma_video):
        grid = uniform_tiling(96, 80, 1, 1)
        configs = [EncoderConfig(qp=27, search_window=8)]
        codec = FrameCodec()
        _, chroma, recon = codec.encode_frame(
            chroma_video[0], grid, configs, FrameType.I,
        )
        measured = psnr(chroma_video[0].chroma_u, recon.chroma_u)
        assert chroma.psnr_u == pytest.approx(measured, abs=0.01)

    def test_with_half_pel_luma(self, chroma_video):
        """Chroma derives MVs correctly from half-pel luma vectors."""
        grid = uniform_tiling(96, 80, 1, 1)
        configs = [EncoderConfig(qp=30, search_window=8, half_pel=True)]
        enc, dec, _ = self._encode_decode(chroma_video, configs, grid)
        for e, d in zip(enc, dec):
            np.testing.assert_array_equal(e.chroma_u, d.chroma_u)
            np.testing.assert_array_equal(e.chroma_v, d.chroma_v)
