"""Tests for inter prediction: motion compensation and MV coding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.inter import (
    clamp_mv,
    motion_compensate,
    mvd_bit_length,
    read_mvd,
    write_mvd,
)


class TestMotionCompensate:
    def test_zero_mv_is_colocated(self, textured_plane):
        block = motion_compensate(textured_plane, 8, 16, (0, 0), 8, 8)
        np.testing.assert_array_equal(block, textured_plane[16:24, 8:16])

    def test_displacement(self, textured_plane):
        block = motion_compensate(textured_plane, 8, 16, (3, -5), 8, 8)
        np.testing.assert_array_equal(block, textured_plane[11:19, 11:19])

    def test_out_of_bounds_raises(self, textured_plane):
        with pytest.raises(ValueError):
            motion_compensate(textured_plane, 0, 0, (-1, 0), 8, 8)
        with pytest.raises(ValueError):
            motion_compensate(textured_plane, 56, 56, (9, 0), 8, 8)

    def test_planted_motion_recovered(self, rng):
        """Compensating with the true shift reproduces the block."""
        ref = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        shifted = np.roll(ref, shift=(4, 7), axis=(0, 1))
        block = shifted[32:40, 32:40]
        comp = motion_compensate(ref, 32, 32, (-7, -4), 8, 8)
        np.testing.assert_array_equal(comp, block)


class TestClampMv:
    def test_identity_when_inside(self):
        assert clamp_mv((2, -3), 10, 10, 8, 8, 64, 64) == (2, -3)

    def test_clamps_each_axis(self):
        assert clamp_mv((-20, 100), 10, 10, 8, 8, 64, 64) == (-10, 46)

    @given(st.integers(-200, 200), st.integers(-200, 200))
    @settings(max_examples=50, deadline=None)
    def test_clamped_vector_is_always_feasible(self, dx, dy):
        mv = clamp_mv((dx, dy), 16, 24, 8, 8, 64, 64)
        rx, ry = 16 + mv[0], 24 + mv[1]
        assert 0 <= rx <= 64 - 8
        assert 0 <= ry <= 64 - 8


class TestMvdCoding:
    @pytest.mark.parametrize("mv,pred", [
        ((0, 0), (0, 0)), ((5, -3), (0, 0)), ((5, -3), (5, -3)),
        ((-64, 64), (3, -2)),
    ])
    def test_roundtrip(self, mv, pred):
        w = BitWriter()
        write_mvd(w, mv, pred)
        assert w.bits_written == mvd_bit_length(mv, pred)
        r = BitReader(w.flush())
        assert read_mvd(r, pred) == mv

    def test_zero_difference_is_cheapest(self):
        base = mvd_bit_length((4, 4), (4, 4))
        assert base == 2  # two ue(0) codes
        assert mvd_bit_length((5, 4), (4, 4)) > base

    @given(st.tuples(st.integers(-64, 64), st.integers(-64, 64)),
           st.tuples(st.integers(-64, 64), st.integers(-64, 64)))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, mv, pred):
        w = BitWriter()
        write_mvd(w, mv, pred)
        r = BitReader(w.flush())
        assert read_mvd(r, pred) == mv
