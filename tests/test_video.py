"""Tests for frames, videos, metrics, generator, and I/O."""

import numpy as np
import pytest

from repro.video.frame import Frame, Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
    generate_video,
)
from repro.video import io as video_io
from repro.video.metrics import (
    LOSSLESS_PSNR_DB,
    average_psnr,
    bd_rate_proxy,
    bitrate_mbps,
    mse,
    psnr,
    psnr_from_mse,
)


class TestFrame:
    def test_construction_coerces_dtype(self):
        f = Frame(np.ones((4, 6)) * 300.7)
        assert f.luma.dtype == np.uint8
        assert f.luma.max() == 255

    def test_dimensions(self):
        f = Frame(np.zeros((48, 64), dtype=np.uint8))
        assert (f.width, f.height) == (64, 48)
        assert f.num_pixels == 64 * 48

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((2, 3, 4)))

    def test_crop(self):
        f = Frame(np.arange(24, dtype=np.uint8).reshape(4, 6))
        region = f.crop(1, 2, 3, 2)
        assert region.shape == (2, 3)
        with pytest.raises(ValueError):
            f.crop(4, 0, 3, 3)

    def test_blank(self):
        f = Frame.blank(8, 4, value=7)
        assert f.luma.shape == (4, 8)
        assert (f.luma == 7).all()

    def test_copy_is_independent(self):
        f = Frame.blank(4, 4)
        g = f.copy()
        g.luma[0, 0] = 9
        assert f.luma[0, 0] == 0


class TestVideo:
    def test_reindexes_frames(self):
        v = Video(frames=[Frame.blank(4, 4), Frame.blank(4, 4)], fps=24)
        assert [f.index for f in v] == [0, 1]

    def test_append_assigns_index(self):
        v = Video(frames=[Frame.blank(4, 4)], fps=24)
        v.append(Frame.blank(4, 4))
        assert v[1].index == 1

    def test_duration(self):
        v = Video(frames=[Frame.blank(4, 4)] * 0 or [Frame.blank(4, 4)], fps=2)
        assert v.duration_seconds == pytest.approx(0.5)

    def test_empty_video_properties_raise(self):
        v = Video(frames=[], fps=24)
        with pytest.raises(ValueError):
            _ = v.width

    def test_invalid_fps(self):
        with pytest.raises(ValueError):
            Video(frames=[], fps=0)

    def test_from_arrays(self):
        v = Video.from_arrays([np.zeros((4, 4), np.uint8)] * 3, fps=30)
        assert len(v) == 3 and v.fps == 30


class TestMetrics:
    def test_mse_zero_for_identical(self, textured_plane):
        assert mse(textured_plane, textured_plane) == 0.0

    def test_psnr_lossless_cap(self, textured_plane):
        assert psnr(textured_plane, textured_plane) == LOSSLESS_PSNR_DB

    def test_known_psnr(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_psnr_from_mse_consistency(self, textured_plane, rng):
        noisy = np.clip(
            textured_plane + rng.normal(0, 5, textured_plane.shape), 0, 255
        )
        assert psnr(textured_plane, noisy) == pytest.approx(
            psnr_from_mse(mse(textured_plane, noisy))
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_average_psnr(self):
        assert average_psnr([30.0, 40.0]) == pytest.approx(35.0)
        with pytest.raises(ValueError):
            average_psnr([])

    def test_bitrate(self):
        # 24 frames at 24 fps = 1 second; 1e6 bits -> 1 Mbps.
        assert bitrate_mbps(10**6, 24, 24.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            bitrate_mbps(1, 0, 24)

    def test_bd_rate_proxy(self):
        assert bd_rate_proxy([110], [100]) == pytest.approx(10.0)
        assert bd_rate_proxy([90], [100]) == pytest.approx(-10.0)
        with pytest.raises(ValueError):
            bd_rate_proxy([1], [0])


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_video(width=64, height=48, num_frames=3, seed=5)
        b = generate_video(width=64, height=48, num_frames=3, seed=5)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.luma, fb.luma)

    def test_different_seeds_differ(self):
        a = generate_video(width=64, height=48, num_frames=1, seed=1)
        b = generate_video(width=64, height=48, num_frames=1, seed=2)
        assert (a[0].luma != b[0].luma).any()

    def test_requested_shape(self):
        v = generate_video(width=80, height=64, num_frames=5)
        assert (v.width, v.height, len(v)) == (80, 64, 5)

    @pytest.mark.parametrize("content", list(ContentClass))
    def test_all_content_classes_render(self, content):
        v = generate_video(width=64, height=48, num_frames=2,
                           content_class=content)
        assert v[0].luma.std() > 0  # non-degenerate content

    @pytest.mark.parametrize("motion", list(MotionPreset))
    def test_all_motion_presets_render(self, motion):
        v = generate_video(width=64, height=48, num_frames=3, motion=motion)
        assert len(v) == 3

    def test_motion_actually_moves_content(self):
        v = generate_video(width=96, height=96, num_frames=5,
                           motion=MotionPreset.PAN_RIGHT, motion_magnitude=4.0,
                           noise_sigma=0.0)
        diff = np.abs(
            v[4].luma.astype(int) - v[0].luma.astype(int)
        ).mean()
        assert diff > 1.0

    def test_still_video_is_static_without_noise(self):
        v = generate_video(width=64, height=64, num_frames=3,
                           motion=MotionPreset.STILL, noise_sigma=0.0)
        np.testing.assert_array_equal(v[0].luma, v[2].luma)

    def test_center_brighter_than_border(self):
        """The anatomy concentrates in the centre (paper Fig. 1)."""
        v = generate_video(width=128, height=96, num_frames=1,
                           content_class=ContentClass.BRAIN)
        luma = v[0].luma.astype(float)
        center = luma[32:64, 48:80].mean()
        border = np.concatenate([luma[:8].ravel(), luma[-8:].ravel()]).mean()
        assert center > border + 30

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(width=0)
        with pytest.raises(ValueError):
            GeneratorConfig(noise_sigma=-1)
        with pytest.raises(ValueError):
            GeneratorConfig(num_frames=-1)


class TestVideoIO:
    def test_npz_roundtrip(self, tmp_path, small_video):
        path = tmp_path / "vid.npz"
        video_io.save_npz(small_video, path)
        loaded = video_io.load_npz(path)
        assert len(loaded) == len(small_video)
        assert loaded.fps == small_video.fps
        assert loaded.name == small_video.name
        for a, b in zip(loaded, small_video):
            np.testing.assert_array_equal(a.luma, b.luma)

    def test_yuv_roundtrip(self, tmp_path, small_video):
        path = tmp_path / "vid.yuv"
        video_io.save_yuv400(small_video, path)
        loaded = video_io.load_yuv400(
            path, small_video.width, small_video.height, fps=24.0
        )
        assert len(loaded) == len(small_video)
        for a, b in zip(loaded, small_video):
            np.testing.assert_array_equal(a.luma, b.luma)

    def test_truncated_yuv_raises(self, tmp_path):
        path = tmp_path / "bad.yuv"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            video_io.load_yuv400(path, 16, 16)

    def test_empty_video_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            video_io.save_npz(Video(frames=[], fps=24), tmp_path / "x.npz")
        with pytest.raises(ValueError):
            video_io.save_yuv400(Video(frames=[], fps=24), tmp_path / "x.yuv")
