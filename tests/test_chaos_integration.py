"""Loopback chaos drills for the session-recovery stack.

Real server, real sockets, the seeded chaos proxy in between.  Each
test exercises one leg of the fault-tolerance story: a mid-GOP
connection cut healed by RESUME (bit-identical to the uninterrupted
run), a graceful drain whose parked session survives a full server
restart, a SIGTERM'd ``serve-net`` subprocess exiting 0, the encode
watchdog unsticking a wedged session, and rate-based chaos keeping the
deadline-miss metrics bounded.  Marked slow.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.codec.config import EncoderConfig, GopConfig
from repro.observability import get_registry, scoped
from repro.resilience.degradation import ResilienceConfig
from repro.serving.chaos import ChaosConfig, ChaosProxy
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.protocol import (
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    Resume,
    ResumeAck,
    Stats,
    encode_message,
    read_message,
    write_message,
)
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, generate_video

pytestmark = pytest.mark.slow

_W = _H = 64
_FRAMES = 16
_GOP = 4


def _offline_reference(video, content: ContentClass):
    """The uninterrupted offline run with the server's session config."""
    config = PipelineConfig(
        fps=24.0, gop=GopConfig(_GOP),
        base_config=EncoderConfig(qp=32, search="hexagon",
                                  search_window=64),
        content_class=content, resilience=ResilienceConfig(),
    )
    with StreamTranscoder(config) as t:
        session = t.open_session()
        outputs = []
        for frame in video.frames:
            outputs.extend(session.push(frame))
        outputs.extend(session.finish())
    return outputs


def _hello(video, content: ContentClass) -> Hello:
    return Hello(width=_W, height=_H, fps=24.0,
                 num_frames=len(video.frames), gop=_GOP,
                 content_class=content.value, client_id="chaos-test")


def _frame_msg(frame) -> FrameMsg:
    return FrameMsg(frame_index=frame.index, width=_W, height=_H,
                    luma=frame.luma.tobytes())


async def _collect_until_bye(reader, received):
    """Read ENCODED/STATS until BYE; first outcome per index wins."""
    stats = None
    while True:
        msg = await read_message(reader)
        if isinstance(msg, Encoded):
            received.setdefault(msg.frame_index, msg)
        elif isinstance(msg, Stats):
            stats = msg.data
        elif isinstance(msg, Bye):
            return msg.reason, stats
        elif isinstance(msg, ErrorMsg):
            raise AssertionError(f"server error: {msg.detail}")


async def _close(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


def _assert_bit_identical(received, reference):
    assert sorted(received) == [r.frame_index for r in reference]
    for ref in reference:
        msg = received[ref.frame_index]
        assert msg.dropped is None, (
            f"frame {ref.frame_index} dropped: {msg.dropped}"
        )
        assert msg.frame_type == ref.frame_type.value
        assert msg.bits == ref.record.bits
        assert msg.luma == ref.reconstruction.tobytes()


class TestResumeAfterCut:
    def test_mid_gop_cut_resumed_bit_identical(self, tmp_path):
        content = ContentClass.BRAIN
        video = generate_video(content, width=_W, height=_H,
                               num_frames=_FRAMES, seed=21)
        hello = _hello(video, content)
        # Sever the first connection mid-GOP: after HELLO plus six and
        # a half frames (the second GOP is in flight, unjournaled).
        frame_len = len(encode_message(_frame_msg(video.frames[0])))
        cut_after = len(encode_message(hello)) + int(frame_len * 6.5)

        async def run():
            server = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path)))
            await server.start()
            received = {}
            try:
                async with ChaosProxy(
                    "127.0.0.1", server.port,
                    ChaosConfig(seed=3, cut_after_c2s_bytes=cut_after,
                                cut_connections=1),
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port)
                    token = ""
                    try:
                        await write_message(writer, hello)
                        ack = await read_message(reader)
                        assert isinstance(ack, HelloAck)
                        assert ack.decision == "accept"
                        assert ack.resume_token
                        token = ack.resume_token
                        for frame in video.frames:
                            await write_message(writer, _frame_msg(frame))
                        await write_message(writer, Bye("done"))
                        await _collect_until_bye(reader, received)
                        raise AssertionError("the cut never happened")
                    except (ConnectionError, asyncio.IncompleteReadError,
                            OSError):
                        pass
                    finally:
                        await _close(writer)
                    assert proxy.count("cut") == 1
                    # Give the server a beat to reap the dead session.
                    await asyncio.sleep(0.1)

                    # Reconnect through the same proxy (only the first
                    # connection is subject to the cut) and RESUME.
                    have_below = 0
                    while have_below in received:
                        have_below += 1
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port)
                    try:
                        await write_message(writer, Resume(
                            resume_token=token, have_below=have_below,
                            client_id="chaos-test"))
                        ack = await read_message(reader)
                        assert isinstance(ack, ResumeAck)
                        assert ack.decision == "accept", ack.reason
                        for frame in video.frames[ack.next_frame_index:]:
                            await write_message(writer, _frame_msg(frame))
                        await write_message(writer, Bye("done"))
                        reason, stats = await _collect_until_bye(
                            reader, received)
                        assert reason == "session complete"
                        assert stats["recovery"]["resumes"] == 1
                    finally:
                        await _close(writer)
            finally:
                await server.drain()
            return received

        with scoped():
            received = asyncio.run(run())
            resumes = get_registry().value("repro_serving_resumes_total")
        assert resumes == 1
        with scoped():
            reference = _offline_reference(video, content)
        _assert_bit_identical(received, reference)


class TestResumePreemption:
    def test_resume_preempts_half_open_session(self, tmp_path):
        """A RESUME while the old handler is still attached (half-open
        TCP: the client timed out, the server never noticed) preempts
        the old session instead of letting two writers interleave
        records in one journal."""
        content = ContentClass.BRAIN
        video = generate_video(content, width=_W, height=_H,
                               num_frames=_FRAMES, seed=24)
        hello = _hello(video, content)

        async def run():
            server = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path)))
            await server.start()
            received = {}
            try:
                r1, w1 = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                try:
                    await write_message(w1, hello)
                    ack = await read_message(r1)
                    assert isinstance(ack, HelloAck)
                    assert ack.decision == "accept"
                    token = ack.resume_token
                    # Stream six frames so the first GOP becomes
                    # durable, then go silent: the server-side handler
                    # stays alive, blocked on the half-open socket.
                    for frame in video.frames[:6]:
                        await write_message(w1, _frame_msg(frame))
                    while len(received) < _GOP:
                        msg = await read_message(r1)
                        if isinstance(msg, Encoded):
                            received.setdefault(msg.frame_index, msg)

                    # The client gives up on the stalled connection and
                    # RESUMEs on a fresh one while the old handler is
                    # still attached to the journal.
                    have_below = 0
                    while have_below in received:
                        have_below += 1
                    r2, w2 = await asyncio.open_connection(
                        "127.0.0.1", server.port)
                    try:
                        await write_message(w2, Resume(
                            resume_token=token, have_below=have_below,
                            client_id="chaos-test"))
                        ack2 = await read_message(r2)
                        assert isinstance(ack2, ResumeAck)
                        assert ack2.decision == "accept", ack2.reason
                        assert ack2.next_frame_index == _GOP
                        # The preempted handler tore its connection down.
                        with pytest.raises((asyncio.IncompleteReadError,
                                            ConnectionError, OSError)):
                            while True:
                                await read_message(r1)
                        for frame in video.frames[ack2.next_frame_index:]:
                            await write_message(w2, _frame_msg(frame))
                        await write_message(w2, Bye("done"))
                        reason, stats = await _collect_until_bye(
                            r2, received)
                        assert reason == "session complete"
                        assert stats["recovery"]["resumes"] == 1
                    finally:
                        await _close(w2)
                finally:
                    await _close(w1)
            finally:
                await server.drain()
            return received

        with scoped():
            received = asyncio.run(run())
            registry = get_registry()
            preempted = registry.value(
                "repro_serving_resume_preemptions_total")
            resumes = registry.value("repro_serving_resumes_total")
        assert preempted == 1 and resumes == 1
        with scoped():
            reference = _offline_reference(video, content)
        _assert_bit_identical(received, reference)


class TestDrainAndRestart:
    def test_parked_session_survives_server_restart(self, tmp_path):
        content = ContentClass.BONE
        video = generate_video(content, width=_W, height=_H,
                               num_frames=_FRAMES, seed=22)
        hello = _hello(video, content)

        async def run():
            received = {}
            server_a = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path), drain_grace_s=5.0))
            await server_a.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server_a.port)
            try:
                await write_message(writer, hello)
                ack = await read_message(reader)
                assert isinstance(ack, HelloAck) and ack.decision == "accept"
                token = ack.resume_token
                # Six frames: one full GOP journaled, two in flight.
                for frame in video.frames[:6]:
                    await write_message(writer, _frame_msg(frame))
                # Wait for the first GOP's outcomes so the drain
                # provably interrupts a mid-GOP session.
                while len(received) < _GOP:
                    msg = await read_message(reader)
                    if isinstance(msg, Encoded):
                        received.setdefault(msg.frame_index, msg)
                drain = asyncio.ensure_future(server_a.drain())
                reason, _ = await _collect_until_bye(reader, received)
                await drain
                assert reason.startswith("server draining")
            finally:
                await _close(writer)
            assert server_a.parked_tokens == [token]

            server_b = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path)))
            await server_b.start()
            try:
                have_below = 0
                while have_below in received:
                    have_below += 1
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server_b.port)
                try:
                    await write_message(writer, Resume(
                        resume_token=token, have_below=have_below))
                    ack = await read_message(reader)
                    assert isinstance(ack, ResumeAck)
                    assert ack.decision == "accept", ack.reason
                    # The parked frames (4, 5) are re-fed server-side;
                    # transmission restarts at the server's next index.
                    assert ack.next_frame_index == 6
                    for frame in video.frames[ack.next_frame_index:]:
                        await write_message(writer, _frame_msg(frame))
                    await write_message(writer, Bye("done"))
                    reason, stats = await _collect_until_bye(
                        reader, received)
                    assert reason == "session complete"
                    assert stats["recovery"]["resumes"] == 1
                    assert stats["recovery"]["parked"] is False
                finally:
                    await _close(writer)
            finally:
                await server_b.drain()
            return received

        with scoped():
            received = asyncio.run(run())
        with scoped():
            reference = _offline_reference(video, content)
        _assert_bit_identical(received, reference)


class TestSigtermDrain:
    def test_subprocess_sigterm_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "src"
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-net", "--port", "0",
             "--journal-dir", str(tmp_path), "--drain-grace", "5"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        try:
            banner = proc.stdout.readline()
            port = int(re.search(r":(\d+) ", banner).group(1))
            report = asyncio.run(run_loadgen_async(LoadGenConfig(
                port=port, sessions=2, frames=8, gop=4, seed=9,
            )))
            assert report.errored == 0 and report.protocol_errors == 0
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out
        # The drain checkpointed the warm LUT next to the journals.
        assert (tmp_path / "lut.json").exists()


class TestEncodeWatchdog:
    def test_wedged_encode_cancelled_session_continues(
            self, tmp_path, monkeypatch):
        import repro.transcode.pipeline as pipeline_mod

        content = ContentClass.LUNG
        video = generate_video(content, width=_W, height=_H,
                               num_frames=_FRAMES, seed=23)
        hello = _hello(video, content)

        orig_push = pipeline_mod.ProposedStreamSession.push
        wedged = {"fired": False}

        def wedge_push(self, frame):
            # Wedge exactly one flush: the push completing the second
            # GOP stalls far past the watchdog budget.
            if frame.index == 7 and not wedged["fired"]:
                wedged["fired"] = True
                time.sleep(2.0)
            return orig_push(self, frame)

        monkeypatch.setattr(
            pipeline_mod.ProposedStreamSession, "push", wedge_push)

        async def run():
            server = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path),
                watchdog_multiple=2.0, watchdog_min_s=0.3))
            await server.start()
            received = {}
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                try:
                    await write_message(writer, hello)
                    ack = await read_message(reader)
                    assert isinstance(ack, HelloAck)
                    assert ack.decision == "accept"
                    for frame in video.frames:
                        await write_message(writer, _frame_msg(frame))
                    await write_message(writer, Bye("done"))
                    reason, stats = await _collect_until_bye(
                        reader, received)
                finally:
                    await _close(writer)
            finally:
                await server.drain()
            return received, reason, stats

        with scoped():
            received, reason, stats = asyncio.run(run())
            registry = get_registry()
            fires = registry.value("repro_serving_watchdog_fires_total")
            dropped = registry.value("repro_serving_frames_dropped_total",
                                     reason="watchdog")

        assert wedged["fired"]
        assert reason == "session complete"
        # The wedged frame was cancelled within the deadline multiple
        # and surfaced as a watchdog drop; every other frame delivered.
        assert fires == 1 and dropped == 1
        assert stats["recovery"]["watchdog_fires"] == 1
        assert stats["frames_dropped"]["watchdog"] == 1
        assert sorted(received) == list(range(_FRAMES))
        assert received[7].dropped == "watchdog"
        others = [i for i in range(_FRAMES) if i != 7]
        assert all(received[i].dropped is None for i in others)


class TestChaosBoundedDegradation:
    def test_rate_faults_keep_miss_metrics_bounded(self, tmp_path):
        sessions, frames = 3, 12

        async def run():
            server = NetworkServer(ServeNetConfig(
                port=0, journal_dir=str(tmp_path)))
            await server.start()
            try:
                async with ChaosProxy(
                    "127.0.0.1", server.port,
                    ChaosConfig(seed=13, latency_spike_rate=0.05,
                                latency_spike_s=0.02, stall_rate=0.02,
                                stall_s=0.1),
                ) as proxy:
                    report = await run_loadgen_async(LoadGenConfig(
                        port=proxy.port, sessions=sessions, frames=frames,
                        width=_W, height=_H, gop=_GOP, seed=13,
                        max_reconnects=3, backoff_base_s=0.02,
                    ))
                    return report, dict(proxy.counts)
            finally:
                await server.drain()

        with scoped():
            report, counts = asyncio.run(run())

        assert report.protocol_errors == 0
        assert report.errored == 0
        delivered = report.frames_encoded + sum(
            s.frames_dropped for s in report.sessions)
        assert delivered == sessions * frames
        # Latency injection may cost deadlines but must stay bounded:
        # the ladder degrades, it does not collapse the service.
        encoded = report.frames_encoded
        assert encoded > 0
        assert report.deadline_misses <= encoded * 0.5
        # The drill actually injected something (seeded, so stable).
        assert sum(counts.values()) > 0
