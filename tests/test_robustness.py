"""Robustness and failure-injection tests: malformed bitstreams,
degenerate inputs, and hostile parameter combinations."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameEncoder, VideoEncoder
from repro.tiling.tile import TileGrid
from repro.tiling.uniform import uniform_tiling
from repro.video.frame import Frame, Video


class TestMalformedBitstreams:
    def _valid_stream(self, small_video, grid, configs):
        writer = BitWriter()
        FrameEncoder().encode(
            small_video[0].luma, grid, configs, FrameType.I, writer=writer
        )
        return bytearray(writer.flush())

    def test_truncated_stream_raises(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30)]
        data = self._valid_stream(small_video, grid, configs)
        with pytest.raises((EOFError, ValueError)):
            FrameDecoder().decode(
                BitReader(bytes(data[: len(data) // 4])), grid, configs
            )

    def test_invalid_frame_type_code_raises(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30)]
        writer = BitWriter()
        writer.write_bits(3, 2)  # reserved frame-type code
        with pytest.raises(ValueError, match="frame-type"):
            FrameDecoder().decode(BitReader(writer.flush()), grid, configs)

    def test_garbage_bytes_fail_loudly(self, small_video, rng):
        """Random bytes must raise, never return a silently broken
        frame of the wrong geometry."""
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30)]
        failures = 0
        for seed in range(10):
            data = np.random.default_rng(seed).integers(
                0, 256, size=200
            ).astype(np.uint8).tobytes()
            try:
                out = FrameDecoder().decode(BitReader(data), grid, configs)
                assert out.shape == small_video[0].luma.shape
            except (ValueError, EOFError):
                failures += 1
        assert failures > 0  # at least some random streams are invalid


class TestDegenerateInputs:
    def test_single_block_frame(self):
        frame = np.random.default_rng(0).integers(
            0, 255, size=(16, 16)
        ).astype(np.uint8)
        grid = TileGrid.single(16, 16)
        stats, recon = FrameEncoder().encode(
            frame, grid, [EncoderConfig(qp=32)], FrameType.I
        )
        assert recon.shape == frame.shape
        assert stats.bits > 0

    def test_minimum_transform_frame(self):
        """An 8x8 frame: one sub-block-sized coding block."""
        frame = np.full((8, 8), 200, dtype=np.uint8)
        grid = TileGrid.single(8, 8)
        stats, recon = FrameEncoder().encode(
            frame, grid, [EncoderConfig(qp=22)], FrameType.I
        )
        assert abs(int(recon.mean()) - 200) < 10

    def test_extreme_black_and_white_frames(self):
        for value in (0, 255):
            frame = np.full((32, 32), value, dtype=np.uint8)
            grid = TileGrid.single(32, 32)
            stats, recon = FrameEncoder().encode(
                frame, grid, [EncoderConfig(qp=37)], FrameType.I
            )
            assert abs(int(recon.astype(int).mean()) - value) <= 6

    def test_single_frame_video(self):
        video = Video(frames=[Frame.blank(32, 32, 128)], fps=24)
        stats = VideoEncoder(EncoderConfig(qp=32)).encode(video)
        assert len(stats.frames) == 1
        assert stats.frames[0].frame_type is FrameType.I

    def test_high_motion_exceeding_window(self, rng):
        """Motion larger than the search window: encoder degrades to
        intra/poor prediction but stays correct."""
        base = rng.integers(0, 255, size=(64, 64)).astype(np.uint8)
        moved = np.roll(base, 30, axis=1)
        grid = TileGrid.single(64, 64)
        configs = [EncoderConfig(qp=32, search_window=4)]
        enc = FrameEncoder()
        _, recon0 = enc.encode(base, grid, configs, FrameType.I)
        stats, recon1 = enc.encode(
            moved, grid, configs, FrameType.P, reference=recon0
        )
        assert stats.psnr > 20  # encoded, even if inefficiently

    def test_checkerboard_worst_case_texture(self):
        """Nyquist-frequency texture: the hardest content for the DCT;
        rate explodes but reconstruction stays faithful at low QP."""
        frame = np.indices((32, 32)).sum(axis=0) % 2 * 255
        frame = frame.astype(np.uint8)
        grid = TileGrid.single(32, 32)
        stats, recon = FrameEncoder().encode(
            frame, grid, [EncoderConfig(qp=22)], FrameType.I
        )
        assert stats.psnr > 30


class TestHostileConfigurations:
    def test_zero_window_search_still_encodes(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=32, search_window=0)]
        enc = FrameEncoder()
        _, recon = enc.encode(small_video[0].luma, grid, configs, FrameType.I)
        stats, _ = enc.encode(
            small_video[1].luma, grid, configs, FrameType.P, reference=recon
        )
        assert stats.psnr > 25

    def test_many_tiny_tiles(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 4, 4,
                              align=8)
        configs = [EncoderConfig(qp=32, search_window=4)] * 16
        stats, _ = FrameEncoder().encode(
            small_video[0].luma, grid, configs, FrameType.I
        )
        assert len(stats.tiles) == 16

    def test_qp_extremes(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        for qp in (0, 51):
            stats, _ = FrameEncoder().encode(
                small_video[0].luma, grid, [EncoderConfig(qp=qp)], FrameType.I
            )
            assert stats.bits > 0
