"""Tests for intra prediction."""

import numpy as np
import pytest

from repro.codec.intra import (
    DEFAULT_SAMPLE,
    IntraMode,
    choose_mode,
    predict,
    reference_samples,
)
from repro.tiling.tile import Tile


class TestPredict:
    def test_dc_mode_averages_references(self):
        top = np.full(4, 100.0)
        left = np.full(4, 50.0)
        pred = predict(IntraMode.DC, top, left, 4, 4)
        assert pred.shape == (4, 4)
        np.testing.assert_allclose(pred, 75.0)

    def test_dc_without_references_uses_default(self):
        pred = predict(IntraMode.DC, None, None, 4, 4)
        np.testing.assert_allclose(pred, DEFAULT_SAMPLE)

    def test_vertical_copies_top_row(self):
        top = np.array([1.0, 2.0, 3.0, 4.0])
        pred = predict(IntraMode.VERTICAL, top, None, 4, 4)
        for row in pred:
            np.testing.assert_array_equal(row, top)

    def test_horizontal_copies_left_column(self):
        left = np.array([9.0, 8.0, 7.0, 6.0])
        pred = predict(IntraMode.HORIZONTAL, None, left, 4, 4)
        for col in pred.T:
            np.testing.assert_array_equal(col, left)

    def test_planar_interpolates_smoothly(self):
        top = np.full(8, 200.0)
        left = np.full(8, 0.0)
        pred = predict(IntraMode.PLANAR, top, left, 8, 8)
        # Values must lie between the two reference levels and increase
        # from the left edge (0) toward the top-right (200).
        assert pred.min() >= 0.0 and pred.max() <= 200.0
        assert pred[4, 0] < pred[4, 7]

    def test_rectangular_block_shapes(self):
        pred = predict(IntraMode.DC, np.full(16, 10.0), np.full(8, 30.0), 16, 8)
        assert pred.shape == (8, 16)


class TestChooseMode:
    def test_prefers_vertical_for_column_pattern(self):
        top = np.array([0.0, 255.0] * 4)
        block = np.tile(top, (8, 1)).astype(np.uint8)
        mode, pred, sad = choose_mode(block, top, np.full(8, 128.0))
        assert mode is IntraMode.VERTICAL
        assert sad == pytest.approx(0.0)

    def test_prefers_horizontal_for_row_pattern(self):
        left = np.arange(0, 240, 30, dtype=np.float64)
        block = np.tile(left.reshape(-1, 1), (1, 8)).astype(np.uint8)
        mode, _, sad = choose_mode(block, np.full(8, 128.0), left)
        assert mode is IntraMode.HORIZONTAL
        assert sad == pytest.approx(0.0)

    def test_flat_block_perfectly_predicted_by_dc(self):
        block = np.full((8, 8), 77, dtype=np.uint8)
        mode, _, sad = choose_mode(block, np.full(8, 77.0), np.full(8, 77.0))
        assert sad == pytest.approx(0.0)

    def test_returns_minimum_sad_mode(self, textured_plane):
        block = textured_plane[:8, :8]
        top = textured_plane[8, :8].astype(np.float64)
        left = textured_plane[:8, 8].astype(np.float64)
        mode, pred, sad = choose_mode(block, top, left)
        for m in IntraMode:
            other = predict(m, top, left, 8, 8)
            other_sad = np.abs(block.astype(np.float64) - other).sum()
            assert sad <= other_sad + 1e-9


class TestReferenceSamples:
    def test_tile_boundary_blocks_availability(self):
        recon = np.arange(32 * 32, dtype=np.uint8).reshape(32, 32)
        tile = Tile(16, 16, 16, 16)
        top, left = reference_samples(recon, 16, 16, 8, 8, tile)
        # Block at the tile origin: neighbours are outside the tile.
        assert top is None and left is None

    def test_interior_block_has_both_references(self):
        recon = np.random.default_rng(0).integers(
            0, 255, size=(32, 32)
        ).astype(np.uint8)
        tile = Tile(0, 0, 32, 32)
        top, left = reference_samples(recon, 8, 8, 8, 8, tile)
        np.testing.assert_array_equal(top, recon[7, 8:16])
        np.testing.assert_array_equal(left, recon[8:16, 7])

    def test_top_row_of_tile_has_only_left(self):
        recon = np.zeros((32, 32), dtype=np.uint8)
        tile = Tile(0, 0, 32, 32)
        top, left = reference_samples(recon, 8, 0, 8, 8, tile)
        assert top is None
        assert left is not None
