"""Tests for the motion search algorithm library.

Each algorithm is exercised on planted-translation problems where the
true displacement is known, plus cost-ordering and budget properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motion import (
    CrossSearch,
    DiamondSearch,
    FullSearch,
    HexagonOrientation,
    HexagonSearch,
    OneAtATimeSearch,
    SEARCH_REGISTRY,
    ThreeStepSearch,
    TZSearch,
    get_search,
)
from repro.motion.base import SearchContext


def planted_context(true_dx, true_dy, window=16, seed=0, block=16, sigma=4.0):
    """Reference with textured content; the current block is the
    reference shifted by (true_dx, true_dy): searching must find
    mv = (true_dx, true_dy) s.t. ref[pos + mv] == block.

    ``sigma`` controls spatial correlation: video-like content is
    smooth at the scale of a search step, so pattern searches can walk
    downhill.
    """
    from scipy import ndimage
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((96, 96))
    smooth = ndimage.gaussian_filter(base, sigma)
    smooth = smooth / np.abs(smooth).max()
    ref = np.clip(128 + 100 * smooth, 0, 255).astype(np.uint8)
    x, y = 40, 40
    blk = ref[y + true_dy : y + true_dy + block, x + true_dx : x + true_dx + block]
    return SearchContext(ref, blk, x, y, window, lambda_mv=0.0)


def unimodal_context(true_dx, true_dy, window=16, block=16):
    """Perfectly unimodal matching landscape: long-period sinusoidal
    texture whose period exceeds twice the search range, so the SAD
    surface has a single basin — every convergent search must find the
    exact optimum here."""
    yy, xx = np.mgrid[0:96, 0:96]
    ref = np.clip(
        128
        + 60 * np.sin(2 * np.pi * xx / 80.0)
        + 60 * np.sin(2 * np.pi * yy / 80.0),
        0, 255,
    ).astype(np.uint8)
    x, y = 40, 40
    blk = ref[y + true_dy : y + true_dy + block, x + true_dx : x + true_dx + block]
    return SearchContext(ref, blk, x, y, window, lambda_mv=0.0)


ALL_ALGORITHMS = [
    FullSearch(),
    TZSearch(),
    ThreeStepSearch(),
    DiamondSearch(),
    CrossSearch(),
    OneAtATimeSearch(),
    HexagonSearch(HexagonOrientation.HORIZONTAL),
    HexagonSearch(HexagonOrientation.VERTICAL),
    HexagonSearch(HexagonOrientation.ROTATING),
]


class TestFindsPlantedMotion:
    @pytest.mark.parametrize("alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__)
    def test_zero_motion(self, alg):
        ctx = planted_context(0, 0)
        result = alg.search(ctx)
        assert result.mv == (0, 0)
        assert result.cost == 0.0

    @pytest.mark.parametrize("alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__)
    def test_small_motion(self, alg):
        ctx = planted_context(2, -1)
        result = alg.search(ctx)
        assert result.cost == 0.0
        assert result.mv == (2, -1)

    @pytest.mark.parametrize(
        "alg",
        [a for a in ALL_ALGORITHMS if not isinstance(a, OneAtATimeSearch)],
        ids=lambda a: type(a).__name__,
    )
    def test_moderate_motion_unimodal(self, alg):
        """On a single-basin landscape every 2-D search lands within one
        sample of the optimum (the final small-cross refinement cannot
        reach a diagonal neighbour, a known pattern-search property);
        one-at-a-time is axis-sequential and covered separately."""
        ctx = unimodal_context(7, 5)
        zero_cost = ctx.evaluate((0, 0))
        result = alg.search(ctx)
        assert abs(result.mv[0] - 7) <= 1
        assert abs(result.mv[1] - 5) <= 1
        assert result.cost < 0.1 * zero_cost

    @pytest.mark.parametrize("alg,name", [
        (FullSearch(), "full"), (TZSearch(), "tz"),
        (ThreeStepSearch(), "three_step"), (CrossSearch(), "cross"),
    ])
    def test_moderate_motion_textured(self, alg, name):
        ctx = planted_context(7, 5)
        result = alg.search(ctx)
        assert result.cost == 0.0, f"{name} missed the optimum"
        assert result.mv == (7, 5)

    @pytest.mark.parametrize("alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__)
    def test_good_predictor_rescues_large_motion(self, alg):
        """With the true MV offered as the start predictor, every
        algorithm must lock onto it (the proposed policy's direction
        inheritance relies on this)."""
        ctx = planted_context(11, -9, window=16)
        result = alg.search(ctx, start=(11, -9))
        assert result.mv == (11, -9)
        assert result.cost == 0.0


class TestCostBudgets:
    def test_full_search_evaluates_whole_window(self):
        ctx = planted_context(0, 0, window=4)
        FullSearch().search(ctx)
        assert ctx.sad_evaluations == 9 * 9

    def test_pattern_searches_are_cheaper_than_full(self):
        for alg in (DiamondSearch(), CrossSearch(), HexagonSearch(),
                    ThreeStepSearch(), OneAtATimeSearch()):
            ctx_full = planted_context(3, 2, window=8)
            FullSearch().search(ctx_full)
            ctx_alg = planted_context(3, 2, window=8)
            alg.search(ctx_alg)
            assert ctx_alg.sad_evaluations < ctx_full.sad_evaluations

    def test_full_search_is_cost_lower_bound(self):
        """No algorithm can beat exhaustive search's matching cost."""
        for seed in range(5):
            ctx_full = planted_context(5, 3, window=8, seed=seed)
            best = FullSearch().search(ctx_full)
            for alg in ALL_ALGORITHMS[1:]:
                ctx = planted_context(5, 3, window=8, seed=seed)
                result = alg.search(ctx)
                assert result.cost >= best.cost - 1e-9

    def test_tz_cheap_with_good_predictor(self):
        """TZ with a perfect predictor terminates early (the behaviour
        behind Table I's low speedup at coarse tilings)."""
        ctx_cold = planted_context(9, 0, window=32)
        TZSearch().search(ctx_cold, start=(0, 0))
        ctx_warm = planted_context(9, 0, window=32)
        TZSearch().search(ctx_warm, start=(9, 0))
        assert ctx_warm.sad_evaluations < ctx_cold.sad_evaluations

    def test_result_reports_context_totals(self):
        ctx = planted_context(1, 1)
        result = HexagonSearch().search(ctx)
        assert result.sad_evaluations == ctx.sad_evaluations
        assert result.pixel_ops == ctx.pixel_ops


class TestDirectionality:
    def test_matched_hexagon_orientation_finds_better_match(self):
        """The paper picks the hexagon orientation by the learned
        motion axis because the matched orientation tracks that axis
        better (§III-C2)."""
        ctx_h = unimodal_context(10, 0)
        cost_h = HexagonSearch(HexagonOrientation.HORIZONTAL).search(ctx_h).cost
        ctx_v = unimodal_context(10, 0)
        cost_v = HexagonSearch(HexagonOrientation.VERTICAL).search(ctx_v).cost
        assert cost_h <= cost_v
        ctx_h = unimodal_context(0, 10)
        cost_h = HexagonSearch(HexagonOrientation.HORIZONTAL).search(ctx_h).cost
        ctx_v = unimodal_context(0, 10)
        cost_v = HexagonSearch(HexagonOrientation.VERTICAL).search(ctx_v).cost
        assert cost_v <= cost_h

    def test_one_at_a_time_axis_order(self):
        """Primary-axis walking finds pure-axis motion exactly."""
        ctx = planted_context(6, 0, window=8)
        result = OneAtATimeSearch(primary_axis="x").search(ctx)
        assert result.mv == (6, 0)
        ctx = planted_context(0, 6, window=8)
        result = OneAtATimeSearch(primary_axis="y").search(ctx)
        assert result.mv == (0, 6)

    def test_one_at_a_time_invalid_axis(self):
        with pytest.raises(ValueError):
            OneAtATimeSearch(primary_axis="z")


class TestRegistry:
    def test_all_registered_names_instantiate(self):
        for name in SEARCH_REGISTRY:
            alg = get_search(name)
            ctx = planted_context(1, 0, window=4)
            result = alg.search(ctx)
            assert ctx.is_feasible(result.mv)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown search"):
            get_search("quantum")

    def test_tz_validation(self):
        with pytest.raises(ValueError):
            TZSearch(raster_step=0)


class TestWindowRespect:
    @pytest.mark.parametrize("alg", ALL_ALGORITHMS, ids=lambda a: type(a).__name__)
    def test_result_within_window(self, alg):
        ctx = planted_context(3, 3, window=2)  # optimum outside window
        result = alg.search(ctx)
        assert abs(result.mv[0]) <= 2 and abs(result.mv[1]) <= 2

    @given(st.integers(-6, 6), st.integers(-6, 6), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_hexagon_always_feasible_property(self, dx, dy, window):
        ctx = planted_context(dx % 3, dy % 3, window=window)
        result = HexagonSearch(HexagonOrientation.ROTATING).search(ctx)
        assert ctx.is_feasible(result.mv)
