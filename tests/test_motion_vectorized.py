"""Property tests: the batched candidate path of :class:`SearchContext`
is observationally identical to scalar probing, and the native SAD
kernels are bit-exact with the NumPy fallback.

These are the equivalence guarantees the search algorithms rely on
when they submit per-step candidate batches through
``evaluate_many``/``evaluate_batch`` instead of scalar ``evaluate``
calls.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import native
from repro.motion import FullSearch, HexagonSearch, TZSearch
from repro.motion.base import INFEASIBLE, SearchContext


def _make_plane(rng: np.random.Generator, h: int, w: int) -> np.ndarray:
    return rng.integers(0, 256, size=(h, w), dtype=np.uint8)


def _context(seed: int, window: int, bh: int = 8, bw: int = 8):
    rng = np.random.default_rng(seed)
    ref = _make_plane(rng, 48, 64)
    cur = _make_plane(rng, 48, 64)
    by = int(rng.integers(0, 48 - bh + 1))
    bx = int(rng.integers(0, 64 - bw + 1))
    block = cur[by : by + bh, bx : bx + bw]
    return SearchContext(ref, block, bx, by, window, lambda_mv=4.0)


candidate_lists = st.lists(
    st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(0, 16), mvs=candidate_lists)
def test_evaluate_many_matches_scalar_probing(seed, window, mvs):
    """Same costs, same best MV, same op counts, same cache."""
    scalar_ctx = _context(seed, window)
    batch_ctx = _context(seed, window)

    best_mv, best_cost = None, INFEASIBLE
    scalar_costs = []
    for mv in mvs:
        cost = scalar_ctx.evaluate(mv)
        scalar_costs.append(cost)
        if cost < best_cost:
            best_mv, best_cost = (int(mv[0]), int(mv[1])), cost
    if best_mv is None:
        best_mv = (0, 0)
        best_cost = scalar_ctx.evaluate(best_mv)

    got_mv, got_cost = batch_ctx.evaluate_many(mvs)
    batch_costs = batch_ctx.evaluate_batch(mvs)

    assert got_mv == best_mv
    assert got_cost == best_cost
    assert batch_costs == scalar_costs
    assert batch_ctx.sad_evaluations == scalar_ctx.sad_evaluations
    assert batch_ctx.pixel_ops == scalar_ctx.pixel_ops
    assert batch_ctx._cache == scalar_ctx._cache


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(0, 16), mvs=candidate_lists)
def test_batch_deduplicates_but_costs_match(seed, window, mvs):
    """Duplicated candidates cost nothing extra and return cached values."""
    ctx = _context(seed, window)
    first = ctx.evaluate_batch(mvs)
    evals = ctx.sad_evaluations
    second = ctx.evaluate_batch(mvs + mvs)
    assert second == first + first
    assert ctx.sad_evaluations == evals  # everything was cached


@pytest.mark.skipif(not native.available(), reason="native kernels unavailable")
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(0, 16), mvs=candidate_lists)
def test_native_matches_numpy_fallback(seed, window, mvs):
    """The C cost kernel is bit-identical to the NumPy strided path."""
    native_ctx = _context(seed, window)
    assert native_ctx._use_native
    saved, native.lib = native.lib, None
    try:
        numpy_ctx = _context(seed, window)
    finally:
        native.lib = saved
    assert not numpy_ctx._use_native

    assert native_ctx.evaluate_batch(mvs) == numpy_ctx.evaluate_batch(mvs)
    for mv in mvs:
        assert native_ctx.evaluate(mv) == numpy_ctx.evaluate(mv)
    assert native_ctx._cache == numpy_ctx._cache


@pytest.mark.skipif(not native.available(), reason="native kernels unavailable")
@pytest.mark.parametrize("alg", [FullSearch(), HexagonSearch(), TZSearch()],
                         ids=["full", "hexagon", "tz"])
def test_search_algorithms_identical_without_native(alg, monkeypatch):
    """Full algorithm runs agree between native and fallback paths."""
    for seed in range(5):
        native_ctx = _context(seed, window=12, bh=16, bw=16)
        monkeypatch.setattr(native, "lib", None)
        numpy_ctx = _context(seed, window=12, bh=16, bw=16)
        monkeypatch.undo()
        a = alg.search(native_ctx, start=(1, -2))
        b = alg.search(numpy_ctx, start=(1, -2))
        assert (a.mv, a.cost) == (b.mv, b.cost)
        assert a.sad_evaluations == b.sad_evaluations
        assert a.pixel_ops == b.pixel_ops
