"""Smoke + shape tests for the Table I/II and Fig. 3/4 harnesses.

These use miniature inputs so the whole file runs in well under a
minute; the benchmarks/ directory runs the same harnesses at
paper-comparable sizes.
"""

import numpy as np
import pytest

from repro.experiments.common import medical_corpus
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import Fig4Result, format_fig4, run_fig4
from repro.experiments.table1 import Table1Result, format_table1, run_table1
from repro.experiments.table2 import (
    Table2Result,
    Table2Side,
    format_table2,
    run_table2,
)
from repro.platform.mpsoc import MpsocConfig

SMALL = dict(width=160, height=128, num_frames=8)


class TestCorpus:
    def test_ten_distinct_videos(self):
        videos = medical_corpus(width=64, height=48, num_frames=2)
        assert len(videos) == 10
        names = {v.name for v in videos}
        assert len(names) == 10

    def test_corpus_spans_content_classes(self):
        videos = medical_corpus(width=64, height=48, num_frames=2)
        classes = {v.name.split("_")[0] for v in videos}
        assert classes == {"brain", "bone", "lung", "cardiac", "ultrasound"}


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self) -> Table1Result:
        return run_table1(tilings=[(1, 1), (2, 2)], seed=0, **SMALL)

    def test_row_structure(self, result):
        assert len(result.proposed) == 2
        assert len(result.hexagon) == 2
        assert result.proposed[0].tiling == (1, 1)

    def test_speedups_positive_and_meaningful(self, result):
        """Both fast searches beat TZ (the paper's headline)."""
        for row in result.proposed + result.hexagon:
            assert row.speedup > 1.0

    def test_quality_losses_small(self, result):
        """PSNR loss vs TZ stays fractions of a dB (paper: <= 0.32)."""
        for row in result.proposed + result.hexagon:
            assert row.psnr_loss_db < 1.0
            assert abs(row.compression_loss_pct) < 15.0

    def test_format_contains_all_tilings(self, result):
        text = format_table1(result)
        assert "1x1" in text and "2x2" in text
        assert "speedup" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(seed=0, **SMALL)

    def test_proposed_has_more_tiles_with_diverse_times(self, result):
        """The Fig. 3 qualitative claim: content-aware tiling yields
        more tiles with diverse CPU times vs [19]'s equal tiles."""
        assert len(result.proposed.tiles) > len(result.baseline.tiles)
        times = result.proposed.tile_cpu_times
        assert max(times) > 1.5 * min(times)

    def test_proposed_frame_cheaper(self, result):
        assert result.proposed.frame_cpu_time < result.baseline.frame_cpu_time

    def test_baseline_cores_all_fmax(self, result):
        assert result.baseline.cores_at_fmax_whole_slot == result.baseline.cores_used

    def test_proposed_fewer_fmax_cores(self, result):
        assert (result.proposed.cores_at_fmax_whole_slot
                <= result.baseline.cores_at_fmax_whole_slot)

    def test_format(self, result):
        text = format_fig3(result)
        assert "tile structure" in text
        assert "cores used" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        platform = MpsocConfig(num_sockets=1, cores_per_socket=8)
        return run_table2(num_videos=2, platform=platform, seed=0, **SMALL)

    def test_proposed_serves_more_users(self, result):
        assert result.proposed.users_avg >= result.baseline.users_avg
        assert result.user_ratio >= 1.0

    def test_stat_ordering(self, result):
        for side in (result.proposed, result.baseline):
            assert side.psnr_min <= side.psnr_avg <= side.psnr_max + 1e-9
            assert side.users_min <= side.users_max

    def test_comparable_quality(self, result):
        assert abs(result.proposed.psnr_avg - result.baseline.psnr_avg) < 3.0

    def test_format(self, result):
        text = format_table2(result)
        assert "TABLE II" in text
        assert "throughput factor" in text

    def test_format_faults_only_run(self):
        """A side that admitted zero users (e.g. a faults-only run on a
        dead platform) has ``None`` averaged quality stats and an
        undefined throughput ratio; formatting must render ``n/a``
        instead of raising."""
        empty = Table2Side(
            name="Work [19]", psnr_max=40.0, psnr_min=38.0, psnr_avg=None,
            bitrate_max=2.4, bitrate_min=2.1, bitrate_avg=None,
            users_max=0, users_min=0, users_avg=0.0,
        )
        served = Table2Side(
            name="Proposed", psnr_max=41.0, psnr_min=39.0, psnr_avg=40.0,
            bitrate_max=2.5, bitrate_min=2.2, bitrate_avg=2.3,
            users_max=4, users_min=2, users_avg=3.0,
        )
        result = Table2Result(proposed=served, baseline=empty)
        assert result.user_ratio is None
        text = format_table2(result)
        assert "n/a" in text
        assert "baseline served zero users" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self) -> Fig4Result:
        platform = MpsocConfig(num_sockets=2, cores_per_socket=8)
        return run_fig4(num_videos=1, user_counts=(1, 2, 4),
                        platform=platform, seed=0, **SMALL)

    def test_savings_positive(self, result):
        for n, s in result.savings_percent.items():
            assert s > 0, f"no savings at {n} users"

    def test_savings_grow_with_load(self, result):
        assert result.savings_percent[4] > result.savings_percent[1]

    def test_summary_statistics(self, result):
        assert result.peak_savings >= result.average_savings

    def test_format(self, result):
        text = format_fig4(result)
        assert "power savings" in text
        assert "average savings" in text
