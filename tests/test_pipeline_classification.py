"""Tests for automatic content-class resolution in the pipeline."""

import pytest

from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.workload.keys import WorkloadKey


@pytest.fixture(scope="module")
def bone_video():
    return BioMedicalVideoGenerator(GeneratorConfig(
        width=160, height=128, num_frames=8, seed=6,
        content_class=ContentClass.BONE, motion=MotionPreset.PAN_DOWN,
    )).generate()


class TestAutoClassification:
    def test_lut_keys_carry_a_content_class(self, bone_video):
        transcoder = StreamTranscoder(PipelineConfig())
        transcoder.run(bone_video)
        classes = {
            key.content_class
            for key in transcoder.estimator.lut.tables
            if key.content_class is not None
        }
        assert len(classes) == 1  # one video -> one resolved class

    def test_explicit_class_respected(self, bone_video):
        config = PipelineConfig(content_class=ContentClass.LUNG)
        transcoder = StreamTranscoder(config)
        transcoder.run(bone_video)
        classes = {
            key.content_class
            for key in transcoder.estimator.lut.tables
            if key.content_class is not None
        }
        assert classes == {ContentClass.LUNG}

    def test_lut_shared_between_same_class_videos(self, bone_video):
        """Two videos of the same class feed the same LUT keys (the
        paper's cross-video LUT reuse)."""
        transcoder = StreamTranscoder(
            PipelineConfig(content_class=ContentClass.BONE)
        )
        transcoder.run(bone_video)
        keys_first = set(transcoder.estimator.lut.tables)
        other = BioMedicalVideoGenerator(GeneratorConfig(
            width=160, height=128, num_frames=8, seed=17,
            content_class=ContentClass.BONE, motion=MotionPreset.STILL,
        )).generate()
        transcoder2 = StreamTranscoder(
            PipelineConfig(content_class=ContentClass.BONE),
            estimator=transcoder.estimator,  # shared server-side LUT
        )
        transcoder2.run(other)
        keys_both = set(transcoder2.estimator.lut.tables)
        shared = {
            k for k in keys_first & keys_both
            if k.content_class is ContentClass.BONE
        }
        assert shared  # same-class keys were reused, not duplicated
