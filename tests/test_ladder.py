"""Rendition-ladder property and differential tests.

Four guarantees, each checked differentially (against an independent
implementation of the same contract) rather than against goldens:

* the native box-downscale kernel is **bit-identical** to the NumPy
  oracle for every geometry and seed hypothesis throws at it;
* a ladder session's per-rung output is **bit-identical** to N
  independent single-rung sessions with the same pinned content class
  (what makes the shared analysis pass a pure saving);
* segments are GOP-aligned and self-describing: every manifest
  reference resolves, every segment opens on an I frame, and a client
  can switch rungs at any segment boundary and keep decoding;
* ladder admission prices the *whole* ladder (sum of per-rung
  estimates) and degrades bottom-up — rungs are dropped before the
  session is parked or shed, and the primary is never dropped.
"""

import dataclasses
import json
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.allocation.demand import UserDemand, cores_needed
from repro.codec.config import FrameType, GopConfig
from repro.ladder.config import (
    LadderConfig,
    LadderRung,
    RUNG_MULTIPLE,
    default_rungs_for,
)
from repro.ladder.planner import LadderPlanner, complexity_score
from repro.ladder.segments import LadderSegmentReader, LadderSegmentWriter
from repro.ladder.session import LadderSession
from repro.platform.schedule import ThreadTask
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serving.protocol import (
    Encoded,
    Hello,
    HelloAck,
    MessageDecoder,
    ProtocolError,
    encode_message,
)
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.frame import Frame
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.video.scale import (
    box_edges,
    downscale_box_reference,
    downscale_frame,
    downscale_plane,
)
from repro.workload.keys import WorkloadKey, area_bucket


# ----------------------------------------------------------------------
# Downscaler: native kernel vs NumPy oracle
# ----------------------------------------------------------------------

#: Geometry + content strategy shared by the differential tests.  Odd
#: extents and non-integer ratios are the interesting cases (ragged
#: boxes), so the sizes are *not* restricted to multiples of anything.
_geometry = st.tuples(
    st.integers(1, 48), st.integers(1, 48),  # input h, w
    st.floats(0.05, 1.0), st.floats(0.05, 1.0),  # output fraction
    st.integers(0, 2**32 - 1),  # content seed
)


def _case(params):
    h, w, fh, fw, seed = params
    out_h = max(1, int(h * fh))
    out_w = max(1, int(w * fw))
    rng = np.random.default_rng(seed)
    plane = rng.integers(0, 256, size=(h, w), dtype=np.uint8)
    return plane, out_h, out_w


class TestDownscalerDifferential:
    @pytest.mark.skipif(native.lib is None, reason="native kernels not built")
    @given(params=_geometry)
    @settings(max_examples=150, deadline=None)
    def test_native_bit_identical_to_oracle(self, params):
        plane, out_h, out_w = _case(params)
        got = native.downscale_box(plane, out_h, out_w)
        assert got is not None
        want = downscale_box_reference(plane, out_h, out_w)
        assert got.dtype == np.uint8
        assert np.array_equal(got, want)

    @given(params=_geometry)
    @settings(max_examples=60, deadline=None)
    def test_dispatch_matches_oracle(self, params):
        # Whatever path downscale_plane takes (native or fallback), the
        # bytes are the oracle's.
        plane, out_h, out_w = _case(params)
        got = downscale_plane(plane, out_h, out_w)
        assert np.array_equal(got, downscale_box_reference(plane, out_h, out_w))

    @given(params=_geometry, dtype=st.sampled_from([np.int16, np.int32, np.int64]))
    @settings(max_examples=40, deadline=None)
    def test_oracle_dtype_independent(self, params, dtype):
        # The oracle sums in int64, so any integer dtype holding the
        # same sample values downscales to the same uint8 plane.
        plane, out_h, out_w = _case(params)
        want = downscale_box_reference(plane, out_h, out_w)
        assert np.array_equal(
            downscale_box_reference(plane.astype(dtype), out_h, out_w), want
        )

    @given(params=_geometry)
    @settings(max_examples=40, deadline=None)
    def test_output_bounded_by_input_range(self, params):
        # A box mean can never leave the sample range (floor division
        # can only pull toward the minimum).
        plane, out_h, out_w = _case(params)
        out = downscale_box_reference(plane, out_h, out_w)
        assert out.shape == (out_h, out_w)
        assert out.min() >= plane.min()
        assert out.max() <= plane.max()

    @given(value=st.integers(0, 255), params=_geometry)
    @settings(max_examples=40, deadline=None)
    def test_constant_plane_stays_constant(self, value, params):
        plane, out_h, out_w = _case(params)
        flat = np.full_like(plane, value)
        assert np.all(downscale_plane(flat, out_h, out_w) == value)

    @given(n_in=st.integers(1, 2000), n_out=st.integers(1, 2000))
    @settings(max_examples=100, deadline=None)
    def test_box_edges_partition_the_input(self, n_in, n_out):
        if n_out > n_in:
            with pytest.raises(ValueError, match="never upscales"):
                box_edges(n_in, n_out)
            return
        edges = box_edges(n_in, n_out)
        assert edges[0] == 0 and edges[-1] == n_in
        assert len(edges) == n_out + 1
        # Strictly increasing = every box holds at least one sample.
        assert np.all(np.diff(edges) >= 1)

    def test_odd_geometry_exact_values(self):
        # Hand-checked ragged case: 5x3 -> 2x2.  Row boxes are
        # [0,2),[2,5); column boxes [0,1),[1,3).
        plane = np.arange(15, dtype=np.uint8).reshape(5, 3)
        out = downscale_plane(plane, 2, 2)
        assert out.tolist() == [
            [(0 + 3) // 2, (1 + 2 + 4 + 5) // 4],
            [(6 + 9 + 12) // 3, (7 + 8 + 10 + 11 + 13 + 14) // 6],
        ]

    def test_never_upscales(self):
        plane = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(ValueError, match="never upscales"):
            downscale_plane(plane, 16, 8)
        with pytest.raises(ValueError, match="never upscales"):
            downscale_plane(plane, 8, 9)
        with pytest.raises(ValueError):
            downscale_plane(plane, 0, 8)

    def test_frame_downscale_carries_chroma_and_index(self):
        rng = np.random.default_rng(5)
        frame = Frame(
            luma=rng.integers(0, 256, (32, 48), dtype=np.uint8),
            index=7,
            chroma_u=rng.integers(0, 256, (16, 24), dtype=np.uint8),
            chroma_v=rng.integers(0, 256, (16, 24), dtype=np.uint8),
        )
        small = downscale_frame(frame, 24, 16)
        assert small.index == 7
        assert small.luma.shape == (16, 24)
        assert small.chroma_u is not None and small.chroma_u.shape == (8, 12)
        same = downscale_frame(frame, 48, 32)
        assert np.array_equal(same.luma, frame.luma)
        assert same.luma is not frame.luma  # copy, never an alias


# ----------------------------------------------------------------------
# Ladder vs independent single-rung sessions: bit identity
# ----------------------------------------------------------------------

_W, _H = 96, 64
_GOP = 4
_FRAMES = 8
_RUNGS = (LadderRung(96, 64), LadderRung(72, 48), LadderRung(48, 32))


@pytest.fixture(scope="module")
def ladder_video():
    return BioMedicalVideoGenerator(GeneratorConfig(
        width=_W, height=_H, num_frames=_FRAMES, seed=21,
        content_class=ContentClass.CARDIAC, motion=MotionPreset.PAN_RIGHT,
    )).generate()


def _outputs_digest(outputs):
    """Per-frame encode trace + reconstruction bytes, for exact
    comparison across sessions."""
    digest = []
    for out in sorted(outputs, key=lambda o: o.frame_index):
        bits = out.record.bits if out.record else 0
        recon = b"" if out.reconstruction is None else out.reconstruction.tobytes()
        ftype = "" if out.frame_type is None else out.frame_type.value
        digest.append((out.frame_index, ftype, out.dropped, bits,
                       zlib.crc32(recon)))
    return digest


def _run_ladder(video, prune=False):
    base = PipelineConfig(fps=video.fps, gop=GopConfig(_GOP))
    by_rung = {}
    with LadderSession(
        base_config=base,
        ladder=LadderConfig(rungs=_RUNGS, prune=prune),
    ) as session:
        for frame in video.frames:
            for out in session.push(frame):
                by_rung.setdefault(out.rung, []).append(out)
        for out in session.finish():
            by_rung.setdefault(out.rung, []).append(out)
        pinned = {
            rs.rung_id: rs.transcoder.config.content_class
            for rs in session.rung_sessions
        }
        plan = session.plan
    return by_rung, pinned, plan


class TestLadderBitIdentity:
    def test_rungs_match_independent_sessions(self, ladder_video):
        by_rung, pinned, plan = _run_ladder(ladder_video)
        assert sorted(by_rung) == [0, 1, 2]
        for planned in plan.rungs:
            rid, rung = planned.rung_id, planned.rung
            assert len(by_rung[rid]) == _FRAMES
            # The independent arm: same pinned class, own session, own
            # downscale of the same ingest.
            cfg = PipelineConfig(
                fps=ladder_video.fps, gop=GopConfig(_GOP),
                content_class=pinned[rid],
            )
            with StreamTranscoder(cfg) as transcoder:
                solo = transcoder.open_session()
                outputs = []
                for frame in ladder_video.frames:
                    outputs.extend(solo.push(
                        downscale_frame(frame, rung.width, rung.height)
                    ))
                outputs.extend(solo.finish())
            assert _outputs_digest(outputs) == _outputs_digest(by_rung[rid])

    def test_one_shared_classification(self, ladder_video):
        _, pinned, _ = _run_ladder(ladder_video)
        # Every rung got the same pinned class — none classified alone.
        assert len(set(pinned.values())) == 1
        assert next(iter(pinned.values())) is not None

    def test_finish_is_idempotent_and_push_after_finish_raises(
        self, ladder_video
    ):
        session = LadderSession(
            base_config=PipelineConfig(fps=24.0, gop=GopConfig(_GOP)),
            ladder=LadderConfig(rungs=_RUNGS, prune=False),
        )
        with session:
            session.push(ladder_video.frames[0])
            session.finish()
            assert session.finish() == []
            with pytest.raises(ValueError, match="finished"):
                session.push(ladder_video.frames[1])


class TestPlanner:
    def test_flat_content_collapses_to_top_and_bottom(self):
        flat = np.full((64, 96), 128, dtype=np.uint8)
        plan = LadderPlanner(LadderConfig(rungs=_RUNGS)).plan(flat)
        assert plan.complexity == 0.0
        assert plan.rung_ids == [0, 2]
        assert plan.pruned and plan.pruned[0][0] == 1

    def test_complex_content_keeps_every_rung(self):
        rng = np.random.default_rng(3)
        noisy = rng.integers(0, 256, (64, 96), dtype=np.uint8)
        plan = LadderPlanner(LadderConfig(rungs=_RUNGS)).plan(noisy)
        assert plan.rung_ids == [0, 1, 2]
        assert plan.pruned == ()

    def test_rung_ids_stable_across_pruning(self):
        flat = np.full((64, 96), 0, dtype=np.uint8)
        plan = LadderPlanner(LadderConfig(rungs=_RUNGS)).plan(flat)
        # Surviving ids index the *configured* ladder, so id 2 still
        # names 48x32 even though id 1 is gone.
        assert plan.rungs[-1].rung == _RUNGS[2]

    def test_planner_never_upscales(self):
        flat = np.zeros((32, 48), dtype=np.uint8)
        with pytest.raises(ValueError, match="never upscale"):
            LadderPlanner(LadderConfig(rungs=_RUNGS)).plan(flat)

    def test_rung_validation(self):
        with pytest.raises(ValueError, match="positive"):
            LadderRung(0, 48)
        with pytest.raises(ValueError, match=f"multiples of {RUNG_MULTIPLE}"):
            LadderRung(100, 76)
        with pytest.raises(ValueError, match="decreasing"):
            LadderConfig(rungs=(LadderRung(48, 32), LadderRung(96, 64)))

    def test_default_rungs_are_encodable(self):
        # Floored candidates must always satisfy the encoder's
        # transform-size constraint, whatever the ingest geometry.
        for w, h in [(640, 480), (321, 243), (100, 68), (64, 48)]:
            for rung in default_rungs_for(w, h):
                assert rung.width % RUNG_MULTIPLE == 0
                assert rung.height % RUNG_MULTIPLE == 0
                assert rung.width <= w and rung.height <= h


# ----------------------------------------------------------------------
# Segments: GOP alignment, resolving references, rung switching
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def segmented(tmp_path_factory, ladder_video):
    out_dir = tmp_path_factory.mktemp("segments")
    base = PipelineConfig(fps=ladder_video.fps, gop=GopConfig(_GOP))
    with LadderSession(
        base_config=base,
        ladder=LadderConfig(rungs=_RUNGS, prune=False, segment_gops=1),
    ) as session:
        writer = None
        for frame in ladder_video.frames:
            outputs = session.push(frame)
            if writer is None:
                writer = LadderSegmentWriter(
                    out_dir, session.plan, _W, _H,
                    gop=_GOP, segment_gops=1, fps=ladder_video.fps,
                )
            for out in outputs:
                writer.add(out)
        for out in session.finish():
            writer.add(out)
        manifest = writer.finalize()
    return out_dir, manifest


class TestSegments:
    def test_boundaries_on_gop_boundaries(self, segmented):
        out_dir, _ = segmented
        reader = LadderSegmentReader(out_dir)
        for rung_id in (0, 1, 2):
            refs = reader.segment_refs(rung_id)
            assert refs, f"rung {rung_id} wrote no segments"
            assert sum(r.frames for r in refs) == _FRAMES
            for ref in refs:
                assert ref.first_frame % _GOP == 0

    def test_every_reference_resolves_and_opens_on_i(self, segmented):
        out_dir, _ = segmented
        reader = LadderSegmentReader(out_dir)
        for rung_id in (0, 1, 2):
            for i in range(len(reader.segment_refs(rung_id))):
                messages = reader.read_segment(rung_id, i)
                first = messages[0]
                # Segment boundary == GOP boundary == I frame (a
                # dropped first frame still decodes: it carries no
                # pixels to mispredict from).
                assert first.frame_type == "I" or first.dropped
                for msg in messages:
                    assert msg.rung == rung_id

    def test_mid_stream_rung_switch(self, segmented):
        out_dir, _ = segmented
        reader = LadderSegmentReader(out_dir)
        refs_a = reader.segment_refs(0)
        refs_b = reader.segment_refs(1)
        assert len(refs_a) == len(refs_b) >= 2
        # Play rung 0 up to boundary k, then rung 1 from k onward: the
        # spliced playback covers every frame index exactly once and
        # the first post-switch frame needs no earlier rung-1 state.
        k = 1
        played = [m for i in range(k) for m in reader.read_segment(0, i)]
        switched = reader.read_segment(1, k)
        assert switched[0].frame_index == refs_a[k].first_frame
        assert switched[0].frame_type == "I" or switched[0].dropped
        tail = [m for i in range(k, len(refs_b))
                for m in reader.read_segment(1, i)]
        indices = [m.frame_index for m in played + tail]
        assert indices == list(range(_FRAMES))
        # Post-switch frames decode at rung 1 geometry.
        for msg in tail:
            if not msg.dropped:
                assert (msg.width, msg.height) == (72, 48)

    def test_corruption_is_detected(self, segmented, tmp_path):
        out_dir, manifest = segmented
        ref = LadderSegmentReader(out_dir).segment_refs(0)[0]
        path = out_dir / ref.uri
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        try:
            path.write_bytes(bytes(data))
            with pytest.raises(ProtocolError, match="crc"):
                LadderSegmentReader(out_dir).read_segment(0, 0)
        finally:
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))

    def test_manifest_records_geometry_and_cadence(self, segmented):
        out_dir, manifest = segmented
        on_disk = json.loads((out_dir / "manifest.json").read_text())
        assert on_disk == manifest
        assert manifest["ingest"]["width"] == _W
        assert manifest["ingest"]["gop"] == _GOP
        assert manifest["segment_frames"] == _GOP  # segment_gops=1
        by_id = {r["id"]: r for r in manifest["rungs"]}
        assert by_id[1]["width"] == 72 and by_id[1]["height"] == 48

    def test_foreign_rung_rejected(self, segmented, ladder_video):
        out_dir, _ = segmented
        writer_dir = out_dir  # writer is finalized; only add() semantics
        base = PipelineConfig(fps=24.0, gop=GopConfig(_GOP))
        with LadderSession(
            base_config=base,
            ladder=LadderConfig(rungs=_RUNGS, prune=False),
        ) as session:
            session.push(ladder_video.frames[0])
            outputs = session.finish()  # flush the partial GOP
            writer = LadderSegmentWriter(
                writer_dir / "fresh", session.plan, _W, _H,
                gop=_GOP, segment_gops=1,
            )
            bad = outputs[0]
            bad.rung = 9
            with pytest.raises(ValueError, match="not in the plan"):
                writer.add(bad)


# ----------------------------------------------------------------------
# Ladder admission: sum-of-rungs pricing, degradation order
# ----------------------------------------------------------------------

_LADDER = ((160, 128), (120, 96), (80, 64))


def _controller():
    # capacity_cores = 32 * 0.04 = 1.28 -> integer capacity 1 core: a
    # small world where a handful of sessions exercises every branch.
    return AdmissionController(
        policy=AdmissionPolicy(utilization=0.04, park_capacity=1),
    )


def _fill(controller, singles, start=100):
    sid = start
    for w, h in singles:
        decision, reason = controller.decide(
            sid, Hello(width=w, height=h, fps=24.0)
        )
        assert decision is AdmissionDecision.ACCEPT, reason
        sid += 1
    return sid


class TestLadderAdmission:
    def test_prices_sum_of_rungs(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        cores, demand, per_rung = controller.estimate_ladder(hello, _LADDER)
        assert len(per_rung) == len(_LADDER)
        assert len(demand.threads) == len(_LADDER)
        # Whole-ladder price == sum of the per-rung prices (each rung
        # is one thread; Algorithm 2 charges per-thread core ceilings).
        expected = sum(
            cores_needed(UserDemand(user_id=0, threads=[
                ThreadTask(thread_id=0, user_id=0,
                           cpu_time_fmax=cpu, tile_index=0),
            ]), hello.fps)
            for cpu in per_rung
        )
        assert cores == pytest.approx(expected)
        # Smaller rungs are cheaper, and a prefix never costs more
        # than the full ladder.
        assert per_rung == sorted(per_rung, reverse=True)
        primary_only, _, _ = controller.estimate_ladder(hello, _LADDER[:1])
        assert primary_only < cores

    def test_resolution_tags_primary_none_subrungs_height(self):
        # The pricing keys must match what the ladder sessions record
        # under, or the LUT never converges: primary pools with
        # pre-ladder statistics (resolution=None), sub-rungs key by
        # output height.
        controller = _controller()
        seen = []
        original = controller.estimator.estimate

        def spy(key, area):
            seen.append(key)
            return original(key, area)

        controller.estimator.estimate = spy
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        controller.estimate_ladder(hello, _LADDER)
        assert [k.resolution for k in seen] == [None, 96, 64]
        assert [k.area_bucket for k in seen] == [
            area_bucket(w * h) for w, h in _LADDER
        ]

    def test_empty_capacity_accepts_full_ladder(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.ACCEPT, reason
        assert kept == _LADDER
        assert "3/3 rungs" in reason

    def test_drops_low_rungs_before_shedding(self):
        controller = _controller()
        _fill(controller, [(160, 128)] * 4 + [(80, 64)] * 2)
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.ACCEPT, reason
        # Bottom rung shed, the rest admitted — and kept is a prefix
        # of the request with the primary first.
        assert kept == _LADDER[:2]
        assert "dropped 1 low rung(s)" in reason

    def test_drops_to_primary_only_under_more_load(self):
        controller = _controller()
        _fill(controller, [(160, 128)] * 5)
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.ACCEPT, reason
        assert kept == _LADDER[:1]
        assert "1/3 rungs" in reason

    def test_parks_then_rejects_when_primary_overflows(self):
        controller = _controller()
        _fill(controller, [(160, 128)] * 6)
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.PARK
        assert kept == ()
        assert "even for the primary rung" in reason
        # Waiting room (capacity 1) is now full: the next ladder is
        # shed outright.
        decision, reason, kept = controller.decide_ladder(2, hello)
        assert decision is AdmissionDecision.REJECT
        assert kept == ()

    def test_release_restores_capacity(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0, ladder=_LADDER)
        decision, _, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.ACCEPT
        occupied = controller.occupancy_cores
        assert occupied > 0
        controller.release(1)
        assert controller.occupancy_cores == 0
        decision, _, kept = controller.decide_ladder(2, hello)
        assert decision is AdmissionDecision.ACCEPT and kept == _LADDER

    def test_rejects_upscaling_ladder(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0,
                      ladder=((320, 256), (160, 128)))
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.REJECT
        assert kept == ()
        assert "never upscale" in reason

    def test_rejects_unencodable_rung_geometry(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0,
                      ladder=((160, 128), (100, 76)))
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.REJECT
        assert kept == ()
        assert f"multiples of {RUNG_MULTIPLE}" in reason

    def test_rejects_non_decreasing_ladder(self):
        controller = _controller()
        hello = Hello(width=160, height=128, fps=24.0,
                      ladder=((80, 64), (160, 128)))
        decision, reason, kept = controller.decide_ladder(1, hello)
        assert decision is AdmissionDecision.REJECT
        assert "decreasing" in reason


# ----------------------------------------------------------------------
# LUT key: the resolution dimension is backward compatible
# ----------------------------------------------------------------------

def _legacy_key_dict():
    return {
        "texture": "MEDIUM", "motion": "HIGH", "qp": 32,
        "search_window": 64, "frame_type": "P", "area_bucket": 12,
        "content_class": None,
        # no "resolution": a checkpoint written before the ladder
    }


class TestWorkloadKeyCompat:
    def test_pre_ladder_checkpoint_loads_to_resolution_none(self):
        key = WorkloadKey.from_dict(_legacy_key_dict())
        assert key.resolution is None

    def test_round_trip_with_resolution(self):
        key = WorkloadKey.from_dict({**_legacy_key_dict(), "resolution": 360})
        assert key.resolution == 360
        assert WorkloadKey.from_dict(key.to_dict()) == key

    def test_legacy_and_tagged_keys_distinct(self):
        legacy = WorkloadKey.from_dict(_legacy_key_dict())
        tagged = dataclasses.replace(legacy, resolution=240)
        assert legacy != tagged
        assert legacy == WorkloadKey.from_dict(legacy.to_dict())

    def test_generalized_preserves_resolution(self):
        key = WorkloadKey.from_dict({
            **_legacy_key_dict(), "resolution": 240,
            "content_class": ContentClass.BRAIN.value,
        })
        general = key.generalized()
        assert general.content_class is None
        assert general.resolution == 240


# ----------------------------------------------------------------------
# Protocol: rung tagging and ladder negotiation round-trips
# ----------------------------------------------------------------------

class TestLadderProtocol:
    @given(rung=st.integers(0, 255), frame_index=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_encoded_rung_round_trips_via_flags(self, rung, frame_index):
        luma = bytes(range(12)) * 2
        msg = Encoded(frame_index=frame_index, frame_type="P",
                      width=6, height=4, bits=99, psnr=31.5,
                      luma=luma, rung=rung)
        decoded, = MessageDecoder().feed(encode_message(msg))
        assert decoded.rung == rung
        assert decoded.frame_index == frame_index
        assert bytes(decoded.luma) == luma

    def test_rung_zero_wire_identical_to_pre_ladder(self):
        # A primary-rung (or pre-ladder) ENCODED must not change a
        # single wire byte, or old decoders would see new flags.
        kwargs = dict(frame_index=4, frame_type="I", width=4, height=2,
                      bits=10, psnr=30.0, luma=bytes(8))
        assert encode_message(Encoded(**kwargs)) == \
            encode_message(Encoded(**kwargs, rung=0))

    def test_hello_ladder_round_trip(self):
        hello = Hello(width=640, height=480, fps=30.0,
                      ladder=((640, 480), (320, 240)))
        decoded, = MessageDecoder().feed(encode_message(hello))
        assert decoded.ladder == ((640, 480), (320, 240))

    def test_plain_hello_has_no_ladder_key(self):
        hello = Hello(width=640, height=480)
        assert b"ladder" not in hello.payload()
        decoded, = MessageDecoder().feed(encode_message(hello))
        assert decoded.ladder is None

    def test_hello_ack_rungs_round_trip(self):
        ack = HelloAck(decision="accept", session_id=3,
                       rungs=((0, 640, 480), (2, 320, 240)))
        decoded, = MessageDecoder().feed(encode_message(ack))
        assert decoded.rungs == ((0, 640, 480), (2, 320, 240))
        plain = HelloAck(decision="accept", session_id=3)
        assert b"rungs" not in plain.payload()
