"""Observability subsystem tests: registry/tracer units, merge
properties (hypothesis), estimator-vs-measured agreement, and the
``repro serve`` artifact schemas."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.cli import main as cli_main
from repro.codec.config import FrameType
from repro.observability import (
    DEFAULT_TIME_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    SpanTracer,
    format_metrics,
    get_registry,
    get_tracer,
    scoped,
)
from repro.observability.metrics import HistogramValue
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.workload.estimator import WorkloadEstimator
from repro.workload.keys import WorkloadKey


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates_per_label(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", result="hit")
        reg.inc("requests_total", 2.0, result="hit")
        reg.inc("requests_total", result="miss")
        assert reg.value("requests_total", result="hit") == 3.0
        assert reg.value("requests_total", result="miss") == 1.0
        assert reg.value("requests_total", result="other") is None

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests_total", -1.0)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("margin_seconds", 0.5, slot=0)
        reg.set_gauge("margin_seconds", -0.25, slot=0)
        assert reg.value("margin_seconds", slot=0) == -0.25

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.0, 1.5, 5.0):
            reg.observe("dur", v, buckets=(1.0, 2.0))
        hist = reg.value("dur")
        assert isinstance(hist, HistogramValue)
        # <=1.0 -> first bucket (inclusive upper bound), 1.5 -> second,
        # 5.0 -> implicit +Inf overflow.
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(8.0)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("x_total")
        with pytest.raises(ValueError):
            reg.set_gauge("x_total", 1.0)

    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 3, mode="proposed", help="a counter")
        reg.set_gauge("g", 1.25)
        reg.observe("h_seconds", 0.02)
        data = json.loads(reg.to_json())
        assert data["version"] == 1
        rebuilt = MetricsRegistry.from_dict(data)
        assert rebuilt.to_dict() == reg.to_dict()

    def test_snapshot_deterministic_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("one"), a.inc("two", shard="x"), a.inc("two", shard="a")
        b.inc("two", shard="a"), b.inc("two", shard="x"), b.inc("one")
        assert a.to_json() == b.to_json()

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.inc("req_total", 2, path="a b", help="requests")
        reg.observe("lat_seconds", 0.5, buckets=(1.0, 2.0))
        text = reg.to_prometheus_text()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="a b"} 2' in text
        # Cumulative buckets end at +Inf == _count.
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_format_metrics_pretty_printer(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 4, mode="khan", help="encoded")
        reg.observe("h_seconds", 0.25)
        out = format_metrics(reg.to_dict())
        assert "c_total" in out and "encoded" in out
        assert "{mode=khan}" in out
        assert "count=1" in out


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c_total", 2)
        b.inc("c_total", 3)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 7.0)
        a.merge(b)
        assert a.value("c_total") == 5.0
        assert a.value("g") == 7.0

    def test_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.observe("h", 1.5, buckets=(1.0, 2.0))
        a.merge(b.to_dict())  # dict form, as pool workers report
        hist = a.value("h")
        assert hist.count == 2
        assert hist.bucket_counts == [1, 1, 0]

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        b.set_gauge("x", 1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_bucket_mismatch_raises(self):
        a = HistogramValue(buckets=(1.0, 2.0))
        b = HistogramValue(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)


# ----------------------------------------------------------------------
# Merge algebra (hypothesis property tests)
# ----------------------------------------------------------------------
_values = st.lists(
    st.floats(min_value=0.0, max_value=20.0,
              allow_nan=False, allow_infinity=False),
    max_size=30,
)


def _hist_of(values):
    hist = HistogramValue(DEFAULT_TIME_BUCKETS)
    for v in values:
        hist.observe(v)
    return hist


class TestMergeProperties:
    @given(_values, _values)
    @settings(max_examples=50, deadline=None)
    def test_histogram_merge_commutative(self, xs, ys):
        ab, ba = _hist_of(xs), _hist_of(ys)
        ab.merge(_hist_of(ys))
        ba.merge(_hist_of(xs))
        assert ab.bucket_counts == ba.bucket_counts
        assert ab.count == ba.count
        assert ab.sum == ba.sum  # float addition is commutative

    @given(_values, _values, _values)
    @settings(max_examples=50, deadline=None)
    def test_histogram_merge_associative(self, xs, ys, zs):
        left = _hist_of(xs)
        left.merge(_hist_of(ys))
        left.merge(_hist_of(zs))
        inner = _hist_of(ys)
        inner.merge(_hist_of(zs))
        right = _hist_of(xs)
        right.merge(inner)
        assert left.bucket_counts == right.bucket_counts
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)

    @given(_values, _values)
    @settings(max_examples=50, deadline=None)
    def test_histogram_merge_preserves_count_and_sum(self, xs, ys):
        merged = _hist_of(xs)
        merged.merge(_hist_of(ys))
        assert merged.count == len(xs) + len(ys)
        assert sum(merged.bucket_counts) == merged.count
        assert merged.sum == pytest.approx(math.fsum(xs + ys))

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 100)), max_size=20),
           st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 100)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_registry_counter_merge_commutative(self, xs, ys):
        def reg_of(items):
            reg = MetricsRegistry()
            for label, v in items:
                reg.inc("work_total", v, shard=label)
            return reg

        ab = reg_of(xs)
        ab.merge(reg_of(ys))
        ba = reg_of(ys)
        ba.merge(reg_of(xs))
        # Integer-valued counters: merge order cannot matter.
        assert ab.to_dict() == ba.to_dict()


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_is_noop(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.span("x", a=1)
        assert span is NULL_SPAN  # shared singleton, no allocation
        with span:
            pass
        tracer.event("e")
        tracer.record_span("r", 0.5)
        assert len(tracer) == 0

    def test_nesting_depth_parent_and_order(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("outer", frame=1):
            with tracer.span("inner"):
                tracer.event("tick", n=2)
        records = tracer.records()
        # Spans append on exit: children complete before parents.
        assert [r.name for r in records] == ["tick", "inner", "outer"]
        by_name = {r.name: r for r in records}
        assert by_name["outer"].seq == 0 and by_name["outer"].depth == 0
        assert by_name["inner"].parent == by_name["outer"].seq
        assert by_name["inner"].depth == 1
        assert by_name["tick"].parent == by_name["inner"].seq
        assert by_name["tick"].kind == "event"
        assert by_name["tick"].attrs == {"n": 2}
        # Entry order is recoverable by seq.
        assert sorted(r.seq for r in records) == [0, 1, 2]

    def test_record_span_attaches_to_context(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("parent"):
            tracer.record_span("worker", 0.125, tile=3)
        worker = next(r for r in tracer.records() if r.name == "worker")
        assert worker.kind == "span"
        assert worker.duration_s == 0.125
        assert worker.parent == 0 and worker.depth == 1

    def test_ring_buffer_evicts_oldest(self):
        tracer = SpanTracer(capacity=4, enabled=True)
        for i in range(10):
            tracer.event("e", i=i)
        records = tracer.records()
        assert len(records) == 4
        assert [r.attrs["i"] for r in records] == [6, 7, 8, 9]

    def test_to_jsonl(self, tmp_path):
        tracer = SpanTracer(enabled=True)
        with tracer.span("a"):
            tracer.event("b")
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(str(path)) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert {l["name"] for l in lines} == {"a", "b"}
        for line in lines:
            assert {"seq", "kind", "name", "start_s", "duration_s",
                    "depth", "parent", "attrs"} <= set(line)

    def test_scoped_swaps_globals(self):
        outer_reg, outer_tracer = get_registry(), get_tracer()
        with scoped() as (reg, tracer):
            assert get_registry() is reg and reg is not outer_reg
            assert get_tracer() is tracer and tracer is not outer_tracer
        assert get_registry() is outer_reg
        assert get_tracer() is outer_tracer


# ----------------------------------------------------------------------
# Estimator vs tracer-measured tile times
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def instrumented_run():
    """One traced transcoding run with a shared estimator."""
    video = BioMedicalVideoGenerator(GeneratorConfig(
        width=96, height=80, num_frames=8, seed=5,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=2.0,
    )).generate()
    estimator = WorkloadEstimator()
    with scoped() as (registry, tracer):
        tracer.enable()
        StreamTranscoder(
            PipelineConfig(fps=24.0), estimator=estimator
        ).run(video)
        records = tracer.records()
        snapshot = registry.to_dict()
    return estimator, records, snapshot


class TestEstimatorVsMeasured:
    def test_lut_estimates_match_recorded_tile_times(self, instrumented_run):
        estimator, records, _ = instrumented_run
        events = [r for r in records if r.name == "tile.record"]
        assert events, "pipeline emitted no tile.record events"
        groups = {}
        for rec in events:
            a = rec.attrs
            key = WorkloadKey(
                texture=TextureClass[a["texture"]],
                motion=MotionClass[a["motion"]],
                qp=a["qp"],
                search_window=a["window"],
                frame_type=FrameType(a["type"]),
                area_bucket=a["area_bucket"],
                content_class=None,
            )
            groups.setdefault(key, []).append(a["cpu_time_fmax"])
        for key, measured in groups.items():
            predicted = estimator.estimate(key, area=2 ** key.area_bucket)
            mean = sum(measured) / len(measured)
            # The LUT keeps an exact running mean per key; the simulated
            # times are deterministic, so prediction tracks measurement
            # tightly (tolerance covers only float accumulation order).
            assert predicted == pytest.approx(mean, rel=1e-6), (
                f"LUT prediction {predicted} != measured mean {mean} "
                f"for {key}"
            )

    def test_lookup_counters(self, instrumented_run):
        estimator, records, _ = instrumented_run
        with scoped() as (registry, _tracer):
            keys = {
                WorkloadKey(
                    texture=TextureClass[r.attrs["texture"]],
                    motion=MotionClass[r.attrs["motion"]],
                    qp=r.attrs["qp"],
                    search_window=r.attrs["window"],
                    frame_type=FrameType(r.attrs["type"]),
                    area_bucket=r.attrs["area_bucket"],
                )
                for r in records if r.name == "tile.record"
            }
            for key in keys:
                estimator.estimate(key, area=2 ** key.area_bucket)
            assert registry.value(
                "repro_lut_lookups_total", result="hit"
            ) == len(keys)
            assert registry.value(
                "repro_lut_lookups_total", result="miss"
            ) is None

    def test_update_counter_matches_tiles(self, instrumented_run):
        _, records, snapshot = instrumented_run
        tiles = sum(1 for r in records if r.name == "tile.record")
        updates = next(
            m for m in snapshot["metrics"]
            if m["name"] == "repro_lut_updates_total"
        )
        assert updates["samples"][0]["value"] == tiles


# ----------------------------------------------------------------------
# `repro serve` artifact schemas
# ----------------------------------------------------------------------
REQUIRED_SPAN_NAMES = {
    "stage.tiling", "stage.analysis", "stage.encode", "stage.motion",
    "stage.entropy", "pipeline.frame", "tile.record",
    "allocator.allocate", "allocator.decision", "server.serve",
}


class TestServeArtifacts:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serve")
        metrics_path = out / "metrics.json"
        trace_path = out / "trace.jsonl"
        with scoped():
            rc = cli_main([
                "serve", "--videos", "1", "--frames", "6", "--users", "4",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ])
        assert rc == 0
        metrics = json.loads(metrics_path.read_text())
        trace = [json.loads(l) for l in trace_path.read_text().splitlines()]
        return metrics, trace

    def test_metrics_schema(self, artifacts):
        metrics, _ = artifacts
        assert metrics["version"] == 1
        assert metrics["metrics"], "empty metrics snapshot"
        for fam in metrics["metrics"]:
            assert fam["kind"] in ("counter", "gauge", "histogram")
            assert fam["name"].startswith("repro_")
            assert fam["samples"]
            for sample in fam["samples"]:
                assert isinstance(sample["labels"], dict)
                if fam["kind"] == "histogram":
                    hist = sample["value"]
                    assert sum(hist["bucket_counts"]) == hist["count"]
                else:
                    assert isinstance(sample["value"], (int, float))

    def test_metrics_cover_serving_stack(self, artifacts):
        metrics, _ = artifacts
        names = {fam["name"] for fam in metrics["metrics"]}
        assert {
            "repro_frames_encoded_total",
            "repro_tiles_encoded_total",
            "repro_tile_cpu_seconds",
            "repro_lut_updates_total",
            "repro_allocator_runs_total",
            "repro_allocator_users_admitted_total",
            "repro_dvfs_core_level_total",
            "repro_server_users_served",
            "repro_slot_deadline_margin_seconds",
        } <= names

    def test_trace_schema_and_stage_coverage(self, artifacts):
        _, trace = artifacts
        assert trace, "empty trace"
        for line in trace:
            assert {"seq", "kind", "name", "start_s", "duration_s",
                    "depth", "parent", "attrs"} <= set(line)
            assert line["kind"] in ("span", "event")
            assert line["duration_s"] >= 0.0
        names = {line["name"] for line in trace}
        assert REQUIRED_SPAN_NAMES <= names, (
            f"missing spans: {REQUIRED_SPAN_NAMES - names}"
        )

    def test_allocator_decision_covers_slots(self, artifacts):
        metrics, trace = artifacts
        decision = next(l for l in trace if l["name"] == "allocator.decision")
        assert decision["attrs"]["admitted"] == sorted(
            decision["attrs"]["admitted"]
        )
        dvfs = next(m for m in metrics["metrics"]
                    if m["name"] == "repro_dvfs_core_level_total")
        # Every active core slot picked a DVFS level.
        assert sum(s["value"] for s in dvfs["samples"]) >= 1
        for sample in dvfs["samples"]:
            assert int(sample["labels"]["freq_mhz"]) > 0

    def test_metrics_cli_pretty_printer(self, artifacts, tmp_path, capsys):
        metrics, _ = artifacts
        path = tmp_path / "m.json"
        path.write_text(json.dumps(metrics))
        assert cli_main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_frames_encoded_total" in out
        assert cli_main(["metrics", str(path), "--prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_frames_encoded_total counter" in prom
        assert "repro_tile_cpu_seconds_bucket" in prom
