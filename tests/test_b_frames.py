"""Tests for the B-frame / bi-prediction extension."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameEncoder, VideoEncoder, normalize_references
from repro.tiling.tile import TileGrid
from repro.tiling.uniform import uniform_tiling


class TestGopWithBFrames:
    def test_frame_type_sequence(self):
        gop = GopConfig(8, use_b_frames=True)
        types = [gop.frame_type(i).value for i in range(9)]
        assert types == ["I", "P", "B", "B", "B", "B", "B", "B", "I"]

    def test_default_has_no_b_frames(self):
        gop = GopConfig(8)
        assert FrameType.B not in {gop.frame_type(i) for i in range(8)}


class TestNormalizeReferences:
    def test_single_array_becomes_list(self, textured_plane):
        refs = normalize_references(textured_plane, FrameType.P)
        assert len(refs) == 1

    def test_p_truncates_to_one(self, textured_plane):
        refs = normalize_references(
            [textured_plane, textured_plane], FrameType.P
        )
        assert len(refs) == 1

    def test_b_keeps_two(self, textured_plane):
        refs = normalize_references(
            [textured_plane, textured_plane, textured_plane], FrameType.B
        )
        assert len(refs) == 2

    def test_i_frame_drops_references(self, textured_plane):
        assert normalize_references(textured_plane, FrameType.I) == []

    def test_missing_reference_raises(self):
        with pytest.raises(ValueError):
            normalize_references(None, FrameType.B)


class TestBFrameEncoding:
    def _encode_ipb(self, video, grid, configs, writer=None):
        encoder = FrameEncoder()
        gop = GopConfig(8, use_b_frames=True)
        refs = []
        recons = []
        all_stats = []
        for frame in video.frames[:4]:
            ftype = gop.frame_type(frame.index)
            stats, recon = encoder.encode(
                frame.luma, grid, configs, ftype,
                reference=refs, frame_index=frame.index, writer=writer,
            )
            recons.append(recon)
            all_stats.append(stats)
            refs = [recon] + refs[:1]
        return all_stats, recons

    def test_b_frames_encode_and_reconstruct(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=32, search_window=8)]
        all_stats, recons = self._encode_ipb(small_video, grid, configs)
        assert all_stats[2].frame_type is FrameType.B
        # Reasonable quality on every frame.
        for stats in all_stats:
            assert stats.psnr > 30

    def test_b_frame_roundtrip(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 2, 1,
                              align=16)
        configs = [EncoderConfig(qp=30, search_window=8)] * 2
        writer = BitWriter()
        _, enc_recons = self._encode_ipb(small_video, grid, configs, writer)
        reader = BitReader(writer.flush())
        decoder = FrameDecoder()
        refs = []
        for enc_recon in enc_recons:
            dec = decoder.decode(reader, grid, configs, reference=refs)
            np.testing.assert_array_equal(enc_recon, dec)
            refs = [dec] + refs[:1]

    def test_b_frames_do_not_cost_more_bits(self, small_video):
        """Bi-prediction should on average help (or at least not hurt)
        rate at equal QP on smooth content."""
        config = EncoderConfig(qp=32, search_window=8)
        stats_p = VideoEncoder(config, GopConfig(8)).encode(small_video)
        stats_b = VideoEncoder(
            config, GopConfig(8, use_b_frames=True)
        ).encode(small_video)
        assert stats_b.total_bits <= stats_p.total_bits * 1.1

    def test_b_frames_cost_more_me_ops(self, small_video):
        """Two reference searches per block: ME cost roughly doubles on
        B frames — the complexity/efficiency trade HEVC makes."""
        config = EncoderConfig(qp=32, search_window=8)
        stats_p = VideoEncoder(config, GopConfig(8)).encode(small_video)
        stats_b = VideoEncoder(
            config, GopConfig(8, use_b_frames=True)
        ).encode(small_video)
        assert stats_b.ops.sad_pixel_ops > stats_p.ops.sad_pixel_ops

    def test_b_frame_with_single_reference_degrades_to_p_like(self, small_video):
        """A B frame offered one reference codes without list bits and
        still round-trips."""
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=32, search_window=8)]
        encoder = FrameEncoder()
        writer = BitWriter()
        _, recon0 = encoder.encode(
            small_video[0].luma, grid, configs, FrameType.I, writer=writer
        )
        stats, recon1 = encoder.encode(
            small_video[1].luma, grid, configs, FrameType.B,
            reference=[recon0], writer=writer,
        )
        reader = BitReader(writer.flush())
        decoder = FrameDecoder()
        dec0 = decoder.decode(reader, grid, configs)
        dec1 = decoder.decode(reader, grid, configs, reference=[dec0])
        np.testing.assert_array_equal(recon1, dec1)
