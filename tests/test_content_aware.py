"""Tests for the content-aware re-tiling strategy (paper §III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.texture import TextureClass
from repro.tiling.constraints import TilingConstraints
from repro.tiling.content_aware import ContentAwareRetiler
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


def medical_frame_pair(width=320, height=240, content=ContentClass.BRAIN,
                       motion=MotionPreset.PAN_RIGHT, seed=5):
    cfg = GeneratorConfig(width=width, height=height, num_frames=2,
                          content_class=content, motion=motion, seed=seed)
    v = BioMedicalVideoGenerator(cfg).generate()
    return v[0].luma, v[1].luma


class TestPartitionInvariants:
    def test_result_is_exact_partition(self):
        prev, cur = medical_frame_pair()
        result = ContentAwareRetiler().retile(cur, prev)
        # TileGrid's constructor enforces the invariant; double-check
        # through the coverage map.
        cover = result.grid.coverage_map()
        assert cover.min() >= 0

    def test_respects_max_tiles(self):
        cons = TilingConstraints(max_tiles=10)
        prev, cur = medical_frame_pair()
        result = ContentAwareRetiler(cons).retile(cur, prev)
        assert len(result.grid) <= 10

    def test_contents_match_tiles(self):
        prev, cur = medical_frame_pair()
        result = ContentAwareRetiler().retile(cur, prev)
        assert len(result.contents) == len(result.grid)
        for content, tile in zip(result.contents, result.grid):
            assert content.tile == tile

    @given(st.integers(0, 6), st.sampled_from(list(ContentClass)))
    @settings(max_examples=12, deadline=None)
    def test_partition_property_across_content(self, seed, content):
        prev, cur = medical_frame_pair(content=content, seed=seed)
        result = ContentAwareRetiler().retile(cur, prev)
        total = sum(t.area for t in result.grid)
        assert total == cur.size
        assert 1 <= len(result.grid) <= TilingConstraints().max_tiles


class TestMedicalStructure:
    def test_borders_become_low_texture_tiles(self):
        """Centred anatomy: the frame's dark borders form LOW tiles."""
        prev, cur = medical_frame_pair(width=640, height=480, seed=3)
        result = ContentAwareRetiler().retile(cur, prev)
        low = [c for c in result.contents if c.texture is TextureClass.LOW]
        assert len(low) >= 4

    def test_center_partitioned_into_minimum_tiles(self):
        """The busy centre gets at least min_center_tiles tiles."""
        prev, cur = medical_frame_pair(width=640, height=480,
                                       content=ContentClass.BONE, seed=3)
        cons = TilingConstraints()
        result = ContentAwareRetiler(cons).retile(cur, prev)
        cx, cy = 320, 240
        center_tiles = [
            t for t in result.grid
            if t.x < cx < t.x_end or t.y < cy < t.y_end
            or (t.x >= 160 and t.x_end <= 480)
        ]
        assert len(result.grid) >= cons.min_center_tiles

    def test_tile_count_exceeds_uniform_cost_diversity(self):
        """Content-aware tiles have diverse areas (vs uniform tiling) —
        the diversity the paper's Fig. 3 shows."""
        prev, cur = medical_frame_pair(width=640, height=480, seed=3)
        result = ContentAwareRetiler().retile(cur, prev)
        areas = [t.area for t in result.grid]
        assert max(areas) > 2 * min(areas)

    def test_first_frame_without_previous(self):
        _, cur = medical_frame_pair()
        result = ContentAwareRetiler().retile(cur, None)
        assert len(result.grid) >= 1

    def test_tiny_frame_falls_back_to_single_tile(self):
        frame = np.random.default_rng(0).integers(
            0, 255, size=(48, 48)
        ).astype(np.uint8)
        result = ContentAwareRetiler().retile(frame, None)
        assert len(result.grid) == 1

    def test_uniform_bright_frame_keeps_centre_partition(self):
        """No low-content border: margins stay 0, centre still split."""
        rng = np.random.default_rng(1)
        frame = rng.integers(60, 220, size=(320, 320)).astype(np.uint8)
        result = ContentAwareRetiler().retile(frame, None)
        assert sum(t.area for t in result.grid) == frame.size

    def test_alignment_of_tile_origins(self):
        prev, cur = medical_frame_pair(width=640, height=480, seed=3)
        cons = TilingConstraints(align=16)
        result = ContentAwareRetiler(cons).retile(cur, prev)
        for t in result.grid:
            assert t.x % 16 == 0
            assert t.y % 16 == 0


class TestGrowthBehaviour:
    def test_dark_border_grows_margin(self):
        """A frame with a wide dark border and a bright busy centre
        yields margin tiles wider than the minimum tile size."""
        rng = np.random.default_rng(2)
        frame = np.full((320, 320), 12, dtype=np.uint8)
        frame[112:208, 112:208] = rng.integers(
            40, 250, size=(96, 96)
        ).astype(np.uint8)
        cons = TilingConstraints()
        result = ContentAwareRetiler(cons).retile(frame, None)
        # The leftmost tile column must be wider than the minimum.
        left_tiles = [t for t in result.grid if t.x == 0]
        assert max(t.width for t in left_tiles) > cons.min_tile_width

    def test_growth_step_influences_margins(self):
        """A larger growth step reaches the cap in fewer steps but must
        still produce a valid partition."""
        prev, cur = medical_frame_pair(width=640, height=480, seed=3)
        for step in (0.1, 0.25, 0.5):
            cons = TilingConstraints(growth_step=step)
            result = ContentAwareRetiler(cons).retile(cur, prev)
            assert sum(t.area for t in result.grid) == cur.size
