"""Tests for the dynamic (arrival/departure) serving simulation."""

import pytest

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.platform.mpsoc import MpsocConfig
from repro.transcode.dynamic import (
    DynamicServerSimulator,
    SessionRequest,
    poisson_workload,
)
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def trace():
    video = BioMedicalVideoGenerator(GeneratorConfig(
        width=160, height=128, num_frames=8, seed=4,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
    )).generate()
    return StreamTranscoder(PipelineConfig()).run(video)


class TestSessionRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionRequest(0, -1.0, 5.0)
        with pytest.raises(ValueError):
            SessionRequest(0, 0.0, 0.0)


class TestPoissonWorkload:
    def test_deterministic_by_seed(self):
        a = poisson_workload(10, 30, 60, seed=1)
        b = poisson_workload(10, 30, 60, seed=1)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_arrivals_within_horizon(self):
        reqs = poisson_workload(20, 10, 30, seed=0)
        assert all(0 <= r.arrival_time < 30 for r in reqs)
        assert all(r.duration_seconds > 0 for r in reqs)

    def test_rate_scales_count(self):
        low = poisson_workload(2, 10, 120, seed=3)
        high = poisson_workload(20, 10, 120, seed=3)
        assert len(high) > len(low)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(0, 10, 60)


class TestDynamicSimulation:
    def test_sessions_complete(self, trace):
        sim = DynamicServerSimulator()
        requests = [SessionRequest(i, i * 1.0, 3.0) for i in range(4)]
        report = sim.simulate([trace], requests, sim_seconds=30, allocator=ProposedAllocator())
        assert report.completed_sessions == 4
        assert report.total_sessions == 4

    def test_timeline_sampled_per_epoch(self, trace):
        sim = DynamicServerSimulator(fps=24.0, gop_size=8)
        report = sim.simulate([trace], [], sim_seconds=2.0,
                              allocator=ProposedAllocator())
        assert len(report.timeline) == 6  # 2 s / (8/24 s)
        assert all(s.served_sessions == 0 for s in report.timeline)

    def test_queueing_under_overload(self, trace):
        """More arrivals than a tiny platform can serve: sessions queue
        and the queue is visible in the timeline."""
        platform = MpsocConfig(num_sockets=1, cores_per_socket=1)
        sim = DynamicServerSimulator(platform=platform)
        requests = [SessionRequest(i, 0.0, 5.0) for i in range(30)]
        report = sim.simulate([trace], requests, sim_seconds=10,
                              allocator=ProposedAllocator(platform))
        assert max(s.queued_sessions for s in report.timeline) > 0

    def test_wait_times_recorded(self, trace):
        platform = MpsocConfig(num_sockets=1, cores_per_socket=1)
        sim = DynamicServerSimulator(platform=platform)
        requests = [SessionRequest(i, 0.0, 2.0) for i in range(20)]
        report = sim.simulate([trace], requests, sim_seconds=60,
                              allocator=ProposedAllocator(platform))
        assert report.mean_wait_seconds >= 0.0
        assert len(report.wait_times) > 0

    def test_proposed_drains_queue_faster_than_khan(self, trace):
        """The 1.6x throughput shows up dynamically: at equal offered
        load the proposed allocator completes at least as many
        sessions."""
        platform = MpsocConfig(num_sockets=1, cores_per_socket=4)
        requests = [SessionRequest(i, 0.2 * i, 4.0) for i in range(24)]
        sim = DynamicServerSimulator(platform=platform)
        rep_p = sim.simulate([trace], requests, 30, ProposedAllocator(platform))
        rep_k = sim.simulate([trace], requests, 30, KhanAllocator(platform))
        assert rep_p.completed_sessions >= rep_k.completed_sessions
        assert rep_p.average_served >= rep_k.average_served

    def test_validation(self, trace):
        sim = DynamicServerSimulator()
        with pytest.raises(ValueError):
            sim.simulate([], [], 10, ProposedAllocator())
        with pytest.raises(ValueError):
            sim.simulate([trace], [], 0, ProposedAllocator())
        with pytest.raises(ValueError):
            DynamicServerSimulator(fps=0)
