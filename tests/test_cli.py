"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.video import io as video_io


@pytest.fixture
def video_file(tmp_path):
    path = tmp_path / "video.npz"
    code = main([
        "generate", "--out", str(path),
        "--width", "96", "--height", "80", "--frames", "4",
        "--content", "lung", "--motion", "still",
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_video(self, video_file):
        video = video_io.load_npz(video_file)
        assert len(video) == 4
        assert (video.width, video.height) == (96, 80)
        assert video.name.startswith("lung")

    def test_deterministic_with_seed(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for path in (a, b):
            main(["generate", "--out", str(path), "--width", "64",
                  "--height", "48", "--frames", "2", "--seed", "7"])
        va, vb = video_io.load_npz(a), video_io.load_npz(b)
        np.testing.assert_array_equal(va[0].luma, vb[0].luma)


class TestEncode:
    def test_encode_runs(self, video_file, capsys):
        code = main(["encode", str(video_file), "--tiles", "2x1",
                     "--window", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and "bitrate" in out

    def test_b_frames_flag(self, video_file, capsys):
        code = main(["encode", str(video_file), "--b-frames",
                     "--window", "8"])
        assert code == 0

    def test_invalid_tiles_spec(self, video_file):
        with pytest.raises(SystemExit):
            main(["encode", str(video_file), "--tiles", "two-by-two"])


class TestTranscode:
    def test_proposed(self, video_file, capsys):
        assert main(["transcode", str(video_file)]) == 0
        assert "proposed" in capsys.readouterr().out

    def test_baseline(self, video_file, capsys):
        assert main(["transcode", str(video_file), "--baseline"]) == 0
        assert "baseline" in capsys.readouterr().out


class TestExperiment:
    def test_forwards_to_harness(self, capsys):
        code = main([
            "experiment", "table1",
            "--width", "96", "--height", "80", "--frames", "8",
        ])
        assert code == 0
        assert "TABLE I" in capsys.readouterr().out
