"""Unit tests for the multi-worker fleet: restart policy, cluster-level
admission, worker config specialization and the fleet metrics digest.

The process-spawning failover paths are exercised end to end by
``make fleet-chaos`` (:mod:`repro.serving.fleet_smoke`) and the slow
integration test at the bottom.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.observability import scoped
from repro.observability.metrics import serving_summary
from repro.serving.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    FleetAdmission,
)
from repro.serving.fleet import (
    FleetConfig,
    RestartPolicy,
    RestartTracker,
    _worker_config,
)
from repro.serving.protocol import Hello
from repro.serving.server import ServeNetConfig

HELLO = Hello(width=64, height=64, fps=24.0, gop=8)


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RestartPolicy(breaker_window_s=0.0)
        with pytest.raises(ValueError):
            RestartPolicy(breaker_threshold=0)

    def test_backoff_doubles_to_cap(self):
        tracker = RestartTracker(RestartPolicy(
            backoff_base_s=0.25, backoff_max_s=1.0,
            breaker_threshold=10, breaker_window_s=100.0,
        ))
        delays = [tracker.record_death(float(i)) for i in range(5)]
        assert delays == [0.25, 0.5, 1.0, 1.0, 1.0]

    def test_breaker_trips_at_threshold(self):
        tracker = RestartTracker(RestartPolicy(
            breaker_threshold=3, breaker_window_s=100.0,
        ))
        assert tracker.record_death(0.0) is not None
        assert tracker.record_death(1.0) is not None
        assert tracker.record_death(2.0) is None  # third in window: open
        assert tracker.deaths_in_window == 3

    def test_window_pruning_forgives_old_deaths(self):
        tracker = RestartTracker(RestartPolicy(
            backoff_base_s=0.25, breaker_threshold=3,
            breaker_window_s=10.0,
        ))
        tracker.record_death(0.0)
        tracker.record_death(1.0)
        # Both earlier deaths have aged out: backoff restarts from base.
        assert tracker.record_death(50.0) == 0.25
        assert tracker.deaths_in_window == 1


class TestFleetAdmission:
    def _fleet(self, workers: int = 2, capacity: float = 8.0,
               park_capacity: int = 2) -> FleetAdmission:
        fleet = FleetAdmission(
            policy=AdmissionPolicy(park_capacity=park_capacity),
        )
        for i in range(workers):
            fleet.register(f"w{i}", capacity)
            fleet.update(f"w{i}", {"capacity_cores": capacity})
        return fleet

    def test_least_loaded_spreads_sessions(self):
        with scoped():
            fleet = self._fleet(workers=2)
            placements = [fleet.place(HELLO)[1] for _ in range(4)]
        # Pending charges alternate the choice: no worker gets all.
        assert set(placements) == {"w0", "w1"}

    def test_prefer_pins_resume_routing(self):
        with scoped():
            fleet = self._fleet(workers=3)
            decision, worker, _ = fleet.place(HELLO, prefer="w2")
        assert decision is AdmissionDecision.ACCEPT
        assert worker == "w2"

    def test_prefer_falls_through_when_dead(self):
        with scoped():
            fleet = self._fleet(workers=2)
            fleet.mark_dead("w1")
            decision, worker, _ = fleet.place(HELLO, prefer="w1")
        assert decision is AdmissionDecision.ACCEPT
        assert worker == "w0"

    def test_gossip_resets_pending_charge(self):
        with scoped():
            fleet = self._fleet(workers=1)
            fleet.place(HELLO)
            assert fleet.workers["w0"].pending_cores > 0
            fleet.update("w0", {"occupancy_cores": 1.0})
        assert fleet.workers["w0"].pending_cores == 0.0
        assert fleet.workers["w0"].occupancy_cores == 1.0

    def test_saturated_fleet_parks_then_rejects(self):
        with scoped():
            fleet = self._fleet(workers=2, capacity=1e-9, park_capacity=1)
            decisions = [fleet.place(HELLO)[0] for _ in range(3)]
        # Park capacity scales with live workers: 1 x 2 = 2 parks.
        assert decisions == [
            AdmissionDecision.PARK, AdmissionDecision.PARK,
            AdmissionDecision.REJECT,
        ]

    def test_abandon_park_frees_a_slot(self):
        with scoped():
            fleet = self._fleet(workers=1, capacity=1e-9, park_capacity=1)
            assert fleet.place(HELLO)[0] is AdmissionDecision.PARK
            assert fleet.place(HELLO)[0] is AdmissionDecision.REJECT
            fleet.abandon_park()
            assert fleet.place(HELLO)[0] is AdmissionDecision.PARK

    def test_no_live_workers_rejects(self):
        with scoped():
            fleet = self._fleet(workers=1)
            fleet.mark_dead("w0")
            decision, worker, reason = fleet.place(HELLO)
        assert decision is AdmissionDecision.REJECT
        assert worker is None
        assert "no live workers" in reason

    def test_draining_worker_leaves_rotation(self):
        with scoped():
            fleet = self._fleet(workers=2)
            fleet.update("w0", {"draining": 1.0})
            placements = {fleet.place(HELLO)[1] for _ in range(3)}
        assert placements == {"w1"}


class TestWorkerConfig:
    def _config(self, **kwargs) -> FleetConfig:
        return FleetConfig(
            server=ServeNetConfig(journal_dir="/tmp/j",
                                  admission=AdmissionPolicy(utilization=0.8)),
            **kwargs,
        )

    def test_capacity_split_across_workers(self):
        config = self._config(workers=4)
        worker = _worker_config(config, "w2")
        assert worker.worker_id == "w2"
        assert worker.admission.utilization == pytest.approx(0.2)
        assert worker.lease is True

    def test_router_mode_gives_private_ports(self):
        worker = _worker_config(self._config(workers=2), "w0")
        assert worker.port == 0 and worker.host == "127.0.0.1"
        assert worker.reuse_port is False

    def test_reuseport_mode_binds_public_port(self):
        config = self._config(workers=2, mode="reuseport", port=9470)
        worker = _worker_config(config, "w0")
        assert worker.port == 9470
        assert worker.reuse_port is True

    def test_fleet_requires_journal_dir(self):
        with pytest.raises(ValueError):
            FleetConfig(server=ServeNetConfig())


class TestFleetMetricsDigest:
    def test_pre_fleet_snapshot_digests_with_zero_defaults(self):
        """A PR-5-era metrics file has no fleet families: the summary
        must still carry every fleet key, all zero, no KeyError."""
        snapshot = {"metrics": [{
            "name": "repro_serving_admission_total", "kind": "counter",
            "help": "", "samples": [
                {"labels": {"decision": "accept"}, "value": 3.0},
            ],
        }]}
        summary = serving_summary(snapshot)
        assert summary is not None
        assert summary["sessions_accepted"] == 3.0
        for key in ("sessions_adopted", "lease_conflicts", "worker_deaths",
                    "worker_restarts", "worker_breaker_trips",
                    "fleet_accepted", "fleet_parked", "fleet_rejected"):
            assert summary[key] == 0.0

    def test_non_serving_snapshot_stays_none(self):
        assert serving_summary({"metrics": []}) is None


@pytest.mark.slow
class TestFleetIntegration:
    def test_kill_mid_stream_adopts_and_restarts(self, tmp_path):
        """2-worker fleet, SIGKILL the busiest mid-stream: every session
        finishes, at least one via cross-worker adoption, and the dead
        slot is restarted (the full bit-identity gate is
        ``make fleet-chaos``)."""
        from repro.serving import fleet_smoke

        with scoped():
            report, counters, restarted = asyncio.run(
                fleet_smoke._run_pass(str(tmp_path), kill=True)
            )
        assert report.accepted == fleet_smoke.SESSIONS
        assert report.errored == 0
        assert report.protocol_errors == 0
        assert report.connect_refusals == 0
        assert counters["adopted"] >= 1
        assert counters["deaths"] >= 1
        assert counters["restarts"] >= 1
        assert restarted
