"""Tests for the framerate feedback controller (paper §III-D2)."""

import pytest

from repro.transcode.feedback import FramerateFeedback


class TestFramerateFeedback:
    def test_on_time_frame_has_no_bottlenecks(self):
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.01, 0.02, 0.015])
        assert fb.bottleneck_tiles == set()
        assert fb.framerate_satisfied()

    def test_slow_tile_flagged(self):
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.01, 0.06, 0.02])  # slot = 0.0417
        assert fb.bottleneck_tiles == {1}

    def test_multiple_bottlenecks(self):
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.05, 0.06, 0.01])
        assert fb.bottleneck_tiles == {0, 1}

    def test_bottlenecks_recomputed_each_frame(self):
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.06, 0.01])
        assert fb.bottleneck_tiles == {0}
        fb.observe_frame([0.01, 0.01])
        assert fb.bottleneck_tiles == set()

    def test_debt_accumulates_and_drains(self):
        """Over-utilisation is compensated by under-utilisation of the
        next frames (the paper's rolling one-second budget)."""
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.0617])  # 0.02 over
        assert fb.debt_seconds == pytest.approx(0.02, abs=1e-4)
        assert not fb.framerate_satisfied()
        fb.observe_frame([0.0317])  # 0.01 under
        assert fb.debt_seconds == pytest.approx(0.01, abs=1e-4)
        fb.observe_frame([0.0217])  # drains fully
        assert fb.framerate_satisfied()

    def test_tolerance_suppresses_marginal_flags(self):
        fb = FramerateFeedback(fps=24.0, tolerance=0.2)
        fb.observe_frame([0.045])  # 8% over: inside 20% tolerance
        assert fb.bottleneck_tiles == set()

    def test_reset(self):
        fb = FramerateFeedback(fps=24.0)
        fb.observe_frame([0.9])
        fb.reset()
        assert fb.framerate_satisfied()
        assert fb.bottleneck_tiles == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            FramerateFeedback(fps=0)
        with pytest.raises(ValueError):
            FramerateFeedback(fps=24, tolerance=-0.1)
        fb = FramerateFeedback(fps=24.0)
        with pytest.raises(ValueError):
            fb.observe_frame([])
