"""Behavioural codec tests: rate/quality monotonicity, op accounting,
frame structure."""

import numpy as np
import pytest

from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.encoder import FrameEncoder, VideoEncoder, reconstruct_block
from repro.codec.ops import OpCounts
from repro.codec.quant import quantization_step
from repro.codec.transform import blockify, forward_dct
from repro.codec.quant import quantize
from repro.tiling.tile import TileGrid
from repro.tiling.uniform import uniform_tiling


class TestRateDistortion:
    def test_psnr_decreases_with_qp(self, small_video):
        psnrs = []
        for qp in (22, 32, 42):
            stats = VideoEncoder(EncoderConfig(qp=qp, search_window=8)).encode(
                small_video
            )
            psnrs.append(stats.average_psnr)
        assert psnrs[0] > psnrs[1] > psnrs[2]

    def test_bits_decrease_with_qp(self, small_video):
        bits = []
        for qp in (22, 32, 42):
            stats = VideoEncoder(EncoderConfig(qp=qp, search_window=8)).encode(
                small_video
            )
            bits.append(stats.total_bits)
        assert bits[0] > bits[1] > bits[2]

    def test_p_frames_cheaper_than_i_frames(self, small_video):
        stats = VideoEncoder(
            EncoderConfig(qp=32, search_window=8), GopConfig(8)
        ).encode(small_video)
        i_bits = [f.bits for f in stats.frames if f.frame_type is FrameType.I]
        p_bits = [f.bits for f in stats.frames if f.frame_type is FrameType.P]
        assert np.mean(p_bits) < np.mean(i_bits)

    def test_reconstruction_quality_reasonable(self, small_video):
        stats = VideoEncoder(EncoderConfig(qp=27, search_window=8)).encode(
            small_video
        )
        assert stats.average_psnr > 33.0


class TestOpAccounting:
    def test_ops_accumulate(self):
        a = OpCounts(sad_pixel_ops=5, transform_blocks=1)
        b = OpCounts(sad_pixel_ops=2, entropy_bits=10)
        c = a + b
        assert c.sad_pixel_ops == 7
        assert c.transform_blocks == 1
        assert c.entropy_bits == 10
        a += b
        assert a.sad_pixel_ops == 7

    def test_intra_frames_have_no_me_ops(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        stats, _ = FrameEncoder().encode(
            small_video[0].luma, grid, [EncoderConfig(qp=32)], FrameType.I
        )
        assert stats.ops.sad_pixel_ops == 0
        assert stats.ops.me_candidates == 0

    def test_p_frames_do_motion_search(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        enc = FrameEncoder()
        cfg = [EncoderConfig(qp=32, search_window=8)]
        _, recon = enc.encode(small_video[0].luma, grid, cfg, FrameType.I)
        stats, _ = enc.encode(
            small_video[1].luma, grid, cfg, FrameType.P, reference=recon
        )
        assert stats.ops.sad_pixel_ops > 0
        assert stats.ops.me_candidates > 0

    def test_larger_window_costs_more_sad_for_full_search(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        enc = FrameEncoder()
        costs = []
        for window in (2, 4):
            cfg = [EncoderConfig(qp=32, search="full", search_window=window)]
            _, recon = enc.encode(small_video[0].luma, grid, cfg, FrameType.I)
            stats, _ = enc.encode(
                small_video[1].luma, grid, cfg, FrameType.P, reference=recon
            )
            costs.append(stats.ops.sad_pixel_ops)
        assert costs[1] > costs[0]

    def test_flat_content_skips_transforms(self):
        """The zero-block early skip: perfectly predicted content needs
        no transforms (flat 128 frame = the no-reference DC default)."""
        flat = np.full((32, 32), 128, dtype=np.uint8)
        grid = TileGrid.single(32, 32)
        stats, recon = FrameEncoder().encode(
            flat, grid, [EncoderConfig(qp=37)], FrameType.I
        )
        assert stats.ops.transform_blocks == 0
        np.testing.assert_array_equal(recon, flat)

    def test_flat_nonpredictable_first_block_still_transforms(self):
        """A flat frame away from the DC default pays for the first
        block, then propagates losslessly via DC prediction."""
        flat = np.full((32, 32), 90, dtype=np.uint8)
        grid = TileGrid.single(32, 32)
        stats, recon = FrameEncoder().encode(
            flat, grid, [EncoderConfig(qp=22)], FrameType.I
        )
        assert stats.ops.transform_blocks > 0
        assert stats.psnr > 40


class TestZeroBlockSkipEquivalence:
    def test_skip_threshold_is_safe(self, rng):
        """Any sub-block skipped by the SAD < 3*Qstep rule would have
        quantized to all zeros anyway."""
        qp = 32
        step = quantization_step(qp)
        for _ in range(50):
            res = rng.uniform(-1, 1, size=(8, 8))
            res *= (3.0 * step - 1e-6) / max(np.abs(res).sum(), 1e-12)
            assert np.abs(res).sum() < 3 * step
            levels = quantize(forward_dct(res[None]), qp)
            assert not levels.any()


class TestReconstructBlock:
    def test_zero_levels_returns_rounded_prediction(self):
        pred = np.full((8, 8), 100.4)
        recon = reconstruct_block(pred, np.zeros((1, 8, 8), dtype=np.int32), 30)
        assert recon.dtype == np.uint8
        np.testing.assert_array_equal(recon, np.full((8, 8), 100, np.uint8))

    def test_clipping_to_valid_range(self):
        pred = np.full((8, 8), 300.0)
        recon = reconstruct_block(pred, np.zeros((1, 8, 8), dtype=np.int32), 30)
        np.testing.assert_array_equal(recon, np.full((8, 8), 255, np.uint8))


class TestEncoderValidation:
    def test_p_frame_without_reference_raises(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        with pytest.raises(ValueError):
            FrameEncoder().encode(
                small_video[0].luma, grid, [EncoderConfig()], FrameType.P
            )

    def test_config_count_mismatch_raises(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 2, 1, align=16)
        with pytest.raises(ValueError):
            FrameEncoder().encode(
                small_video[0].luma, grid, [EncoderConfig()], FrameType.I
            )

    def test_frame_shape_mismatch_raises(self, small_video):
        grid = TileGrid.single(32, 32)
        with pytest.raises(ValueError):
            FrameEncoder().encode(
                small_video[0].luma, grid, [EncoderConfig()], FrameType.I
            )

    def test_empty_video_raises(self):
        from repro.video.frame import Video
        with pytest.raises(ValueError):
            VideoEncoder(EncoderConfig()).encode(Video(frames=[], fps=24))

    def test_invalid_qp_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(qp=60)

    def test_invalid_search_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(search="warp_drive")

    def test_gop_structure(self):
        gop = GopConfig(8)
        assert gop.frame_type(0) is FrameType.I
        assert gop.frame_type(7) is FrameType.P
        assert gop.frame_type(8) is FrameType.I
        assert gop.position_in_gop(11) == 3
        assert gop.is_gop_start(16)
        with pytest.raises(ValueError):
            GopConfig(0)
