"""Encoder/decoder round-trip tests: the bitstream written by the
encoder decodes to exactly the encoder-side reconstruction."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameEncoder
from repro.tiling.tile import TileGrid
from repro.tiling.uniform import uniform_tiling


def _encode_decode(frames, grid, configs):
    """Encode a frame list; decode the stream; return both recon lists."""
    encoder = FrameEncoder()
    decoder = FrameDecoder()
    writer = BitWriter()
    enc_recons = []
    reference = None
    gop = GopConfig(8)
    for i, frame in enumerate(frames):
        ftype = gop.frame_type(i)
        stats, recon = encoder.encode(
            frame, grid, configs, ftype, reference=reference,
            frame_index=i, writer=writer,
        )
        enc_recons.append(recon)
        reference = recon
    reader = BitReader(writer.flush())
    dec_recons = []
    reference = None
    for _ in frames:
        recon = decoder.decode(reader, grid, configs, reference=reference)
        dec_recons.append(recon)
        reference = recon
    return enc_recons, dec_recons


class TestRoundTrip:
    def test_single_intra_frame(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30)]
        enc, dec = _encode_decode([small_video[0].luma], grid, configs)
        np.testing.assert_array_equal(enc[0], dec[0])

    def test_ip_sequence(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=32, search="hexagon", search_window=16)]
        frames = [f.luma for f in small_video.frames[:4]]
        enc, dec = _encode_decode(frames, grid, configs)
        for e, d in zip(enc, dec):
            np.testing.assert_array_equal(e, d)

    def test_tiled_frames(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 2, 2, align=16)
        configs = [EncoderConfig(qp=q) for q in (22, 32, 37, 42)]
        frames = [f.luma for f in small_video.frames[:3]]
        enc, dec = _encode_decode(frames, grid, configs)
        for e, d in zip(enc, dec):
            np.testing.assert_array_equal(e, d)

    def test_different_search_algorithms_decode_identically(self, small_video):
        """The decoder has no knowledge of the search algorithm: any
        encoder choice must produce a decodable stream."""
        grid = TileGrid.single(small_video.width, small_video.height)
        frames = [f.luma for f in small_video.frames[:3]]
        for search in ("full", "tz", "diamond", "cross", "one_at_a_time",
                       "three_step", "hexagon_rotating"):
            configs = [EncoderConfig(qp=34, search=search, search_window=8)]
            enc, dec = _encode_decode(frames, grid, configs)
            for e, d in zip(enc, dec):
                np.testing.assert_array_equal(e, d)

    def test_bit_count_matches_stream_length(self, small_video):
        """Counting mode reports exactly the bits the writer produces."""
        grid = uniform_tiling(small_video.width, small_video.height, 2, 1, align=16)
        configs = [EncoderConfig(qp=30)] * 2
        encoder = FrameEncoder()
        writer = BitWriter()
        stats, _ = encoder.encode(
            small_video[0].luma, grid, configs, FrameType.I, writer=writer,
        )
        # +2 frame-type bits, which FrameStats does not include.
        assert writer.bits_written == stats.bits + 2

    def test_decoder_rejects_p_frame_without_reference(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30)]
        encoder = FrameEncoder()
        writer = BitWriter()
        _, recon = encoder.encode(
            small_video[0].luma, grid, configs, FrameType.I, writer=writer
        )
        encoder.encode(
            small_video[1].luma, grid, configs, FrameType.P,
            reference=recon, writer=writer,
        )
        data = writer.flush()
        decoder = FrameDecoder()
        reader = BitReader(data)
        decoder.decode(reader, grid, configs)  # I frame fine
        with pytest.raises(ValueError):
            decoder.decode(reader, grid, configs)  # P without reference

    def test_decoder_rejects_mismatched_configs(self, small_video):
        grid = uniform_tiling(small_video.width, small_video.height, 2, 1, align=16)
        with pytest.raises(ValueError):
            FrameDecoder().decode(BitReader(b"\x00"), grid, [EncoderConfig()])
