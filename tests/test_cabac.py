"""Tests for the CABAC-style arithmetic coding extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.cabac import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
    CoefficientCabac,
    CoefficientContexts,
    ProbabilityModel,
)


class TestProbabilityModel:
    def test_updates_toward_observed(self):
        m = ProbabilityModel(0.5)
        for _ in range(100):
            m.update(1)
        assert m.p_one > 0.9
        for _ in range(200):
            m.update(0)
        assert m.p_one < 0.1

    def test_probability_stays_bounded(self):
        m = ProbabilityModel(0.5, adapt_rate=0.5)
        for _ in range(1000):
            m.update(1)
        assert m.p_one <= 1 - m.p_min

    def test_bits_of_reflect_probability(self):
        m = ProbabilityModel(0.9)
        assert m.bits_of(1) < m.bits_of(0)
        assert m.bits_of(1) == pytest.approx(-np.log2(0.9))

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityModel(0.0)
        with pytest.raises(ValueError):
            ProbabilityModel(0.5, adapt_rate=1.5)


class TestRangeCoder:
    def _roundtrip(self, bins, p_one=0.5, adaptive=True):
        enc = BinaryArithmeticEncoder()
        model = ProbabilityModel(p_one) if adaptive else None
        for b in bins:
            enc.encode(b, model)
        data = enc.finish()
        dec = BinaryArithmeticDecoder(data)
        model = ProbabilityModel(p_one) if adaptive else None
        return [dec.decode(model) for _ in bins], data

    def test_bypass_roundtrip(self):
        bins = [1, 0, 1, 1, 0, 0, 0, 1, 1, 1, 0]
        decoded, _ = self._roundtrip(bins, adaptive=False)
        assert decoded == bins

    def test_adaptive_roundtrip(self, rng):
        bins = (rng.random(500) < 0.8).astype(int).tolist()
        decoded, _ = self._roundtrip(bins, p_one=0.5)
        assert decoded == bins

    def test_skewed_source_compresses(self, rng):
        """An adaptive context on a 95%-ones source beats 1 bit/bin."""
        bins = (rng.random(4000) < 0.95).astype(int).tolist()
        _, data = self._roundtrip(bins, p_one=0.5)
        assert len(data) * 8 < 0.6 * len(bins)

    def test_uniform_source_near_one_bit_per_bin(self, rng):
        bins = (rng.random(4000) < 0.5).astype(int).tolist()
        _, data = self._roundtrip(bins, adaptive=False)
        assert len(data) * 8 == pytest.approx(len(bins), rel=0.05)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200),
           st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bins, p_one):
        decoded, _ = self._roundtrip(bins, p_one=p_one)
        assert decoded == bins


class TestCoefficientCabac:
    def _roundtrip(self, blocks):
        enc = BinaryArithmeticEncoder()
        coder = CoefficientCabac()
        for block in blocks:
            coder.encode_block(enc, block)
        data = enc.finish()
        dec = BinaryArithmeticDecoder(data)
        coder = CoefficientCabac()
        return [coder.decode_block(dec, len(b)) for b in blocks], data

    def test_zero_block(self):
        block = np.zeros(64, dtype=np.int32)
        decoded, _ = self._roundtrip([block])
        np.testing.assert_array_equal(decoded[0], block)

    def test_sparse_block(self):
        block = np.zeros(64, dtype=np.int32)
        block[0], block[3], block[17] = 5, -2, 1
        decoded, _ = self._roundtrip([block])
        np.testing.assert_array_equal(decoded[0], block)

    def test_dense_block_with_large_levels(self, rng):
        block = rng.integers(-40, 41, size=64).astype(np.int32)
        block[63] = 7
        decoded, _ = self._roundtrip([block])
        np.testing.assert_array_equal(decoded[0], block)

    def test_multi_block_stream_shares_contexts(self, rng):
        blocks = [rng.integers(-4, 5, size=64).astype(np.int32)
                  for _ in range(20)]
        decoded, _ = self._roundtrip(blocks)
        for d, b in zip(decoded, blocks):
            np.testing.assert_array_equal(d, b)

    def test_context_modelling_beats_flat_assumption(self, rng):
        """Typical quantized blocks (sparse, small levels) compress
        better with adapted contexts than 1 bit per bin."""
        blocks = []
        for _ in range(200):
            block = np.zeros(64, dtype=np.int32)
            num = rng.integers(0, 6)
            idx = rng.choice(16, size=num, replace=False)
            block[idx] = rng.integers(1, 4, size=num)
            blocks.append(block)
        _, data = self._roundtrip(blocks)
        coder = CoefficientCabac()
        estimated = sum(coder.estimate_block_bits(b) for b in blocks)
        actual_bits = len(data) * 8
        # Estimate and actual agree within the flush overhead.
        assert actual_bits == pytest.approx(estimated, rel=0.2, abs=64)

    def test_rate_estimate_tracks_density(self):
        coder = CoefficientCabac()
        sparse = np.zeros(64, dtype=np.int32)
        sparse[0] = 1
        dense = np.ones(64, dtype=np.int32)
        assert (CoefficientCabac().estimate_block_bits(sparse)
                < CoefficientCabac().estimate_block_bits(dense))

    def test_cabac_beats_golomb_on_typical_blocks(self, rng):
        """The extension's raison d'etre: context modelling spends
        fewer bits than the static exp-Golomb backend on realistic
        coefficient statistics."""
        from repro.codec.entropy import count_block_bits
        blocks = []
        for _ in range(300):
            block = np.zeros(64, dtype=np.int32)
            num = rng.integers(0, 5)
            idx = rng.choice(12, size=num, replace=False)
            block[idx] = rng.integers(1, 3, size=num) * rng.choice([-1, 1], size=num)
            blocks.append(block)
        golomb_bits = sum(count_block_bits(b) for b in blocks)
        _, data = self._roundtrip(blocks)
        cabac_bits = len(data) * 8
        assert cabac_bits < golomb_bits

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        block = np.array(values, dtype=np.int32)
        decoded, _ = self._roundtrip([block])
        np.testing.assert_array_equal(decoded[0], block)
