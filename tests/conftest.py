"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.frame import Frame, Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden-trace files instead of comparing",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def small_video() -> Video:
    """A small, fast synthetic medical video shared across tests."""
    cfg = GeneratorConfig(
        width=96, height=80, num_frames=10, seed=7,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=2.0,
    )
    return BioMedicalVideoGenerator(cfg).generate()


@pytest.fixture(scope="session")
def vga_frame_pair():
    """Two consecutive VGA frames of a panning brain video."""
    cfg = GeneratorConfig(
        width=640, height=480, num_frames=2, seed=3,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=3.0,
    )
    video = BioMedicalVideoGenerator(cfg).generate()
    return video[0].luma, video[1].luma


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_textured_plane(rng: np.random.Generator, height: int, width: int,
                        base: int = 120, amplitude: int = 60) -> np.ndarray:
    """Random textured uint8 plane (helper importable from conftest)."""
    noise = rng.integers(-amplitude, amplitude + 1, size=(height, width))
    return np.clip(base + noise, 0, 255).astype(np.uint8)


@pytest.fixture
def textured_plane(rng):
    return make_textured_plane(rng, 64, 64)
