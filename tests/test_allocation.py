"""Tests for Algorithm 2 and the Khan et al. [19] baseline allocator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation.baseline_khan import KhanAllocator, khan_tiling
from repro.allocation.demand import UserDemand, cores_needed
from repro.allocation.proposed import ProposedAllocator
from repro.platform.mpsoc import GHZ, MpsocConfig, XEON_E5_2667
from repro.platform.schedule import DvfsPolicy, ThreadTask

FPS = 24.0
SLOT = 1.0 / FPS


def demand(user_id, times):
    return UserDemand(
        user_id=user_id,
        threads=[
            ThreadTask(thread_id=i, user_id=user_id, cpu_time_fmax=t,
                       tile_index=i)
            for i, t in enumerate(times)
        ],
    )


class TestCoresNeeded:
    def test_fractional_demand(self):
        d = demand(0, [0.02, 0.03])  # 0.05 s per slot of 0.0417 s
        assert cores_needed(d, FPS) == pytest.approx(0.05 * FPS)

    def test_empty_demand_is_zero(self):
        assert cores_needed(demand(0, []), FPS) == 0.0

    def test_invalid_fps(self):
        with pytest.raises(ValueError):
            cores_needed(demand(0, [0.01]), 0)


class TestProposedAdmission:
    def test_admits_all_when_capacity_allows(self):
        alloc = ProposedAllocator()
        demands = [demand(i, [0.01]) for i in range(4)]
        admitted, rejected, used = alloc.admit(demands, FPS)
        assert len(admitted) == 4
        assert not rejected

    def test_prefers_cheaper_users(self):
        """Line 2: users sorted ascending by core demand."""
        small_platform = MpsocConfig(num_sockets=1, cores_per_socket=2)
        alloc = ProposedAllocator(small_platform)
        demands = [
            demand(0, [0.08]),   # ~1.9 cores
            demand(1, [0.01]),   # 0.24 cores
            demand(2, [0.01]),
        ]
        admitted, rejected, _ = alloc.admit(demands, FPS)
        admitted_ids = {d.user_id for d in admitted}
        assert {1, 2} <= admitted_ids

    def test_saturation_rejects_surplus(self):
        alloc = ProposedAllocator()
        demands = [demand(i, [0.05, 0.05]) for i in range(40)]  # 2.4 cores each
        admitted, rejected, used = alloc.admit(demands, FPS)
        assert used <= 32
        assert len(admitted) == math.floor(32 / 2.4)
        assert rejected


class TestProposedPacking:
    def test_every_thread_placed_exactly_once(self):
        alloc = ProposedAllocator()
        demands = [demand(i, [0.01, 0.02, 0.005]) for i in range(5)]
        result = alloc.allocate(demands, FPS)
        placed = [
            (t.user_id, t.thread_id)
            for s in result.schedule.slots for t in s.tasks
        ]
        expected = [(d.user_id, t.thread_id) for d in result.admitted
                    for t in d.threads]
        assert sorted(placed) == sorted(expected)

    def test_packing_respects_pool_bound(self):
        alloc = ProposedAllocator()
        demands = [demand(0, [0.01] * 4)]
        result = alloc.allocate(demands, FPS)
        assert len(result.schedule.slots) <= XEON_E5_2667.num_cores

    def test_loads_balanced_toward_cap(self):
        """The min-distance heuristic avoids one core hogging all the
        load while others stay empty."""
        alloc = ProposedAllocator(dvfs_policy=DvfsPolicy.RACE_TO_IDLE,
                                  energy_aware_pool=False)
        demands = [demand(0, [0.01] * 8)]  # 0.08 s total -> 2 cores
        result = alloc.allocate(demands, FPS)
        loads = [s.load_fmax for s in result.schedule.slots]
        assert len(loads) == 2
        assert max(loads) <= SLOT + 1e-9
        assert min(loads) > 0

    def test_carry_in_accounted(self):
        alloc = ProposedAllocator(energy_aware_pool=False)
        demands = [demand(0, [0.03])]
        result = alloc.allocate(demands, FPS, carry_in={0: 0.02})
        assert result.schedule.slots[0].carry_in_fmax == pytest.approx(0.02)

    def test_energy_aware_pool_spreads_for_fmin(self):
        """With spare cores, the pool is sized so cores can run at
        min(F) under the STRETCH policy."""
        alloc = ProposedAllocator(dvfs_policy=DvfsPolicy.STRETCH,
                                  energy_aware_pool=True)
        demands = [demand(0, [0.01] * 8)]  # 1.92 core-equivalents
        result = alloc.allocate(demands, FPS)
        plans = [p for p in result.schedule.plans() if p.busy_seconds > 0]
        assert all(p.busy_frequency_hz == 2.9 * GHZ for p in plans)

    def test_invalid_fps_rejected(self):
        with pytest.raises(ValueError):
            ProposedAllocator().allocate([], 0)

    @given(st.lists(st.lists(st.floats(min_value=1e-4, max_value=0.02),
                             min_size=1, max_size=5),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_allocation_invariants_property(self, user_times):
        alloc = ProposedAllocator()
        demands = [demand(i, times) for i, times in enumerate(user_times)]
        result = alloc.allocate(demands, FPS)
        # No thread lost or duplicated.
        placed = sorted(
            (t.user_id, t.thread_id)
            for s in result.schedule.slots for t in s.tasks
        )
        expected = sorted(
            (d.user_id, t.thread_id) for d in result.admitted for t in d.threads
        )
        assert placed == expected
        # Pool bounded by the platform.
        assert len(result.schedule.slots) <= XEON_E5_2667.num_cores


class TestKhanTiling:
    def test_one_tile_per_core(self):
        grid = khan_tiling(640, 480, 6)
        assert len(grid) == 6

    def test_near_square_factorisation(self):
        grid = khan_tiling(640, 480, 4)
        # 2x2 beats 4x1.
        widths = {t.width for t in grid}
        assert len(grid) == 4
        assert all(w >= 160 for w in widths)

    def test_prime_count_degenerates_to_strip(self):
        grid = khan_tiling(640, 480, 5)
        assert len(grid) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            khan_tiling(640, 480, 0)

    def test_equal_area_tiles(self):
        grid = khan_tiling(640, 480, 4)
        areas = {t.area for t in grid}
        assert len(areas) == 1  # perfectly balanced for 2x2 at VGA


class TestKhanAllocator:
    def test_one_thread_per_core(self):
        alloc = KhanAllocator()
        demands = [demand(0, [0.02, 0.02]), demand(1, [0.02])]
        result = alloc.allocate(demands, FPS)
        for slot in result.schedule.slots:
            assert len(slot.tasks) == 1

    def test_admission_by_thread_count(self):
        small = MpsocConfig(num_sockets=1, cores_per_socket=4)
        alloc = KhanAllocator(small)
        demands = [demand(i, [0.02, 0.02]) for i in range(3)]  # 2 cores each
        result = alloc.allocate(demands, FPS)
        assert result.num_users_served == 2
        assert len(result.rejected) == 1

    def test_cores_for_user_capacity_rule(self):
        alloc = KhanAllocator()
        assert alloc.cores_for_user(0.05, FPS) == 2   # 1.2 -> 2
        assert alloc.cores_for_user(0.04, FPS) == 1   # 0.96 -> 1
        assert alloc.cores_for_user(0.0, FPS) == 1

    def test_schedule_is_always_on(self):
        alloc = KhanAllocator()
        result = alloc.allocate([demand(0, [0.001])], FPS)
        plan = result.schedule.plans()[0]
        assert plan.busy_seconds == pytest.approx(SLOT)

    def test_served_user_ratio_vs_proposed(self):
        """The headline comparison: with identical *total* workloads,
        the proposed allocator shares cores between users and serves
        more of them whenever per-user demand is fractional."""
        # Each user: 1.2 cores of demand in 2 threads.
        times = [0.03, 0.02]
        demands = [demand(i, times) for i in range(40)]
        served_khan = KhanAllocator().allocate(demands, FPS).num_users_served
        served_prop = ProposedAllocator().allocate(demands, FPS).num_users_served
        assert served_khan == 16  # one core per thread: 32 // 2
        assert served_prop > served_khan
