"""Golden-trace regression tests.

One deterministic 8-frame synthetic stream is transcoded and served
with tracing enabled; the *discrete* shape of the resulting trace —
span/event names in program order with their non-float attributes, plus
the counter samples of the metrics registry — is compared against a
checked-in golden file.  Wall-clock durations and simulated CPU-time
floats are stripped before comparison, so the golden is stable across
machines and runs; any change to the instrumentation topology (a span
renamed, an allocator decision reordered, a counter dropped) fails
loudly instead of silently degrading the observability contract.

Regenerate after an intentional change with::

    pytest tests/test_golden_trace.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.allocation.proposed import ProposedAllocator
from repro.observability import scoped
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_trace.json"


def _golden_run():
    """The pinned scenario: transcode one 8-frame stream, serve 6 users."""
    video = BioMedicalVideoGenerator(GeneratorConfig(
        width=96, height=80, num_frames=8, seed=11,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=2.0,
    )).generate()
    with scoped() as (registry, tracer):
        tracer.enable()
        trace = StreamTranscoder(PipelineConfig(fps=24.0)).run(video)
        server = TranscodingServer(fps=24.0)
        server.serve([trace], ProposedAllocator(), num_users=6)
        records = [r.to_dict() for r in tracer.records()]
        snapshot = registry.to_dict()
    return records, snapshot


def _discrete_trace(records):
    """Trace shape in program (seq) order, float attrs stripped.

    Floats are the non-deterministic (durations) or platform-shaped
    (simulated CPU times) part of a record; names, nesting kinds and
    discrete attrs are the golden contract.
    """
    out = []
    for rec in sorted(records, key=lambda r: r["seq"]):
        attrs = {k: v for k, v in rec["attrs"].items()
                 if not isinstance(v, float)}
        out.append({"kind": rec["kind"], "name": rec["name"], "attrs": attrs})
    return out


def _counter_samples(snapshot):
    """Counter families with integer values (the deterministic subset
    of the metrics snapshot; gauge/histogram values carry floats)."""
    out = []
    for fam in snapshot["metrics"]:
        for sample in fam["samples"]:
            entry = {"name": fam["name"], "kind": fam["kind"],
                     "labels": sample["labels"]}
            if fam["kind"] == "counter":
                entry["value"] = int(sample["value"])
            out.append(entry)
    return out


def _golden_payload():
    records, snapshot = _golden_run()
    return {"spans": _discrete_trace(records),
            "metrics": _counter_samples(snapshot)}


class TestGoldenTrace:
    def test_trace_matches_golden(self, update_golden):
        payload = _golden_payload()
        if update_golden:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"rewrote {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"{GOLDEN_PATH} missing; run pytest --update-golden"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert payload["spans"] == golden["spans"], (
            "span sequence diverged from golden; if intentional, "
            "regenerate with pytest --update-golden"
        )
        assert payload["metrics"] == golden["metrics"], (
            "metric samples diverged from golden; if intentional, "
            "regenerate with pytest --update-golden"
        )

    def test_run_is_deterministic(self):
        """Two consecutive runs produce the identical discrete trace."""
        assert _golden_payload() == _golden_payload()

    def test_golden_covers_allocator_decision(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        names = [s["name"] for s in golden["spans"]]
        decision = next(s for s in golden["spans"]
                        if s["name"] == "allocator.decision")
        assert decision["attrs"]["admitted"], "no users admitted in golden"
        assert names.index("allocator.allocate") < names.index(
            "allocator.decision"
        ), "decision event must be emitted inside the allocate span"
