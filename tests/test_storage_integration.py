"""Live-server integration tests for the durability-brownout path.

Real TCP loopback sessions against a journaled server whose storage
seam injects faults.  The contract under test (DESIGN.md §16): storage
faults degrade *durability*, never *availability* — the client keeps
its connection and every frame outcome, the session sheds only its
resumability, and the resume token is refused cleanly afterwards.
Marked slow: each test spins up the full encode path.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.observability import get_registry, scoped
from repro.observability.metrics import serving_summary
from repro.serving.protocol import (
    Bye,
    Encoded,
    FrameMsg,
    Hello,
    HelloAck,
    Resume,
    ResumeAck,
    Stats,
    read_message,
    write_message,
)
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.storage import FaultFS, FaultRule

pytestmark = pytest.mark.slow

_W, _H = 48, 32
_GOP = 4


def _frame(index: int) -> bytes:
    y, x = np.mgrid[0:_H, 0:_W]
    return ((x + 2 * y + 7 * index) % 256).astype(np.uint8).tobytes()


def _config(journal_dir: str, fileops=None, **overrides) -> ServeNetConfig:
    return ServeNetConfig(
        port=0, seed=0, gop=_GOP, journal_dir=journal_dir,
        fileops=fileops, journal_retry_backoff_s=0.001,
        durability_probe_s=0.05, **overrides,
    )


async def _stream(port: int, frames: int, client_id: str = "c"):
    """Full HELLO→frames→BYE session; returns (ack, encoded, stats)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, Hello(
            width=_W, height=_H, fps=24.0, num_frames=frames, gop=_GOP,
            client_id=client_id,
        ))
        ack = await read_message(reader)
        assert isinstance(ack, HelloAck) and ack.decision == "accept"
        for i in range(frames):
            await write_message(writer, FrameMsg(
                frame_index=i, width=_W, height=_H, luma=_frame(i),
            ))
        await write_message(writer, Bye("done"))
        encoded, stats = [], None
        while True:
            msg = await read_message(reader)
            if isinstance(msg, Encoded):
                encoded.append(msg)
            elif isinstance(msg, Stats):
                stats = msg.data
            elif isinstance(msg, Bye):
                return ack, encoded, stats
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _try_resume(port: int, token: str) -> ResumeAck:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, Resume(resume_token=token,
                                           have_below=2 * _GOP))
        ack = await read_message(reader)
        assert isinstance(ack, ResumeAck)
        return ack
    finally:
        writer.close()


class TestDurabilityBrownout:
    def test_enospc_browns_out_but_session_completes(self, tmp_path):
        """The ISSUE acceptance drill: persistent ENOSPC mid-session."""
        faultfs = FaultFS(rules=[
            FaultRule(point="journal.append", kind="enospc", after=2),
        ])

        async def run():
            server = NetworkServer(_config(str(tmp_path), faultfs))
            await server.start()
            try:
                ack, encoded, stats = await _stream(
                    server.port, 2 * _GOP, "victim")
                # Availability held: the connection survived and every
                # frame outcome was delivered.
                assert ack.resume_token
                assert len([m for m in encoded if m.dropped is None]) \
                    == 2 * _GOP
                assert stats is not None

                summary = serving_summary(get_registry().to_dict())
                assert summary["durability_brownouts"] >= 1
                assert summary["durability"] == 0.0

                # Resumability was shed cleanly: the token is refused
                # with an explanation, not a hang or a crash.
                rack = await _try_resume(server.port, ack.resume_token)
                assert rack.decision == "reject"
                assert "brownout" in rack.reason
                summary = serving_summary(get_registry().to_dict())
                assert summary["tombstone_rejects"] >= 1
            finally:
                await server.aclose()

        with scoped():
            asyncio.run(asyncio.wait_for(run(), 60))

    def test_transient_eio_is_retried_without_brownout(self, tmp_path):
        faultfs = FaultFS(rules=[
            FaultRule(point="journal.append", kind="eio", count=1),
        ])

        async def run():
            server = NetworkServer(_config(str(tmp_path), faultfs))
            await server.start()
            try:
                ack, encoded, _ = await _stream(server.port, _GOP)
                assert ack.resume_token
                assert len(encoded) == _GOP
                summary = serving_summary(get_registry().to_dict())
                assert summary["journal_retries"] >= 1
                assert summary["durability_brownouts"] == 0
                assert summary["durability"] == 1.0
            finally:
                await server.aclose()

        with scoped():
            asyncio.run(asyncio.wait_for(run(), 60))

    def test_journal_writer_death_browns_out_not_hangs(self, tmp_path):
        """Satellite: the journal-writer thread dying mid-session must
        surface as a typed brownout, never a wedged emit loop."""

        async def run():
            server = NetworkServer(_config(str(tmp_path)))
            await server.start()
            try:
                # Kill the writer out from under the server: every
                # later executor submit raises RuntimeError.
                server._journal_pool.shutdown(wait=True)
                ack, encoded, stats = await _stream(
                    server.port, 2 * _GOP, "orphan")
                assert len(encoded) == 2 * _GOP
                assert stats is not None
                summary = serving_summary(get_registry().to_dict())
                assert summary["durability_brownouts"] >= 1
            finally:
                await server.aclose()

        with scoped():
            asyncio.run(asyncio.wait_for(run(), 60))

    def test_hysteretic_readmission_restores_journaling(self, tmp_path):
        faultfs = FaultFS(rules=[
            # One brownout episode (GOP append + tombstone), then the
            # volume clears.
            FaultRule(point="journal.append", kind="enospc",
                      after=2, count=2),
        ])

        async def run():
            server = NetworkServer(_config(str(tmp_path), faultfs))
            await server.start()
            try:
                await _stream(server.port, 2 * _GOP, "first")
                deadline = asyncio.get_running_loop().time() + 20
                while True:
                    summary = serving_summary(get_registry().to_dict())
                    if summary["durability"] == 1.0 \
                            and summary["durability_readmits"] >= 1:
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                # Journaling is live again for new admissions.
                ack, _, _ = await _stream(server.port, _GOP, "second")
                assert ack.resume_token
            finally:
                await server.aclose()

        with scoped():
            asyncio.run(asyncio.wait_for(run(), 60))

    def test_lease_store_fault_on_admit_degrades_to_unjournaled(
            self, tmp_path):
        faultfs = FaultFS(rules=[
            FaultRule(point="lease.create", kind="enospc"),
        ])

        async def run():
            server = NetworkServer(_config(str(tmp_path), faultfs))
            await server.start()
            try:
                ack, encoded, _ = await _stream(server.port, _GOP)
                # No lease means no resumability — but the session is
                # still admitted and served.
                assert ack.decision == "accept"
                assert ack.resume_token == ""
                assert len(encoded) == _GOP
                summary = serving_summary(get_registry().to_dict())
                assert summary["durability_brownouts"] >= 1
            finally:
                await server.aclose()

        with scoped():
            asyncio.run(asyncio.wait_for(run(), 60))
