"""Tests for HEVC-law quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.quant import (
    MAX_QP,
    MIN_QP,
    dequantize,
    quantization_step,
    quantize,
)


class TestQuantStep:
    def test_qp4_is_unit_step(self):
        assert quantization_step(4) == pytest.approx(1.0)

    def test_doubles_every_six_qp(self):
        for qp in range(MIN_QP, MAX_QP - 5):
            assert quantization_step(qp + 6) == pytest.approx(
                2 * quantization_step(qp)
            )

    @pytest.mark.parametrize("qp", [-1, 52, 100])
    def test_rejects_out_of_range(self, qp):
        with pytest.raises(ValueError):
            quantization_step(qp)

    def test_paper_ladder_spans_expected_range(self):
        """The paper's QP 22..42 ladder spans roughly 8x..80x steps."""
        assert quantization_step(22) == pytest.approx(8.0, rel=0.01)
        assert quantization_step(42) == pytest.approx(80.6, rel=0.01)


class TestQuantize:
    def test_zero_maps_to_zero(self):
        assert quantize(np.zeros((4, 4)), 30).sum() == 0

    def test_sign_symmetry(self, rng):
        coefs = rng.standard_normal((8, 8)) * 50
        np.testing.assert_array_equal(quantize(coefs, 27), -quantize(-coefs, 27))

    def test_reconstruction_error_bounded_by_step(self, rng):
        coefs = rng.standard_normal((16, 8, 8)) * 200
        qp = 30
        step = quantization_step(qp)
        recon = dequantize(quantize(coefs, qp), qp)
        assert np.abs(recon - coefs).max() <= step

    def test_higher_qp_fewer_levels(self, rng):
        coefs = rng.standard_normal((8, 8)) * 40
        nz_low = np.count_nonzero(quantize(coefs, 22))
        nz_high = np.count_nonzero(quantize(coefs, 42))
        assert nz_high <= nz_low

    def test_levels_are_integers(self, rng):
        levels = quantize(rng.standard_normal((4, 4)) * 10, 35)
        assert levels.dtype == np.int32

    @given(st.integers(MIN_QP, MAX_QP))
    @settings(max_examples=20, deadline=None)
    def test_small_coefficients_quantize_to_zero(self, qp):
        """Coefficients below (1 - offset) * step must vanish."""
        step = quantization_step(qp)
        coefs = np.array([0.74 * step, -0.74 * step])
        assert quantize(coefs, qp).tolist() == [0, 0]

    @given(st.integers(MIN_QP, MAX_QP),
           st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_property(self, qp, value):
        step = quantization_step(qp)
        recon = dequantize(quantize(np.array([value]), qp), qp)[0]
        assert abs(recon - value) <= step
