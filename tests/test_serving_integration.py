"""Loopback integration tests for the network serving layer.

Real asyncio server, real TCP sockets on 127.0.0.1, real concurrent
clients.  Marked slow: each test spins up the full encode path.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.codec.config import EncoderConfig, GopConfig
from repro.observability import scoped
from repro.platform.mpsoc import MpsocConfig
from repro.resilience.degradation import ResilienceConfig
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.protocol import (
    Bye,
    Encoded,
    FrameMsg,
    Hello,
    HelloAck,
    Stats,
    read_message,
    write_message,
)
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, generate_video

pytestmark = pytest.mark.slow

_W = _H = 64
_FRAMES = 16  # two GOPs at gop=8


class _FixedEstimator:
    """Prices every session at a fixed per-frame CPU time."""

    def __init__(self, cpu_per_frame: float):
        self.cpu_per_frame = cpu_per_frame

    def estimate(self, key, area):
        return self.cpu_per_frame


def _tight_admission(park_capacity: int = 0) -> AdmissionController:
    """One core; each session prices at 0.45 cores, so two fit and the
    third exceeds the slot cap."""
    return AdmissionController(
        estimator=_FixedEstimator(0.45 / 24.0),
        platform=MpsocConfig(num_sockets=1, cores_per_socket=1),
        policy=AdmissionPolicy(park_capacity=park_capacity),
    )


async def _stream_session(port: int, video, content: ContentClass):
    """Full client session; returns (ack, encoded messages, stats)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, Hello(
            width=_W, height=_H, fps=24.0, num_frames=len(video.frames),
            gop=8, content_class=content.value,
        ))
        ack = await read_message(reader)
        assert isinstance(ack, HelloAck)
        if ack.decision != "accept":
            return ack, [], None
        for frame in video.frames:
            await write_message(writer, FrameMsg(
                frame_index=frame.index, width=_W, height=_H,
                luma=frame.luma.tobytes(),
            ))
        await write_message(writer, Bye("done"))
        encoded, stats = [], None
        while True:
            msg = await read_message(reader)
            if isinstance(msg, Encoded):
                encoded.append(msg)
            elif isinstance(msg, Stats):
                stats = msg.data
            elif isinstance(msg, Bye):
                return ack, encoded, stats
            else:
                raise AssertionError(f"unexpected {msg!r}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _offline_reference(video, content: ContentClass):
    """The offline StreamTranscoder path with the server's per-session
    pipeline configuration."""
    config = PipelineConfig(
        fps=24.0, gop=GopConfig(8),
        base_config=EncoderConfig(qp=32, search="hexagon",
                                  search_window=64),
        content_class=content, resilience=ResilienceConfig(),
    )
    with StreamTranscoder(config) as t:
        session = t.open_session()
        outputs = []
        for frame in video.frames:
            outputs.extend(session.push(frame))
        outputs.extend(session.finish())
    return outputs


class TestLoopback:
    def test_concurrent_sessions_bit_identical_to_offline(self):
        contents = [ContentClass.BRAIN, ContentClass.BONE]
        videos = [
            generate_video(c, width=_W, height=_H, num_frames=_FRAMES,
                           seed=11 + i)
            for i, c in enumerate(contents)
        ]

        async def run():
            server = NetworkServer(ServeNetConfig(port=0))
            await server.start()
            try:
                return await asyncio.gather(*(
                    _stream_session(server.port, v, c)
                    for v, c in zip(videos, contents)
                ))
            finally:
                await server.aclose()

        with scoped():
            results = asyncio.run(run())

        for (ack, encoded, stats), video, content in zip(
                results, videos, contents):
            assert ack.decision == "accept"
            assert stats is not None and stats["frames_encoded"] == _FRAMES
            assert len(encoded) == _FRAMES
            with scoped():
                reference = _offline_reference(video, content)
            assert len(reference) == _FRAMES
            by_index = {m.frame_index: m for m in encoded}
            for ref in reference:
                msg = by_index[ref.frame_index]
                assert msg.dropped is None
                assert msg.frame_type == ref.frame_type.value
                assert msg.bits == ref.record.bits
                # The decoded output over the wire is bit-identical to
                # the offline path's reconstruction.
                assert msg.luma == ref.reconstruction.tobytes()
                plane = np.frombuffer(msg.luma, dtype=np.uint8).reshape(
                    _H, _W)
                assert np.array_equal(plane, ref.reconstruction)

    def test_admission_rejects_session_over_slot_cap(self):
        async def run():
            server = NetworkServer(
                ServeNetConfig(port=0), admission=_tight_admission()
            )
            await server.start()
            acks = []
            conns = []
            try:
                for _ in range(3):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port)
                    conns.append(writer)
                    await write_message(writer, Hello(
                        width=_W, height=_H, fps=24.0))
                    acks.append(await read_message(reader))
                return acks
            finally:
                for writer in conns:
                    writer.close()
                await server.aclose()

        with scoped():
            acks = asyncio.run(run())
        assert [a.decision for a in acks] == ["accept", "accept", "reject"]
        assert "slot cap exceeded" in acks[2].reason

    def test_parked_session_admitted_when_capacity_frees(self):
        video = generate_video(ContentClass.LUNG, width=_W, height=_H,
                               num_frames=8, seed=3)

        async def run():
            server = NetworkServer(
                ServeNetConfig(port=0, park_timeout_s=30.0),
                admission=_tight_admission(park_capacity=1),
            )
            await server.start()
            try:
                # Two sessions occupy the whole slot cap.
                r1, w1 = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                r2, w2 = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                for w in (w1, w2):
                    await write_message(w, Hello(width=_W, height=_H,
                                                 fps=24.0))
                a1 = await read_message(r1)
                a2 = await read_message(r2)
                assert (a1.decision, a2.decision) == ("accept", "accept")
                # The third parks...
                r3, w3 = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                await write_message(w3, Hello(width=_W, height=_H,
                                              fps=24.0))
                a3 = await read_message(r3)
                assert a3.decision == "park"
                # ...until session 1 completes and frees its capacity.
                await write_message(w1, Bye("done"))
                while not isinstance(await read_message(r1), Bye):
                    pass
                a3b = await read_message(r3)
                for w in (w1, w2, w3):
                    w.close()
                return a3b
            finally:
                await server.aclose()

        with scoped():
            final = asyncio.run(run())
        assert final.decision == "accept"

    def test_backpressure_keeps_queue_depth_bounded(self):
        frames = 24
        video = generate_video(ContentClass.BRAIN, width=_W, height=_H,
                               num_frames=frames, seed=5)

        async def run():
            server = NetworkServer(ServeNetConfig(
                port=0, queue_frames=4, egress_frames=4,
            ))
            await server.start()
            try:
                return await _stream_session(
                    server.port, video, ContentClass.BRAIN)
            finally:
                await server.aclose()

        with scoped():
            ack, encoded, stats = asyncio.run(run())
        assert ack.decision == "accept"
        assert ack.queue_frames == 4
        assert stats is not None
        # The configured bounds hold even with the client flooding.
        assert stats["peak_ingest_depth"] <= 4
        assert stats["peak_egress_depth"] <= 4
        # Accounting closes: every received frame was encoded or
        # dropped with a reason.
        drops = stats["frames_dropped"]
        assert stats["frames_received"] == frames
        assert (stats["frames_encoded"] + drops["backpressure"]
                + drops["corrupt"] + drops["deadline"]) == frames

    def test_loadgen_against_live_server(self):
        async def run():
            server = NetworkServer(ServeNetConfig(port=0, seed=3))
            await server.start()
            try:
                return await run_loadgen_async(LoadGenConfig(
                    port=server.port, sessions=3, frames=16, width=_W,
                    height=_H, seed=3, arrival="burst", burst_size=2,
                    rate_hz=50.0,
                ))
            finally:
                await server.aclose()

        with scoped():
            report = asyncio.run(run())
        assert report.accepted == 3
        assert report.protocol_errors == 0
        assert report.errored == 0
        assert report.frames_encoded > 0
        d = report.to_dict()
        assert d["latency_p95_s"] >= d["latency_p50_s"] > 0
