"""Unit tests for the storage-fault layer (DESIGN.md §16).

The taxonomy must classify raw ``OSError``\\ s into retryable vs
brownout-worthy; the retry helper must be bounded and only retry
transient verdicts; the FaultFS shim must inject deterministically and
be a behavioural no-op when idle; the crash-point recorder must replay
any prefix bit-identically; and every loader with a FaultFS seam must
keep its crash-atomicity contract under injected faults.
"""

from __future__ import annotations

import errno
import json
import os

import pytest

from repro.observability.metrics import MetricsRegistry, serving_summary
from repro.policy.manager import PolicyManager
from repro.resilience.checkpoint import load_lut, save_lut
from repro.serving.recovery import SessionJournal, read_journal
from repro.storage import (
    CrashPointRecorder,
    DurabilityMonitor,
    FaultFS,
    FaultRule,
    FsyncFailedError,
    REAL_FILEOPS,
    RetryPolicy,
    StorageError,
    StorageFullError,
    StorageIOError,
    TornWriteError,
    classify_os_error,
    run_with_retries,
)
from repro.resilience.errors import TranscodeError
from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import FrameType
from repro.workload.lut import WorkloadKey, WorkloadLut


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------
def test_storage_error_is_both_transcode_and_os_error():
    exc = StorageError("boom", point="journal.append")
    assert isinstance(exc, TranscodeError)
    assert isinstance(exc, OSError)
    assert "journal.append" in str(exc)


@pytest.mark.parametrize("code,cls,transient", [
    (errno.ENOSPC, StorageFullError, False),
    (getattr(errno, "EDQUOT", errno.ENOSPC), StorageFullError, False),
    (errno.EIO, StorageIOError, True),
    (errno.EAGAIN, StorageIOError, True),
    (errno.EINTR, StorageIOError, True),
])
def test_classify_known_errnos(code, cls, transient):
    raw = OSError(code, os.strerror(code))
    wrapped = classify_os_error(raw, point="lease.create")
    assert isinstance(wrapped, cls)
    assert wrapped.transient is transient
    assert wrapped.point == "lease.create"
    assert wrapped.errno == code


def test_classify_unknown_errno_is_persistent():
    # An unrecognised failure mode has not earned a retry.
    wrapped = classify_os_error(OSError(errno.EPERM, "nope"))
    assert isinstance(wrapped, StorageIOError)
    assert wrapped.transient is False


def test_classify_passes_existing_storage_error_through():
    original = StorageFullError("full", point="x")
    assert classify_os_error(original) is original


def test_fsync_and_torn_verdicts():
    assert FsyncFailedError("f").transient is False
    assert TornWriteError("t").transient is True


# ----------------------------------------------------------------------
# Bounded retry
# ----------------------------------------------------------------------
def test_retry_recovers_from_transient_fault():
    calls, retries = [], []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise StorageIOError("injected", point="p")
        return "ok"

    result = run_with_retries(
        flaky, RetryPolicy(attempts=3, backoff_s=0.0),
        on_retry=retries.append, sleep=lambda _s: None,
    )
    assert result == "ok"
    assert len(calls) == 3
    assert [e.point for e in retries] == ["p", "p"]


def test_retry_never_retries_persistent_faults():
    calls = []

    def full():
        calls.append(1)
        raise StorageFullError("disk full")

    with pytest.raises(StorageFullError):
        run_with_retries(full, RetryPolicy(attempts=5, backoff_s=0.0),
                         sleep=lambda _s: None)
    assert len(calls) == 1  # ENOSPC is not worth a second attempt


def test_retry_exhaustion_reraises():
    def always():
        raise StorageIOError("still broken")

    with pytest.raises(StorageIOError):
        run_with_retries(always, RetryPolicy(attempts=2, backoff_s=0.0),
                         sleep=lambda _s: None)


def test_retry_policy_backoff_grows():
    policy = RetryPolicy(attempts=3, backoff_s=0.01, multiplier=2.0)
    assert policy.delay(1) == pytest.approx(0.02)
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)


# ----------------------------------------------------------------------
# FaultFS injection
# ----------------------------------------------------------------------
def test_faultfs_enospc_schedule(tmp_path):
    ffs = FaultFS(rules=[FaultRule(point="a.write", kind="enospc",
                                   after=1, count=1)])
    target = tmp_path / "f"
    ffs.write_file(target, b"one\n", point="a.write")  # after=1: passes
    with pytest.raises(StorageFullError) as exc_info:
        ffs.write_file(target, b"two\n", point="a.write")
    assert exc_info.value.point == "a.write"
    ffs.write_file(target, b"three\n", point="a.write")  # count exhausted
    assert ffs.injected == {("a.write", "enospc"): 1}
    assert target.read_bytes() == b"three\n"


def test_faultfs_point_patterns_are_fnmatch(tmp_path):
    ffs = FaultFS(rules=[FaultRule(point="journal.*", kind="eio")])
    with pytest.raises(StorageIOError):
        ffs.write_file(tmp_path / "j", b"x", point="journal.append")
    # A non-matching point is untouched.
    ffs.write_file(tmp_path / "k", b"x", point="lease.create")


def test_faultfs_torn_write_leaves_partial_bytes(tmp_path):
    ffs = FaultFS(rules=[FaultRule(point="w", kind="torn",
                                   torn_fraction=0.5)])
    target = tmp_path / "f"
    with pytest.raises(TornWriteError):
        ffs.write_file(target, b"abcdefgh", point="w")
    assert target.read_bytes() == b"abcd"  # the crash signature is real


def test_faultfs_fsync_rule_only_hits_sync_calls(tmp_path):
    ffs = FaultFS(rules=[FaultRule(point="j.*", kind="fsync")])
    handle = ffs.append_open(tmp_path / "j", point="j.open")
    try:
        ffs.append(handle, b"rec\n", point="j.append")  # write untouched
        with pytest.raises(FsyncFailedError):
            ffs.fsync_handle(handle, point="j.fsync")
    finally:
        handle.close()


def test_faultfs_idle_is_passthrough(tmp_path):
    ffs = FaultFS()
    target = tmp_path / "f"
    ffs.write_file(target, b"data", point="p")
    assert ffs.read_bytes(target, point="p") == b"data"
    ffs.replace(target, tmp_path / "g", point="p")
    assert (tmp_path / "g").read_bytes() == b"data"
    assert ffs.injected == {}


# ----------------------------------------------------------------------
# Crash-point recording + materialization
# ----------------------------------------------------------------------
def test_recorder_replays_any_prefix(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    ffs = FaultFS(root=root, record=True)
    handle = ffs.append_open(root / "s.journal", point="journal.create")
    ffs.append(handle, b"r0\n", point="journal.append")
    ffs.append(handle, b"r1\n", point="journal.append")
    handle.close()
    ffs.write_file(root / "lut.tmp", b"{}", point="lut.stage")
    ffs.replace(root / "lut.tmp", root / "lut.json", point="lut.publish")
    ffs.unlink(root / "s.journal", point="journal.unlink")

    recorder = ffs.recorder
    assert recorder.point_counts() == {
        "journal.append": 2, "journal.create": 1, "journal.unlink": 1,
        "lut.publish": 1, "lut.stage": 1,
    }

    # Prefix 3: journal has both records, LUT not yet staged.
    state = tmp_path / "crash3"
    state.mkdir()
    recorder.materialize(3, state)
    assert (state / "s.journal").read_bytes() == b"r0\nr1\n"
    assert not (state / "lut.json").exists()

    # Full replay: journal unlinked, LUT published, staging gone.
    state = tmp_path / "crashN"
    state.mkdir()
    recorder.materialize(len(recorder.ops), state)
    assert not (state / "s.journal").exists()
    assert not (state / "lut.tmp").exists()
    assert (state / "lut.json").read_bytes() == b"{}"


def test_recorder_torn_materialization(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    ffs = FaultFS(root=root, record=True)
    handle = ffs.append_open(root / "s.journal", point="journal.create")
    ffs.append(handle, b"r0\n", point="journal.append")
    ffs.append(handle, b"r1-longer\n", point="journal.append")
    handle.close()

    state = tmp_path / "torn"
    state.mkdir()
    # Crash mid-way through the second append: first record plus a tail.
    ffs.recorder.materialize(2, state, torn_bytes=3)
    assert (state / "s.journal").read_bytes() == b"r0\nr1-"
    with pytest.raises(ValueError):
        ffs.recorder.materialize(0, state, torn_bytes=1)  # create: atomic


def test_recorder_ignores_paths_outside_root(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    ffs = FaultFS(root=root, record=True)
    ffs.write_file(tmp_path / "outside", b"x", point="other.write")
    assert ffs.recorder.ops == []


# ----------------------------------------------------------------------
# Durability brownout state machine
# ----------------------------------------------------------------------
def test_durability_monitor_transitions_once():
    monitor = DurabilityMonitor(readmit_successes=2)
    assert monitor.healthy
    assert monitor.record_failure(StorageFullError("full")) is True
    assert not monitor.healthy
    # Further failures while browned out are not new episodes.
    assert monitor.record_failure(StorageFullError("full")) is False


def test_durability_monitor_readmits_hysteretically():
    monitor = DurabilityMonitor(readmit_successes=3)
    monitor.record_failure(StorageIOError("io"))
    assert monitor.record_success() is False
    assert monitor.record_success() is False
    assert monitor.record_success() is True  # third clean probe readmits
    assert monitor.healthy
    # A failure mid-streak resets the hysteresis.
    monitor.record_failure(StorageIOError("io"))
    assert monitor.record_success() is False
    assert monitor.record_failure(StorageIOError("io")) is False
    assert monitor.record_success() is False
    assert monitor.record_success() is False
    assert monitor.record_success() is True


# ----------------------------------------------------------------------
# Journal append under injected faults (retry + rollback)
# ----------------------------------------------------------------------
def test_journal_append_retries_transient_eio(tmp_path):
    retries = []
    ffs = FaultFS(rules=[FaultRule(point="journal.append", kind="eio",
                                   count=1)])
    journal = SessionJournal(tmp_path / "s.journal", fsync=False,
                             fileops=ffs,
                             retry=RetryPolicy(attempts=3, backoff_s=0.0),
                             on_retry=retries.append)
    with journal:
        journal.append("admit", {"w": 1})
        journal.append("gop", {"i": 0})
    assert len(retries) == 1
    result = read_journal(tmp_path / "s.journal")
    assert [k for k, _ in result.records] == ["admit", "gop"]
    assert result.reason == "ok"


def test_journal_torn_append_rolls_back_then_retries(tmp_path):
    # A torn write must not leave its partial bytes welded into the
    # file: the rollback truncates before the retry re-appends.
    ffs = FaultFS(rules=[FaultRule(point="journal.append", kind="torn",
                                   after=1, count=1)])
    journal = SessionJournal(tmp_path / "s.journal", fsync=False,
                             fileops=ffs,
                             retry=RetryPolicy(attempts=2, backoff_s=0.0))
    with journal:
        journal.append("admit", {"w": 1})
        journal.append("gop", {"i": 0})
    result = read_journal(tmp_path / "s.journal", strict=True)
    assert [k for k, _ in result.records] == ["admit", "gop"]


def test_journal_enospc_propagates_typed(tmp_path):
    ffs = FaultFS(rules=[FaultRule(point="journal.append",
                                   kind="enospc")])
    journal = SessionJournal(tmp_path / "s.journal", fsync=False,
                             fileops=ffs,
                             retry=RetryPolicy(attempts=3, backoff_s=0.0))
    with journal, pytest.raises(StorageFullError):
        journal.append("admit", {"w": 1})


# ----------------------------------------------------------------------
# LUT checkpoint: staged publish stays crash-atomic under faults
# ----------------------------------------------------------------------
def _small_lut(cpu_time: float = 0.01) -> WorkloadLut:
    lut = WorkloadLut()
    lut.observe(WorkloadKey(
        texture=TextureClass.MEDIUM, motion=MotionClass.LOW, qp=32,
        search_window=16, frame_type=FrameType.P, area_bucket=10,
        content_class=None,
    ), cpu_time)
    return lut


def test_lut_publish_fault_keeps_previous_checkpoint(tmp_path):
    path = tmp_path / "lut.json"
    save_lut(_small_lut(), path)
    before = path.read_bytes()

    newer = _small_lut(cpu_time=0.02)
    ffs = FaultFS(rules=[FaultRule(point="lut.publish", kind="eio")])
    with pytest.raises(StorageIOError):
        save_lut(newer, path, fileops=ffs)
    # The publish rename never happened: the old checkpoint is intact.
    assert path.read_bytes() == before
    assert load_lut(path, fileops=REAL_FILEOPS).recovered


def test_lut_stage_fault_keeps_previous_checkpoint(tmp_path):
    path = tmp_path / "lut.json"
    save_lut(_small_lut(), path)
    before = path.read_bytes()
    ffs = FaultFS(rules=[FaultRule(point="lut.stage", kind="torn",
                                   torn_fraction=0.3)])
    with pytest.raises(TornWriteError):
        save_lut(_small_lut(), path, fileops=ffs)
    assert path.read_bytes() == before


# ----------------------------------------------------------------------
# Policy hot reload: a torn rewrite must not evict the active policy
# ----------------------------------------------------------------------
_POLICY = {
    "version": 1,
    "power_cap_w": 140,
    "default_tenant": "general",
    "tenants": [{"name": "general", "tier": "routine", "weight": 2}],
}


def test_policy_torn_rewrite_keeps_active_policy(tmp_path):
    path = tmp_path / "policy.json"
    full = json.dumps(_POLICY).encode()
    path.write_bytes(full)
    manager = PolicyManager(str(path))
    active = manager.active
    assert active is not None

    # A crash mid-rewrite leaves a torn prefix with a fresh mtime.
    path.write_bytes(full[: len(full) // 2])
    os.utime(path, (1.0, 1.0))
    assert manager.maybe_reload() is None
    assert manager.active is active  # old policy stays enforced
    assert manager.reload_errors == 1
    assert manager.last_error

    # The repaired file reloads cleanly afterwards.
    fixed = dict(_POLICY, power_cap_w=120)
    path.write_bytes(json.dumps(fixed).encode())
    os.utime(path, (2.0, 2.0))
    assert manager.maybe_reload() is not None
    assert manager.active.power_cap_w == 120
    assert manager.reload_errors == 1


def test_policy_read_fault_counts_as_reload_error(tmp_path):
    path = tmp_path / "policy.json"
    path.write_bytes(json.dumps(_POLICY).encode())
    ffs = FaultFS(rules=[FaultRule(point="policy.read", kind="eio",
                                   after=1)])
    manager = PolicyManager(str(path), fileops=ffs)
    os.utime(path, (1.0, 1.0))
    assert manager.maybe_reload() is None
    assert manager.reload_errors == 1
    assert manager.active is not None


# ----------------------------------------------------------------------
# Metrics surface
# ----------------------------------------------------------------------
def test_serving_summary_storage_defaults_are_stable():
    # A snapshot from a server that never browned out (or predates the
    # storage counters) must read as fully durable with zero events.
    registry = MetricsRegistry()
    registry.inc("repro_serving_sessions_total")
    summary = serving_summary(registry.to_dict())
    assert summary is not None
    assert summary["durability"] == 1.0
    assert summary["durability_brownouts"] == 0
    assert summary["durability_readmits"] == 0
    assert summary["tombstone_rejects"] == 0
    assert summary["journal_retries"] == 0


def test_serving_summary_reports_brownout_state():
    registry = MetricsRegistry()
    registry.inc("repro_serving_sessions_total")
    registry.set_gauge("repro_serving_durability", 0.0)
    registry.inc("repro_serving_durability_brownouts_total")
    registry.inc("repro_serving_journal_retries_total", 3)
    summary = serving_summary(registry.to_dict())
    assert summary["durability"] == 0.0
    assert summary["durability_brownouts"] == 1
    assert summary["journal_retries"] == 3
