"""Unit tests for the externalized session state store.

The single-owner lease protocol is what makes cross-worker session
adoption safe: a journal admits exactly one writer, so the lease must
grant exactly one owner per token under every interleaving — two live
workers racing, a stale lease whose owner died, and the torn lease
file a crash leaves behind mid-write.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import pytest

from repro.resilience.errors import LeaseHeldError
from repro.serving.statestore import (
    LEASE_SUFFIX,
    SharedDirStateStore,
    pid_alive,
)


def _store(root, owner: str, pid: int = 0, **kwargs) -> SharedDirStateStore:
    return SharedDirStateStore(
        root, fsync=False, owner=owner, pid=pid or os.getpid(), **kwargs
    )


def _dead_pid() -> int:
    """A real pid that is guaranteed dead (spawned, exited, reaped)."""
    process = multiprocessing.get_context("spawn").Process(target=int)
    process.start()
    process.join()
    assert process.pid is not None
    return process.pid


class TestLeaseProtocol:
    def test_fresh_acquire_grants(self, tmp_path):
        store = _store(tmp_path, "w0:1")
        lease = store.acquire("tok")
        assert lease.owner == "w0:1"
        assert not lease.reclaimed
        assert lease.previous_owner == ""
        assert os.path.exists(store.lease_path("tok"))

    def test_reacquire_own_lease_is_idempotent(self, tmp_path):
        store = _store(tmp_path, "w0:1")
        store.acquire("tok")
        again = store.acquire("tok")
        assert again.owner == "w0:1"

    def test_live_foreign_lease_raises_typed_error(self, tmp_path):
        holder = _store(tmp_path, "w0:1")
        holder.acquire("tok")
        contender = _store(tmp_path, "w1:2")
        with pytest.raises(LeaseHeldError) as exc:
            contender.acquire("tok")
        assert exc.value.token == "tok"
        assert exc.value.owner == "w0:1"
        assert exc.value.pid == holder.pid

    def test_two_stores_racing_exactly_one_wins(self, tmp_path):
        """N threads x 2 owners hammer one token: one winner each time."""
        a = _store(tmp_path, "w0:a")
        b = _store(tmp_path, "w1:b")
        for round_no in range(20):
            token = f"tok-{round_no}"
            outcomes = {}
            barrier = threading.Barrier(2)

            def attempt(store, key):
                barrier.wait()
                try:
                    store.acquire(token)
                    outcomes[key] = "won"
                except LeaseHeldError:
                    outcomes[key] = "lost"

            threads = [
                threading.Thread(target=attempt, args=(store, key))
                for key, store in (("a", a), ("b", b))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(outcomes.values()) == ["lost", "won"], outcomes
            winner = a if outcomes["a"] == "won" else b
            info = winner.lease_info(token)
            assert info is not None and info["owner"] == winner.owner

    def test_stale_lease_dead_pid_is_reclaimed(self, tmp_path):
        dead = _dead_pid()
        crashed = _store(tmp_path, "w0:dead", pid=dead)
        crashed.acquire("tok")
        assert not pid_alive(dead)
        survivor = _store(tmp_path, "w1:live")
        lease = survivor.acquire("tok")
        assert lease.reclaimed
        assert lease.previous_owner == "w0:dead"
        info = survivor.lease_info("tok")
        assert info is not None and info["owner"] == "w1:live"

    @pytest.mark.parametrize("debris", [
        b"",                                   # zero-length: crash at open
        b'{"checksum":"deadbeef","token"',     # truncated mid-write
        b"\x00\xff garbage not json\n",        # scribbled block
        b'{"checksum":"0000","token":"tok","owner":"x","pid":1}\n',
    ])
    def test_torn_lease_file_is_reclaimable(self, tmp_path, debris):
        store = _store(tmp_path, "w1:live")
        with open(store.lease_path("tok"), "wb") as fh:
            fh.write(debris)
        lease = store.acquire("tok")
        assert lease.reclaimed
        assert lease.previous_owner == ""  # debris names no valid owner
        info = store.lease_info("tok")
        assert info is not None and info["owner"] == "w1:live"

    def test_release_only_drops_own_lease(self, tmp_path):
        holder = _store(tmp_path, "w0:1")
        holder.acquire("tok")
        other = _store(tmp_path, "w1:2")
        other.release("tok")  # no-op: not the holder
        assert holder.lease_info("tok") is not None
        holder.release("tok")
        assert holder.lease_info("tok") is None
        holder.release("tok")  # releasing an unheld token is a no-op

    def test_lease_info_reports_owner_liveness(self, tmp_path):
        live = _store(tmp_path, "w0:live")
        live.acquire("alive-tok")
        dead = _store(tmp_path, "w1:dead", pid=_dead_pid())
        dead.acquire("dead-tok")
        assert live.lease_info("alive-tok")["alive"] is True
        assert live.lease_info("dead-tok")["alive"] is False
        assert live.lease_info("never-leased") is None

    def test_break_owner_frees_only_that_pid(self, tmp_path):
        doomed = _store(tmp_path, "w0:doomed", pid=_dead_pid())
        doomed.acquire("t1")
        doomed.acquire("t2")
        bystander = _store(tmp_path, "w1:fine")
        bystander.acquire("t3")
        freed = bystander.break_owner(doomed.pid)
        assert freed == ["t1", "t2"]
        assert bystander.lease_info("t1") is None
        assert bystander.lease_info("t3") is not None

    def test_disabled_leases_are_no_ops(self, tmp_path):
        a = _store(tmp_path, "w0:1", lease=False)
        b = _store(tmp_path, "w1:2", lease=False)
        a.acquire("tok")
        b.acquire("tok")  # no conflict: protocol is off
        assert not os.path.exists(a.lease_path("tok"))


class TestStoreHousekeeping:
    def test_discard_removes_lease_and_lock_sidecars(self, tmp_path):
        store = _store(tmp_path, "w0:1")
        token = store.new_token(1)
        journal = store.create(token)
        journal.close()
        store.acquire(token)
        assert os.path.exists(store.lease_path(token))
        store.discard(token)
        assert not os.path.exists(store.path_for(token))
        assert not os.path.exists(store.lease_path(token))
        assert not os.path.exists(store._lock_path(token))

    def test_lease_files_are_not_journal_tokens(self, tmp_path):
        store = _store(tmp_path, "w0:1")
        token = store.new_token(1)
        store.create(token).close()
        store.acquire(token)
        assert store.tokens() == [token]

    def test_concurrent_lut_saves_do_not_collide(self, tmp_path):
        from repro.workload.lut import WorkloadLut

        a = _store(tmp_path, "w0:1", pid=111)
        b = _store(tmp_path, "w1:2", pid=222)
        errors = []

        def save(store):
            try:
                for _ in range(25):
                    store.save_lut(WorkloadLut())
            except OSError as exc:  # the fixed-tmp-name race mode
                errors.append(exc)

        threads = [threading.Thread(target=save, args=(s,))
                   for s in (a, b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert a.load_lut().recovered

    def test_break_owner_sweeps_torn_leases(self, tmp_path):
        store = _store(tmp_path, "w0:1")
        with open(os.path.join(store.root, f"torn{LEASE_SUFFIX}"),
                  "wb") as fh:
            fh.write(b"partial")
        assert store.break_owner(_dead_pid()) == ["torn"]
