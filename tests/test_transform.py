"""Tests for the DCT transform and block (de)interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.transform import (
    TRANSFORM_SIZE,
    blockify,
    forward_dct,
    inverse_dct,
    unblockify,
)


class TestDct:
    def test_roundtrip_identity(self, rng):
        blocks = rng.standard_normal((5, 8, 8)) * 100
        recovered = inverse_dct(forward_dct(blocks))
        np.testing.assert_allclose(recovered, blocks, atol=1e-9)

    def test_dc_coefficient_of_constant_block(self):
        block = np.full((1, 8, 8), 10.0)
        coefs = forward_dct(block)
        # Orthonormal DCT: DC = mean * N = 10 * 8.
        assert coefs[0, 0, 0] == pytest.approx(80.0)
        assert np.abs(coefs[0].ravel()[1:]).max() < 1e-9

    def test_energy_preservation(self, rng):
        """Parseval: orthonormal transform preserves L2 energy."""
        block = rng.standard_normal((3, 8, 8))
        coefs = forward_dct(block)
        np.testing.assert_allclose(
            (block ** 2).sum(axis=(1, 2)), (coefs ** 2).sum(axis=(1, 2))
        )

    def test_energy_compaction_on_smooth_ramp(self):
        """A smooth ramp concentrates energy in low frequencies."""
        ramp = np.outer(np.arange(8), np.ones(8))[None]
        coefs = forward_dct(ramp)[0]
        low = np.abs(coefs[:2, :2]).sum()
        high = np.abs(coefs[4:, 4:]).sum()
        assert low > 10 * high

    @given(
        arrays(np.float64, (2, 8, 8),
               elements=st.floats(-255, 255, allow_nan=False))
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, blocks):
        np.testing.assert_allclose(
            inverse_dct(forward_dct(blocks)), blocks, atol=1e-6
        )


class TestBlockify:
    def test_blockify_shape_and_order(self):
        region = np.arange(16 * 24).reshape(16, 24)
        blocks = blockify(region, 8)
        assert blocks.shape == (6, 8, 8)
        # Row-major: first block is the top-left 8x8.
        np.testing.assert_array_equal(blocks[0], region[:8, :8])
        np.testing.assert_array_equal(blocks[1], region[:8, 8:16])
        np.testing.assert_array_equal(blocks[3], region[8:, :8])

    def test_blockify_rejects_unaligned(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((12, 16)), 8)

    def test_unblockify_inverse(self, rng):
        region = rng.integers(0, 255, size=(24, 16)).astype(np.float64)
        blocks = blockify(region, 8)
        np.testing.assert_array_equal(unblockify(blocks, 24, 16, 8), region)

    def test_unblockify_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            unblockify(np.zeros((3, 8, 8)), 16, 16, 8)

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=16, deadline=None)
    def test_blockify_roundtrip_property(self, rows, cols):
        rng = np.random.default_rng(rows * 7 + cols)
        h, w = rows * TRANSFORM_SIZE, cols * TRANSFORM_SIZE
        region = rng.standard_normal((h, w))
        np.testing.assert_array_equal(
            unblockify(blockify(region), h, w), region
        )
