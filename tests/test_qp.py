"""Tests for per-tile QP selection and Algorithm 1 adaptation."""

import pytest

from repro.analysis.texture import TextureClass
from repro.qp.adaptation import QpAdapter, TileQualityFeedback
from repro.qp.defaults import (
    DELTA_QP,
    QP_LADDER,
    QP_MAX,
    QP_MIN,
    QualityConstraints,
    default_qp,
)


class TestDefaults:
    def test_paper_default_qps(self):
        assert default_qp(TextureClass.LOW) == 37
        assert default_qp(TextureClass.MEDIUM) == 32
        assert default_qp(TextureClass.HIGH) == 27

    def test_ladder_covers_paper_values(self):
        assert set(QP_LADDER) == {22, 27, 32, 37, 42}
        assert QP_MIN == 22 and QP_MAX == 42

    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            QualityConstraints(psnr_margin=-1)
        with pytest.raises(ValueError):
            QualityConstraints(bitrate_constraint_mbps=0)


class TestAlgorithm1:
    def setup_method(self):
        self.constraints = QualityConstraints(psnr_constraint=38.0, psnr_margin=2.0)
        self.adapter = QpAdapter(self.constraints)

    def test_no_feedback_uses_texture_default(self):
        qp = self.adapter.adapt(0, TextureClass.HIGH, None)
        assert qp == 27

    def test_overshoot_increases_qp(self):
        """PSNR above constraint + margin -> QP += dQP (spend less)."""
        self.adapter.adapt(0, TextureClass.MEDIUM, None)  # 32
        qp = self.adapter.adapt(
            0, TextureClass.MEDIUM, TileQualityFeedback(psnr_db=45.0, bits=100)
        )
        assert qp == 32 + DELTA_QP

    def test_undershoot_decreases_qp(self):
        """PSNR below constraint -> QP -= dQP (spend more)."""
        self.adapter.adapt(0, TextureClass.MEDIUM, None)
        qp = self.adapter.adapt(
            0, TextureClass.MEDIUM, TileQualityFeedback(psnr_db=36.0, bits=100)
        )
        assert qp == 32 - DELTA_QP

    def test_within_band_returns_default(self):
        self.adapter.adapt(0, TextureClass.LOW, None)
        qp = self.adapter.adapt(
            0, TextureClass.LOW, TileQualityFeedback(psnr_db=39.0, bits=100)
        )
        assert qp == default_qp(TextureClass.LOW)

    def test_clamped_at_ladder_extremes(self):
        self.adapter.adapt(0, TextureClass.LOW, None)  # 37
        for _ in range(5):
            qp = self.adapter.adapt(
                0, TextureClass.LOW, TileQualityFeedback(psnr_db=60.0, bits=1)
            )
        assert qp == QP_MAX
        for _ in range(8):
            qp = self.adapter.adapt(
                0, TextureClass.LOW, TileQualityFeedback(psnr_db=10.0, bits=1)
            )
        assert qp == QP_MIN

    def test_adaptation_is_per_tile(self):
        self.adapter.adapt(0, TextureClass.MEDIUM, None)
        self.adapter.adapt(1, TextureClass.MEDIUM, None)
        qp0 = self.adapter.adapt(
            0, TextureClass.MEDIUM, TileQualityFeedback(psnr_db=50.0, bits=1)
        )
        qp1 = self.adapter.current_qp(1, TextureClass.MEDIUM)
        assert qp0 == 37
        assert qp1 == 32

    def test_reset_clears_state(self):
        self.adapter.adapt(
            0, TextureClass.MEDIUM, TileQualityFeedback(psnr_db=50.0, bits=1)
        )
        self.adapter.reset()
        assert self.adapter.current_qp(0, TextureClass.MEDIUM) == 32

    def test_bitrate_violation_bumps_qp(self):
        """Algorithm 1's BR input: over-rate streams with PSNR headroom
        get a higher QP even when PSNR alone would keep the default."""
        self.adapter.adapt(0, TextureClass.MEDIUM, None)  # 32
        qp = self.adapter.adapt(
            0, TextureClass.MEDIUM,
            TileQualityFeedback(psnr_db=39.0, bits=100),  # inside band
            stream_bitrate_mbps=10.0,  # violates the 3 Mbps constraint
        )
        assert qp == 32 + DELTA_QP

    def test_bitrate_violation_never_overrides_quality(self):
        """PSNR below constraint wins over the bitrate constraint."""
        self.adapter.adapt(0, TextureClass.MEDIUM, None)
        qp = self.adapter.adapt(
            0, TextureClass.MEDIUM,
            TileQualityFeedback(psnr_db=30.0, bits=100),
            stream_bitrate_mbps=10.0,
        )
        assert qp == 32 - DELTA_QP

    def test_bitrate_within_constraint_no_effect(self):
        self.adapter.adapt(0, TextureClass.MEDIUM, None)
        qp = self.adapter.adapt(
            0, TextureClass.MEDIUM,
            TileQualityFeedback(psnr_db=39.0, bits=100),
            stream_bitrate_mbps=1.0,
        )
        assert qp == 32

    def test_converges_to_band_in_closed_loop(self):
        """Iterating Algorithm 1 against a monotone QP->PSNR response
        settles inside the [constraint, constraint+margin] band."""
        def psnr_of(qp):  # plausible monotone response
            return 52.0 - 0.3 * qp
        qp = self.adapter.adapt(0, TextureClass.MEDIUM, None)
        for _ in range(10):
            qp = self.adapter.adapt(
                0, TextureClass.MEDIUM,
                TileQualityFeedback(psnr_db=psnr_of(qp), bits=100),
            )
        final_psnr = psnr_of(qp)
        # The loop may oscillate one notch around the band edge, but
        # must keep PSNR within one dQP-step of the constraint window.
        assert final_psnr > self.constraints.psnr_constraint - 0.3 * DELTA_QP
        assert final_psnr < (self.constraints.psnr_constraint
                             + self.constraints.psnr_margin + 0.3 * DELTA_QP)
