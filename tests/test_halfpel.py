"""Tests for half-pel interpolation and sub-pel motion compensation."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameEncoder, VideoEncoder
from repro.codec.interpolate import (
    halfpel_feasible,
    sample_halfpel,
    upsample2x,
)
from repro.tiling.tile import TileGrid


class TestUpsample:
    def test_integer_positions_preserved(self, textured_plane):
        up = upsample2x(textured_plane)
        assert up.shape == (128, 128)
        np.testing.assert_array_equal(up[::2, ::2], textured_plane)

    def test_flat_plane_stays_flat(self):
        plane = np.full((16, 16), 77, dtype=np.uint8)
        up = upsample2x(plane)
        assert (up == 77).all()

    def test_half_positions_interpolate_linear_ramp(self):
        """On a linear ramp the 6-tap filter reproduces the midpoint."""
        ramp = np.tile(np.arange(0, 64, 4, dtype=np.uint8), (8, 1))
        up = upsample2x(ramp)
        # Between samples 4k and 4k+4 the half sample is 4k+2 (away
        # from the clipped borders).
        mid = up[0, 5]  # between columns 2 and 3: values 8 and 12
        assert mid == 10

    def test_output_dtype_and_range(self, textured_plane):
        up = upsample2x(textured_plane)
        assert up.dtype == np.uint8

    def test_deterministic(self, textured_plane):
        a = upsample2x(textured_plane)
        b = upsample2x(textured_plane.copy())
        np.testing.assert_array_equal(a, b)


class TestSampling:
    def test_even_mv_equals_integer_block(self, textured_plane):
        up = upsample2x(textured_plane)
        block = sample_halfpel(up, 8, 8, (4, -6), 8, 8)
        np.testing.assert_array_equal(
            block, textured_plane[5:13, 10:18].astype(np.float64)
        )

    def test_feasibility_bounds(self):
        assert halfpel_feasible((0, 0), 0, 0, 8, 8, 64, 64)
        assert not halfpel_feasible((-1, 0), 0, 0, 8, 8, 64, 64)
        assert halfpel_feasible((1, 1), 0, 0, 8, 8, 64, 64)
        # Right edge: block at x=56 width 8 can move at most 0.
        assert halfpel_feasible((0, 0), 56, 0, 8, 8, 64, 64)
        assert not halfpel_feasible((1, 0), 56, 0, 8, 8, 64, 64)

    def test_out_of_bounds_sampling_raises(self, textured_plane):
        up = upsample2x(textured_plane)
        with pytest.raises(ValueError):
            sample_halfpel(up, 0, 0, (-1, 0), 8, 8)
        with pytest.raises(ValueError):
            sample_halfpel(up, 60, 60, (20, 20), 8, 8)


class TestHalfPelCodec:
    def test_roundtrip_with_half_pel(self, small_video):
        grid = TileGrid.single(small_video.width, small_video.height)
        configs = [EncoderConfig(qp=30, search_window=8, half_pel=True)]
        encoder = FrameEncoder()
        decoder = FrameDecoder()
        writer = BitWriter()
        reference = None
        enc_recons = []
        gop = GopConfig(8)
        for i, frame in enumerate(small_video.frames[:4]):
            ftype = gop.frame_type(i)
            _, recon = encoder.encode(
                frame.luma, grid, configs, ftype,
                reference=reference, frame_index=i, writer=writer,
            )
            enc_recons.append(recon)
            reference = recon
        reader = BitReader(writer.flush())
        reference = None
        for enc_recon in enc_recons:
            dec = decoder.decode(reader, grid, configs, reference=reference)
            np.testing.assert_array_equal(enc_recon, dec)
            reference = dec

    def test_half_pel_improves_subpixel_motion_quality(self):
        """A half-pixel panning video predicts better with half-pel MC
        (that is the whole point of sub-pel motion)."""
        from repro.video.generator import (
            BioMedicalVideoGenerator, ContentClass, GeneratorConfig,
            MotionPreset,
        )
        video = BioMedicalVideoGenerator(GeneratorConfig(
            width=96, height=80, num_frames=8, seed=3,
            content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
            motion_magnitude=1.5, noise_sigma=0.0,  # 1.5 px/frame: sub-pel
        )).generate()
        base = EncoderConfig(qp=27, search_window=8)
        stats_int = VideoEncoder(base).encode(video)
        stats_half = VideoEncoder(
            EncoderConfig(qp=27, search_window=8, half_pel=True)
        ).encode(video)
        assert stats_half.total_bits < stats_int.total_bits

    def test_half_pel_costs_more_me_ops(self, small_video):
        stats_int = VideoEncoder(
            EncoderConfig(qp=32, search_window=8)
        ).encode(small_video)
        stats_half = VideoEncoder(
            EncoderConfig(qp=32, search_window=8, half_pel=True)
        ).encode(small_video)
        assert stats_half.ops.me_candidates > stats_int.ops.me_candidates

    def test_mixed_tile_configs(self, small_video):
        """Half-pel on one tile, integer on the other: both decode."""
        from repro.tiling.uniform import uniform_tiling
        grid = uniform_tiling(small_video.width, small_video.height, 2, 1,
                              align=16)
        configs = [
            EncoderConfig(qp=30, search_window=8, half_pel=True),
            EncoderConfig(qp=30, search_window=8, half_pel=False),
        ]
        encoder = FrameEncoder()
        writer = BitWriter()
        _, recon0 = encoder.encode(
            small_video[0].luma, grid, configs, FrameType.I, writer=writer
        )
        _, recon1 = encoder.encode(
            small_video[1].luma, grid, configs, FrameType.P,
            reference=recon0, writer=writer,
        )
        reader = BitReader(writer.flush())
        decoder = FrameDecoder()
        dec0 = decoder.decode(reader, grid, configs)
        dec1 = decoder.decode(reader, grid, configs, reference=dec0)
        np.testing.assert_array_equal(recon1, dec1)
