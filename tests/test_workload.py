"""Tests for LUT-based workload estimation (paper §III-D1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import FrameType
from repro.video.generator import ContentClass
from repro.workload.estimator import SeedModel, WorkloadEstimator
from repro.workload.keys import WorkloadKey, area_bucket
from repro.workload.lut import CpuTimeHistogram, WorkloadLut


def make_key(qp=32, window=16, texture=TextureClass.MEDIUM,
             motion=MotionClass.LOW, frame_type=FrameType.P,
             bucket=14, content=None):
    return WorkloadKey(
        texture=texture, motion=motion, qp=qp, search_window=window,
        frame_type=frame_type, area_bucket=bucket, content_class=content,
    )


class TestAreaBucket:
    def test_powers_of_two(self):
        assert area_bucket(1) == 0
        assert area_bucket(2) == 1
        assert area_bucket(1024) == 10
        assert area_bucket(1025) == 10
        assert area_bucket(2047) == 10
        assert area_bucket(2048) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            area_bucket(0)


class TestCpuTimeHistogram:
    def test_mean_is_exact(self):
        h = CpuTimeHistogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.mean == pytest.approx(0.002)
        assert h.count == 3

    def test_quantile_approximation(self):
        h = CpuTimeHistogram()
        values = np.linspace(0.001, 0.1, 200)
        for v in values:
            h.observe(v)
        q90 = h.quantile(0.9)
        # Log-binned approximation: within a bin width of the truth.
        assert 0.05 < q90 < 0.15

    def test_out_of_range_values_clamp(self):
        h = CpuTimeHistogram(t_min=1e-3, t_max=1.0)
        h.observe(1e-9)
        h.observe(100.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1

    def test_empty_histogram_raises(self):
        h = CpuTimeHistogram()
        with pytest.raises(ValueError):
            _ = h.mean
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            CpuTimeHistogram().observe(-0.1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CpuTimeHistogram(t_min=0)
        with pytest.raises(ValueError):
            CpuTimeHistogram(num_bins=1)

    @given(st.lists(st.floats(min_value=1e-6, max_value=9.0), min_size=1,
                    max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_quantiles_monotone_property(self, values):
        h = CpuTimeHistogram()
        for v in values:
            h.observe(v)
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.9)


class TestWorkloadLut:
    def test_observe_and_lookup(self):
        lut = WorkloadLut()
        key = make_key(content=ContentClass.BRAIN)
        lut.observe(key, 0.004)
        hist = lut.lookup(key)
        assert hist is not None and hist.count == 1

    def test_class_generalisation_fallback(self):
        """A LUT trained on one content class serves queries about
        another class through the class-agnostic entry — the paper's
        LUT-reuse property."""
        lut = WorkloadLut()
        lut.observe(make_key(content=ContentClass.BRAIN), 0.004)
        other = make_key(content=ContentClass.LUNG)
        hist = lut.lookup(other)
        assert hist is not None
        assert hist.mean == pytest.approx(0.004)

    def test_missing_key_returns_none(self):
        assert WorkloadLut().lookup(make_key()) is None

    def test_distinct_keys_are_independent(self):
        lut = WorkloadLut()
        lut.observe(make_key(qp=22), 0.010)
        lut.observe(make_key(qp=42), 0.001)
        assert lut.lookup(make_key(qp=22)).mean == pytest.approx(0.010)
        assert lut.lookup(make_key(qp=42)).mean == pytest.approx(0.001)


class TestWorkloadEstimator:
    def test_cold_start_uses_seed_model(self):
        est = WorkloadEstimator()
        out = est.estimate(make_key(), area=64 * 64)
        assert out > 0

    def test_warm_estimates_track_observations(self):
        est = WorkloadEstimator()
        key = make_key()
        for _ in range(10):
            est.observe(key, 0.0042)
        assert est.estimate(key, area=64 * 64) == pytest.approx(0.0042)

    def test_estimation_error_below_100us_after_training(self):
        """The paper reports over/under-estimation below 100 us once
        enough frames are processed; with a stable workload the LUT
        mean converges well inside that."""
        rng = np.random.default_rng(0)
        est = WorkloadEstimator()
        key = make_key()
        true = 0.0050
        for _ in range(200):
            est.observe(key, true + rng.normal(0, 5e-5))
        err = abs(est.estimation_error(key, area=64 * 64, actual=true))
        assert err < 100e-6

    def test_quantile_mode_is_conservative(self):
        est_mean = WorkloadEstimator()
        est_q = WorkloadEstimator(lut=est_mean.lut, quantile=0.95)
        key = make_key()
        for v in np.linspace(0.001, 0.01, 100):
            est_mean.observe(key, v)
        assert est_q.estimate(key, 1) >= est_mean.estimate(key, 1) * 0.9

    def test_seed_model_monotone_in_window(self):
        seed = SeedModel()
        small = seed.estimate(make_key(window=8), area=1000)
        large = seed.estimate(make_key(window=64), area=1000)
        assert large > small

    def test_seed_model_motion_and_texture_effects(self):
        seed = SeedModel()
        low = seed.estimate(make_key(motion=MotionClass.LOW), 1000)
        high = seed.estimate(make_key(motion=MotionClass.HIGH), 1000)
        assert high > low
        flat = seed.estimate(make_key(texture=TextureClass.LOW), 1000)
        busy = seed.estimate(make_key(texture=TextureClass.HIGH), 1000)
        assert busy > flat

    def test_seed_model_intra_cheaper_than_inter(self):
        seed = SeedModel()
        intra = seed.estimate(make_key(frame_type=FrameType.I), 1000)
        inter = seed.estimate(make_key(frame_type=FrameType.P), 1000)
        assert intra < inter
