"""The native (C) kernels are bit-exact with the NumPy reference paths.

Every test runs the same computation twice — once through the compiled
kernels, once with ``native.lib`` monkeypatched away — and asserts
byte-level equality.  This is the contract that lets the encoder and
decoder dispatch independently (both native or both NumPy) without
drift, and lets ``REPRO_NATIVE=0`` remain a faithful fallback.
"""

import numpy as np
import pytest

from repro import native
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.encoder import FrameEncoder, reconstruct_block
from repro.codec.intra import IntraMode, choose_mode, predict
from repro.tiling.uniform import uniform_tiling

pytestmark = pytest.mark.skipif(
    not native.available(), reason="native kernels unavailable"
)


def _blocks(rng, n=200):
    for _ in range(n):
        kind = rng.integers(0, 4)
        if kind == 0:
            block = rng.integers(0, 256, (16, 16)).astype(np.float64)
        elif kind == 1:  # smooth gradient
            gy, gx = np.mgrid[0:16, 0:16]
            block = (rng.uniform(40, 200) + gx * rng.uniform(-2, 2)
                     + gy * rng.uniform(-2, 2)).clip(0, 255)
        elif kind == 2:  # flat
            block = np.full((16, 16), float(rng.integers(0, 256)))
        else:  # near-flat with noise
            block = (128.0 + rng.normal(0, 2, (16, 16))).clip(0, 255)
        top = None if rng.integers(0, 2) else rng.integers(0, 256, 16).astype(np.float64)
        left = None if rng.integers(0, 2) else rng.integers(0, 256, 16).astype(np.float64)
        yield np.ascontiguousarray(block), top, left


def test_choose_intra_matches_choose_mode():
    rng = np.random.default_rng(0)
    for block, top, left in _blocks(rng):
        mode_n, pred_n, sad_n = native.choose_intra(block, top, left)
        assert native.lib is not None
        saved, native.lib = native.lib, None
        try:
            mode_p, pred_p, sad_p = choose_mode(block, top, left)
        finally:
            native.lib = saved
        assert IntraMode(mode_n) is mode_p
        # The SAD reduction order differs (C sequential vs NumPy
        # pairwise), so the scalar may drift by an ulp; the bit-exact
        # contract is the mode decision and the prediction block.
        assert sad_n == pytest.approx(sad_p, rel=1e-12)
        np.testing.assert_array_equal(pred_n, pred_p)
        # Decoder contract: the winner's prediction equals predict().
        np.testing.assert_array_equal(
            pred_n, predict(IntraMode(mode_n), top, left, 16, 16)
        )


def test_reconstruct_block_matches_numpy():
    rng = np.random.default_rng(1)
    for _ in range(100):
        pred = np.ascontiguousarray(rng.uniform(0, 255, (16, 16)))
        levels = rng.integers(-12, 13, (4, 8, 8)).astype(np.int32)
        if rng.integers(0, 4) == 0:
            levels[:] = 0
        qp = int(rng.integers(10, 50))
        native_out = reconstruct_block(pred, levels, qp)
        saved, native.lib = native.lib, None
        try:
            numpy_out = reconstruct_block(pred, levels, qp)
        finally:
            native.lib = saved
        np.testing.assert_array_equal(native_out, numpy_out)
        assert native_out.dtype == np.uint8


def test_sad_batch_matches_numpy_windows():
    rng = np.random.default_rng(2)
    ref = rng.integers(0, 256, (40, 56), dtype=np.uint8)
    block = rng.integers(0, 256, (8, 8)).astype(np.int32)
    xs = rng.integers(0, 48, 32).astype(np.int64)
    ys = rng.integers(0, 32, 32).astype(np.int64)
    sads = native.sad_batch(ref, block, xs, ys)
    for i in range(32):
        window = ref[ys[i] : ys[i] + 8, xs[i] : xs[i] + 8].astype(np.int64)
        assert sads[i] == np.abs(window - block).sum()


def test_tile_encode_identical_without_native(monkeypatch):
    """Whole-tile encodes (intra + inter + half-pel + fused residual)
    agree between the native and pure-NumPy paths."""
    rng = np.random.default_rng(3)
    base = rng.integers(0, 256, (64, 96), dtype=np.uint8)
    prev = np.roll(base, 2, axis=1)
    grid = uniform_tiling(96, 64, 2, 1)
    for config in (
        EncoderConfig(qp=32),
        EncoderConfig(qp=26, search="tz", search_window=16),
        EncoderConfig(qp=38, half_pel=True),
    ):
        fe = FrameEncoder()
        configs = [config] * len(grid)
        n_stats, n_rec = fe.encode(base, grid, configs, FrameType.I)
        np_i, pp = fe.encode(prev, grid, configs, FrameType.P, reference=n_rec)
        monkeypatch.setattr(native, "lib", None)
        f_stats, f_rec = fe.encode(base, grid, configs, FrameType.I)
        fp_i, fp = fe.encode(prev, grid, configs, FrameType.P, reference=f_rec)
        monkeypatch.undo()
        np.testing.assert_array_equal(n_rec, f_rec)
        np.testing.assert_array_equal(pp, fp)
        for a, b in zip(list(n_stats.tiles) + list(np_i.tiles),
                        list(f_stats.tiles) + list(fp_i.tiles)):
            assert a.bits == b.bits
            assert a.ssd == b.ssd
            assert a.ops == b.ops


def test_native_disabled_by_environment():
    """REPRO_NATIVE=0 must short-circuit loading (fallback guarantee)."""
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c",
         "from repro import native; print(native.available())"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "REPRO_NATIVE": "0", "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        check=True,
    )
    assert out.stdout.strip() == "False"


def test_motion_driver_matches_python_search():
    """The C motion-search driver replays every Python algorithm —
    cross, one-at-a-time (both axes), hexagon (all orientations) —
    with identical vectors, costs and evaluation counts, and reports
    the true SAD of the winning vector."""
    from repro.motion.base import SearchContext
    from repro.motion.cross import CrossSearch
    from repro.motion.hexagon import HexagonOrientation, HexagonSearch
    from repro.motion.one_at_a_time import OneAtATimeSearch

    algos = [
        CrossSearch(),
        OneAtATimeSearch("x"),
        OneAtATimeSearch("y"),
        HexagonSearch(HexagonOrientation.HORIZONTAL),
        HexagonSearch(HexagonOrientation.VERTICAL),
        HexagonSearch(HexagonOrientation.ROTATING),
    ]
    rng = np.random.default_rng(11)
    trials = 0
    for trial in range(120):
        h = int(rng.integers(32, 128))
        w = int(rng.integers(32, 128))
        ref = rng.integers(0, 256, (h, w), dtype=np.uint8)
        cur = np.clip(
            ref.astype(np.int16) + rng.integers(-8, 9, (h, w)), 0, 255
        ).astype(np.uint8)
        bs = int(rng.choice([8, 16]))
        if h < bs or w < bs:
            continue
        bx = int(rng.integers(0, w - bs + 1))
        by = int(rng.integers(0, h - bs + 1))
        block = cur[by:by + bs, bx:bx + bs]
        window = int(rng.choice([4, 8, 16, 32, 64]))
        lam = float(rng.choice([0.0, 1.0, 4.0]))
        seeds = [(0, 0)] + [
            (int(rng.integers(-window, window + 1)),
             int(rng.integers(-window, window + 1)))
            for _ in range(int(rng.integers(0, 2)))
        ]
        algo = algos[trial % len(algos)]
        spec = algo.native_spec()

        ctx = SearchContext(ref, block, bx, by, window, lambda_mv=lam)
        start, _ = ctx.evaluate_many(seeds)
        res = algo.search(ctx, start=start)

        out = native.motion_search(ref, block, bx, by, window, lam,
                                   spec[0], spec[1], seeds)
        assert out is not None
        mv, cost, evals, sad = out
        assert mv == res.mv, (trial, algo.name)
        assert cost == res.cost, (trial, algo.name)
        assert evals == res.sad_evaluations, (trial, algo.name)
        ry, rx = by + mv[1], bx + mv[0]
        want = int(np.abs(
            ref[ry:ry + bs, rx:rx + bs].astype(np.int64)
            - block.astype(np.int64)
        ).sum())
        assert sad == want, (trial, algo.name)
        trials += 1
    assert trials > 100


def test_entropy_writer_matches_bitwriter():
    """The batched C entropy entry point emits the exact bit pattern
    of the Python ``write_block`` loop (bit count and payload)."""
    from repro.codec.bitstream import BitWriter
    from repro.codec.encoder import _ZZ_ORDER8
    from repro.codec.entropy import write_block
    from repro.codec.zigzag import zigzag_scan

    rng = np.random.default_rng(13)
    for _ in range(80):
        n_sub = int(rng.integers(1, 9))
        levels = rng.integers(-40, 41, (n_sub, 8, 8)).astype(np.int32)
        levels[rng.random((n_sub, 8, 8)) < 0.8] = 0
        w = BitWriter()
        zz = zigzag_scan(levels)
        for i in range(n_sub):
            write_block(w, zz[i])
        want_bits = w.bits_written
        want = w.flush()
        got = native.entropy_write(np.ascontiguousarray(levels), _ZZ_ORDER8)
        assert got is not None
        payload, nbits = got
        assert nbits == want_bits
        assert payload[: (nbits + 7) // 8] == want


def test_sad_simd_levels_bit_identical():
    """Every SIMD tier the CPU supports (scalar, AVX2, AVX-512)
    returns identical SADs and identical motion-search outcomes —
    the NumPy oracle checks the scalar tier, transitivity covers
    the rest."""
    detected = native.lib.simd_detect()
    rng = np.random.default_rng(17)
    ref = rng.integers(0, 256, (72, 88), dtype=np.uint8)
    cases = []
    for bs in (8, 16):
        block = rng.integers(0, 256, (bs, bs)).astype(np.int32)
        xs = rng.integers(0, 88 - bs + 1, 64).astype(np.int64)
        ys = rng.integers(0, 72 - bs + 1, 64).astype(np.int64)
        cases.append((block, xs, ys))
    cur = np.clip(
        ref.astype(np.int16) + rng.integers(-6, 7, ref.shape), 0, 255
    ).astype(np.uint8)

    per_level = {}
    try:
        for level in range(detected + 1):
            native.lib.simd_set_level(level)
            assert native.lib.simd_get_level() == level
            sads = [native.sad_batch(ref, b, xs, ys).copy()
                    for b, xs, ys in cases]
            ms = native.motion_search(
                ref, cur[24:40, 32:48], 32, 24, 16, 1.0, 3, 0, [(0, 0)]
            )
            per_level[level] = (sads, ms)
    finally:
        native.lib.simd_set_level(detected)

    # Scalar tier against the NumPy oracle.
    for (block, xs, ys), sads in zip(cases, per_level[0][0]):
        bs = block.shape[0]
        for i in range(len(xs)):
            window = ref[ys[i]:ys[i] + bs, xs[i]:xs[i] + bs].astype(np.int64)
            assert sads[i] == np.abs(window - block).sum()
    # Vector tiers against scalar.
    for level in range(1, detected + 1):
        for a, b in zip(per_level[0][0], per_level[level][0]):
            np.testing.assert_array_equal(a, b)
        assert per_level[level][1] == per_level[0][1]


def test_simd_disabled_by_environment():
    """REPRO_NATIVE_SIMD=0 must pin the dispatch to the scalar tier."""
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c",
         "from repro import native; "
         "print(native.simd_level, native.lib.simd_get_level())"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "REPRO_NATIVE_SIMD": "0",
             "PATH": "/usr/bin:/bin", "HOME": "/root"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        check=True,
    )
    assert out.stdout.split() == ["0", "0"]
