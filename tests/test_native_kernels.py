"""The native (C) kernels are bit-exact with the NumPy reference paths.

Every test runs the same computation twice — once through the compiled
kernels, once with ``native.lib`` monkeypatched away — and asserts
byte-level equality.  This is the contract that lets the encoder and
decoder dispatch independently (both native or both NumPy) without
drift, and lets ``REPRO_NATIVE=0`` remain a faithful fallback.
"""

import numpy as np
import pytest

from repro import native
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.encoder import FrameEncoder, reconstruct_block
from repro.codec.intra import IntraMode, choose_mode, predict
from repro.tiling.uniform import uniform_tiling

pytestmark = pytest.mark.skipif(
    not native.available(), reason="native kernels unavailable"
)


def _blocks(rng, n=200):
    for _ in range(n):
        kind = rng.integers(0, 4)
        if kind == 0:
            block = rng.integers(0, 256, (16, 16)).astype(np.float64)
        elif kind == 1:  # smooth gradient
            gy, gx = np.mgrid[0:16, 0:16]
            block = (rng.uniform(40, 200) + gx * rng.uniform(-2, 2)
                     + gy * rng.uniform(-2, 2)).clip(0, 255)
        elif kind == 2:  # flat
            block = np.full((16, 16), float(rng.integers(0, 256)))
        else:  # near-flat with noise
            block = (128.0 + rng.normal(0, 2, (16, 16))).clip(0, 255)
        top = None if rng.integers(0, 2) else rng.integers(0, 256, 16).astype(np.float64)
        left = None if rng.integers(0, 2) else rng.integers(0, 256, 16).astype(np.float64)
        yield np.ascontiguousarray(block), top, left


def test_choose_intra_matches_choose_mode():
    rng = np.random.default_rng(0)
    for block, top, left in _blocks(rng):
        mode_n, pred_n, sad_n = native.choose_intra(block, top, left)
        assert native.lib is not None
        saved, native.lib = native.lib, None
        try:
            mode_p, pred_p, sad_p = choose_mode(block, top, left)
        finally:
            native.lib = saved
        assert IntraMode(mode_n) is mode_p
        # The SAD reduction order differs (C sequential vs NumPy
        # pairwise), so the scalar may drift by an ulp; the bit-exact
        # contract is the mode decision and the prediction block.
        assert sad_n == pytest.approx(sad_p, rel=1e-12)
        np.testing.assert_array_equal(pred_n, pred_p)
        # Decoder contract: the winner's prediction equals predict().
        np.testing.assert_array_equal(
            pred_n, predict(IntraMode(mode_n), top, left, 16, 16)
        )


def test_reconstruct_block_matches_numpy():
    rng = np.random.default_rng(1)
    for _ in range(100):
        pred = np.ascontiguousarray(rng.uniform(0, 255, (16, 16)))
        levels = rng.integers(-12, 13, (4, 8, 8)).astype(np.int32)
        if rng.integers(0, 4) == 0:
            levels[:] = 0
        qp = int(rng.integers(10, 50))
        native_out = reconstruct_block(pred, levels, qp)
        saved, native.lib = native.lib, None
        try:
            numpy_out = reconstruct_block(pred, levels, qp)
        finally:
            native.lib = saved
        np.testing.assert_array_equal(native_out, numpy_out)
        assert native_out.dtype == np.uint8


def test_sad_batch_matches_numpy_windows():
    rng = np.random.default_rng(2)
    ref = rng.integers(0, 256, (40, 56), dtype=np.uint8)
    block = rng.integers(0, 256, (8, 8)).astype(np.int32)
    xs = rng.integers(0, 48, 32).astype(np.int64)
    ys = rng.integers(0, 32, 32).astype(np.int64)
    sads = native.sad_batch(ref, block, xs, ys)
    for i in range(32):
        window = ref[ys[i] : ys[i] + 8, xs[i] : xs[i] + 8].astype(np.int64)
        assert sads[i] == np.abs(window - block).sum()


def test_tile_encode_identical_without_native(monkeypatch):
    """Whole-tile encodes (intra + inter + half-pel + fused residual)
    agree between the native and pure-NumPy paths."""
    rng = np.random.default_rng(3)
    base = rng.integers(0, 256, (64, 96), dtype=np.uint8)
    prev = np.roll(base, 2, axis=1)
    grid = uniform_tiling(96, 64, 2, 1)
    for config in (
        EncoderConfig(qp=32),
        EncoderConfig(qp=26, search="tz", search_window=16),
        EncoderConfig(qp=38, half_pel=True),
    ):
        fe = FrameEncoder()
        configs = [config] * len(grid)
        n_stats, n_rec = fe.encode(base, grid, configs, FrameType.I)
        np_i, pp = fe.encode(prev, grid, configs, FrameType.P, reference=n_rec)
        monkeypatch.setattr(native, "lib", None)
        f_stats, f_rec = fe.encode(base, grid, configs, FrameType.I)
        fp_i, fp = fe.encode(prev, grid, configs, FrameType.P, reference=f_rec)
        monkeypatch.undo()
        np.testing.assert_array_equal(n_rec, f_rec)
        np.testing.assert_array_equal(pp, fp)
        for a, b in zip(list(n_stats.tiles) + list(np_i.tiles),
                        list(f_stats.tiles) + list(fp_i.tiles)):
            assert a.bits == b.bits
            assert a.ssd == b.ssd
            assert a.ops == b.ops


def test_native_disabled_by_environment():
    """REPRO_NATIVE=0 must short-circuit loading (fallback guarantee)."""
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c",
         "from repro import native; print(native.available())"],
        capture_output=True, text=True,
        env={"PYTHONPATH": "src", "REPRO_NATIVE": "0", "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        check=True,
    )
    assert out.stdout.strip() == "False"
