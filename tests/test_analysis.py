"""Tests for texture and motion content analysis (paper §III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.evaluator import ContentEvaluator
from repro.analysis.motion_probe import (
    MotionClass,
    MotionProbe,
    MotionProbeConfig,
)
from repro.analysis.texture import (
    TextureClass,
    TextureThresholds,
    classify_texture,
    coefficient_of_variation,
)
from repro.tiling.uniform import uniform_tiling


class TestCoefficientOfVariation:
    def test_constant_region_has_zero_cv(self):
        assert coefficient_of_variation(np.full((8, 8), 100)) == 0.0

    def test_all_black_region_is_zero(self):
        assert coefficient_of_variation(np.zeros((8, 8))) == 0.0

    def test_known_value(self):
        samples = np.array([50.0, 150.0])  # mean 100, std 50
        assert coefficient_of_variation(samples) == pytest.approx(0.5)

    def test_scale_invariance(self, rng):
        """CV is invariant to multiplicative scaling."""
        samples = rng.uniform(50, 200, size=100)
        assert coefficient_of_variation(samples * 2) == pytest.approx(
            coefficient_of_variation(samples)
        )

    def test_empty_region_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))


class TestTextureClassification:
    def test_flat_bright_region_is_low(self):
        assert classify_texture(np.full((16, 16), 180)) is TextureClass.LOW

    def test_dark_region_is_low_regardless_of_cv(self, rng):
        """Near-black regions short-circuit to LOW (the CV denominator
        guard): high relative variance of noise on black borders must
        not read as texture."""
        dark = rng.integers(0, 30, size=(16, 16)).astype(np.uint8)
        assert classify_texture(dark) is TextureClass.LOW

    def test_high_contrast_region_is_high(self):
        region = np.zeros((16, 16)) + 60
        region[::2] = 250
        assert classify_texture(region) is TextureClass.HIGH

    def test_threshold_boundaries(self):
        th = TextureThresholds(low=0.2, high=0.5, dark_mean=0.0)
        # Construct regions with precise CVs.
        low = np.array([90.0, 110.0] * 8)    # cv = 0.1
        med = np.array([60.0, 140.0] * 8)    # cv = 0.4
        high = np.array([20.0, 180.0] * 8)   # cv = 0.8
        assert classify_texture(low, th) is TextureClass.LOW
        assert classify_texture(med, th) is TextureClass.MEDIUM
        assert classify_texture(high, th) is TextureClass.HIGH

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            TextureThresholds(low=0.7, high=0.3)
        with pytest.raises(ValueError):
            TextureThresholds(dark_mean=-1)

    @given(st.floats(min_value=1.0, max_value=250.0))
    @settings(max_examples=30, deadline=None)
    def test_constant_regions_always_low(self, value):
        region = np.full((8, 8), value)
        assert classify_texture(region) is TextureClass.LOW


class TestMotionProbe:
    def test_identical_frames_no_motion(self, textured_plane):
        probe = MotionProbe()
        assert probe.score(textured_plane, textured_plane) == 0.0
        assert probe.classify(textured_plane, textured_plane) is MotionClass.LOW

    def test_probe_points_structure(self, textured_plane):
        probe = MotionProbe()
        points = probe.probe_points(textured_plane)
        h, w = textured_plane.shape
        assert points[:4] == ((0, 0), (0, w - 1), (h - 1, 0), (h - 1, w - 1))
        assert points[4] == (h // 2, w // 2)
        # The max point is where the region is maximal.
        my, mx = points[5]
        assert textured_plane[my, mx] == textured_plane.max()

    def test_center_change_scores_beta(self):
        """Only the centre pixel differs: the score is exactly beta."""
        cfg = MotionProbeConfig(patch_radius=0)
        current = np.full((17, 17), 100, dtype=np.uint8)
        current[0, 0] = 200  # pin the max point to the first corner
        previous = current.copy()
        previous[8, 8] = 30  # change only the centre
        score = MotionProbe(cfg).score(current, previous)
        assert score == pytest.approx(cfg.beta)

    def test_corner_changes_score_alpha_each(self):
        cfg = MotionProbeConfig(patch_radius=0)
        current = np.full((17, 17), 100, dtype=np.uint8)
        current[8, 8] = 220  # pin the max point to the centre
        previous = current.copy()
        previous[0, 0] = 10
        previous[16, 16] = 10  # two corners differ
        score = MotionProbe(cfg).score(current, previous)
        assert score == pytest.approx(2 * cfg.alpha)

    def test_full_frame_shift_is_high_motion(self, rng):
        """A rigid shift of sharply textured content probes HIGH: the
        centre and max-point comparisons alone reach the threshold."""
        base = rng.integers(40, 220, size=(64, 64)).astype(np.uint8)
        shifted = np.roll(base, shift=3, axis=1)
        probe = MotionProbe(MotionProbeConfig(patch_radius=0))
        assert probe.classify(shifted, base) is MotionClass.HIGH

    def test_static_noise_is_low_motion(self, rng):
        """Sensor noise alone must not read as motion (patch averaging)."""
        base = np.full((64, 64), 120.0)
        a = np.clip(base + rng.normal(0, 2, base.shape), 0, 255).astype(np.uint8)
        b = np.clip(base + rng.normal(0, 2, base.shape), 0, 255).astype(np.uint8)
        assert MotionProbe().classify(a, b) is MotionClass.LOW

    def test_shape_mismatch_raises(self):
        probe = MotionProbe()
        with pytest.raises(ValueError):
            probe.score(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MotionProbeConfig(alpha=-1)
        with pytest.raises(ValueError):
            MotionProbeConfig(pixel_tolerance=-2)
        with pytest.raises(ValueError):
            MotionProbeConfig(patch_radius=-1)

    def test_paper_coefficients_default(self):
        cfg = MotionProbeConfig()
        assert (cfg.alpha, cfg.beta, cfg.gamma) == (1.0, 3.0, 3.0)
        assert cfg.threshold == 3.0


class TestContentEvaluator:
    def test_first_frame_has_no_motion(self, vga_frame_pair):
        _, cur = vga_frame_pair
        grid = uniform_tiling(640, 480, 2, 2)
        contents = ContentEvaluator().evaluate(grid, cur, None)
        assert all(c.motion is MotionClass.LOW for c in contents)
        assert len(contents) == 4

    def test_center_motion_propagates_to_textured_tiles(self, vga_frame_pair):
        prev, cur = vga_frame_pair
        grid = uniform_tiling(640, 480, 4, 4)
        evaluator = ContentEvaluator(shared_motion=True)
        contents = evaluator.evaluate(grid, cur, prev)
        textured = [c for c in contents if c.texture is not TextureClass.LOW]
        if textured:
            # All textured tiles share the central tile's motion class.
            assert len({c.motion for c in textured}) == 1

    def test_no_propagation_when_disabled(self, vga_frame_pair):
        prev, cur = vga_frame_pair
        grid = uniform_tiling(640, 480, 4, 4)
        with_prop = ContentEvaluator(shared_motion=True).evaluate(grid, cur, prev)
        without = ContentEvaluator(shared_motion=False).evaluate(grid, cur, prev)
        assert len(with_prop) == len(without)

    def test_tile_content_records_cv_and_score(self, vga_frame_pair):
        prev, cur = vga_frame_pair
        grid = uniform_tiling(640, 480, 2, 2)
        contents = ContentEvaluator().evaluate(grid, cur, prev)
        for c in contents:
            assert c.cv >= 0
            assert c.motion_score >= 0
