"""Tile-parallel encoding is bit-exact with the serial encoder.

The inline (``workers=1``) tests exercise the whole parallel code path
— per-tile writers, payload splicing, reconstruction stitching, policy
snapshot/merge — without forking, so they run in the fast tier.  The
``slow``-marked tests repeat the guarantees through a real process
pool (run with ``-m slow`` or no marker filter).
"""

import numpy as np
import pytest

from repro.analysis.motion_probe import MotionClass
from repro.codec.bitstream import BitWriter
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.encoder import FrameEncoder, VideoEncoder
from repro.motion.proposed import GopMotionState
from repro.parallel.executor import (
    TileHookSpec,
    TileLearned,
    TileParallelExecutor,
    merge_learned,
    recommended_parallel,
)
from repro.tiling.uniform import uniform_tiling
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def video():
    cfg = GeneratorConfig(
        width=128, height=96, num_frames=6, seed=3,
        content_class=ContentClass.CARDIAC, motion=MotionPreset.PAN_DOWN,
        motion_magnitude=2.0,
    )
    return BioMedicalVideoGenerator(cfg).generate()


#: Heterogeneous per-tile configs, including a half-pel tile, so the
#: equivalence claim covers every encode path.
def _configs():
    return [
        EncoderConfig(qp=30, search="hexagon", search_window=24),
        EncoderConfig(qp=34),
        EncoderConfig(qp=32, half_pel=True),
        EncoderConfig(qp=28, search="tz"),
    ]


def _assert_frames_equal(serial, parallel):
    s_stats, s_rec = serial
    p_stats, p_rec = parallel
    assert np.array_equal(s_rec, p_rec)
    for a, b in zip(s_stats.tiles, p_stats.tiles):
        assert a.bits == b.bits
        assert a.ssd == b.ssd
        assert a.ops == b.ops


def _encode_sequence(video, executor):
    """Encode I, P, B frames through the serial and given encoder,
    asserting identical stats/recon and returning both bitstreams."""
    grid = uniform_tiling(128, 96, 2, 2)
    configs = _configs()
    fe = FrameEncoder()
    ws, wp = BitWriter(), BitWriter()
    infos_s, infos_p = [], []
    serial = fe.encode(video[0].luma, grid, configs, FrameType.I,
                       writer=ws, block_infos_out=infos_s)
    par = executor.encode_frame(video[0].luma, grid, configs, FrameType.I,
                                writer=wp, block_infos_out=infos_p)
    _assert_frames_equal(serial, par)
    s2 = fe.encode(video[1].luma, grid, configs, FrameType.P,
                   reference=serial[1], writer=ws)
    p2 = executor.encode_frame(video[1].luma, grid, configs, FrameType.P,
                               reference=par[1], writer=wp)
    _assert_frames_equal(s2, p2)
    s3 = fe.encode(video[2].luma, grid, configs, FrameType.B,
                   reference=[s2[1], serial[1]], writer=ws)
    p3 = executor.encode_frame(video[2].luma, grid, configs, FrameType.B,
                               reference=[p2[1], par[1]], writer=wp)
    _assert_frames_equal(s3, p3)
    assert infos_s == infos_p
    assert ws.bits_written == wp.bits_written
    return ws.flush(), wp.flush()


def test_inline_executor_bitstream_identical(video):
    with TileParallelExecutor(workers=1) as executor:
        serial_bytes, parallel_bytes = _encode_sequence(video, executor)
    assert serial_bytes == parallel_bytes


def test_merge_learned_replays_serial_election():
    state = GopMotionState()
    merge_learned(state, [
        TileLearned(tile_id=2, first_axis="y", final_mv=(0, 3)),
        TileLearned(tile_id=0, first_axis=None, final_mv=(0, 0)),
        TileLearned(tile_id=1, first_axis="x", final_mv=(4, 1)),
    ])
    # Tile 0 voted nothing, so tile 1 (lowest index with a vote) wins —
    # the same outcome as the serial tile-then-block visit order.
    assert state.dominant_axis == "x"
    assert state.tile_mv == {0: (0, 0), 1: (4, 1), 2: (0, 3)}


def test_hook_spec_is_picklable():
    import pickle

    spec = TileHookSpec(motion=MotionClass.HIGH, is_first=True, tile_id=1,
                        window=16, axis=None, predictor=(2, -1))
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_recommended_parallel():
    assert not recommended_parallel(num_tiles=1, workers=8)
    assert not recommended_parallel(num_tiles=8, workers=1)
    assert recommended_parallel(num_tiles=4, workers=2)


def test_executor_validates_shapes(video):
    grid = uniform_tiling(128, 96, 2, 2)
    with TileParallelExecutor(workers=1) as executor:
        with pytest.raises(ValueError):
            executor.encode_frame(video[0].luma, grid,
                                  [_configs()[0]], FrameType.I)
        with pytest.raises(ValueError):
            executor.encode_frame(video[0].luma[:64], grid,
                                  _configs(), FrameType.I)


def test_pipeline_inline_parallel_identical(video):
    """Proposed pipeline (policy snapshot/merge path) with workers=1."""
    serial = StreamTranscoder(PipelineConfig(fps=24.0)).run(video)
    cfg = PipelineConfig(fps=24.0, parallel_tiles=True, parallel_workers=1)
    with StreamTranscoder(cfg) as transcoder:
        parallel = transcoder.run(video)
    assert serial.total_bits == parallel.total_bits
    assert serial.frame_psnrs == parallel.frame_psnrs
    for fs, fp in zip(serial.frame_records, parallel.frame_records):
        for a, b in zip(fs.tiles, fp.tiles):
            assert (a.bits, a.psnr, a.qp, a.search_window) == \
                   (b.bits, b.psnr, b.qp, b.search_window)


@pytest.mark.slow
def test_process_pool_bitstream_identical(video):
    with TileParallelExecutor(workers=2) as executor:
        serial_bytes, parallel_bytes = _encode_sequence(video, executor)
    assert serial_bytes == parallel_bytes


@pytest.mark.slow
@pytest.mark.parametrize("mode", [PipelineMode.PROPOSED, PipelineMode.KHAN])
def test_process_pool_pipeline_identical(video, mode):
    """Full transcode through a real pool: identical trace to serial."""
    if mode is PipelineMode.KHAN:
        serial_cfg = PipelineConfig.khan(fps=24.0)
        par_cfg = PipelineConfig.khan(
            fps=24.0, parallel_tiles=True, parallel_workers=2
        )
    else:
        serial_cfg = PipelineConfig(fps=24.0)
        par_cfg = PipelineConfig(
            fps=24.0, parallel_tiles=True, parallel_workers=2
        )
    serial = StreamTranscoder(serial_cfg).run(video)
    with StreamTranscoder(par_cfg) as transcoder:
        parallel = transcoder.run(video)
    assert serial.total_bits == parallel.total_bits
    assert serial.frame_psnrs == parallel.frame_psnrs


@pytest.mark.slow
def test_video_encoder_process_pool_identical(video):
    grid = uniform_tiling(128, 96, 2, 2)
    serial = VideoEncoder(EncoderConfig(qp=32), GopConfig(4)).encode(video, grid)
    parallel = VideoEncoder(
        EncoderConfig(qp=32), GopConfig(4), parallel_workers=2
    ).encode(video, grid)
    assert serial.average_psnr == parallel.average_psnr
    assert [f.bits for f in serial.frames] == [f.bits for f in parallel.frames]


def test_recommended_parallel_thread_backend(monkeypatch):
    from repro import native

    if native.lib is not None:
        assert recommended_parallel(num_tiles=4, workers=2,
                                    backend="thread")
    # Without GIL-releasing kernels, threads only interleave: the
    # recommendation must fall back to "don't".
    monkeypatch.setattr(native, "lib", None)
    assert not recommended_parallel(num_tiles=4, workers=2,
                                    backend="thread")
    # The process recommendation does not depend on native kernels.
    assert recommended_parallel(num_tiles=4, workers=2,
                                backend="process")


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        TileParallelExecutor(workers=2, backend="greenlet")


class TestThreadBackendWithoutNativeKernels:
    """A multi-worker thread pool without GIL-releasing kernels is a
    silent pessimization; construction must fail with a message that
    explains *why* the kernels are missing and what to do instead."""

    def test_raises_actionably_on_build_failure(self, monkeypatch):
        from repro import native

        monkeypatch.setattr(native, "lib", None)
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        with pytest.raises(ValueError) as exc:
            TileParallelExecutor(workers=2, backend="thread")
        message = str(exc.value)
        assert "native kernels" in message
        assert "failed to build" in message
        assert "backend='process'" in message

    def test_names_repro_native_env_interaction(self, monkeypatch):
        from repro import native

        monkeypatch.setattr(native, "lib", None)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        with pytest.raises(ValueError) as exc:
            TileParallelExecutor(workers=2, backend="thread")
        message = str(exc.value)
        # The message must name the env-var interaction, not just the
        # missing kernels: with REPRO_NATIVE=0 the fix is "unset it",
        # not "find a compiler".
        assert "REPRO_NATIVE=0" in message
        assert "unset" in message

    def test_single_worker_and_process_backend_unaffected(
        self, monkeypatch
    ):
        from repro import native

        monkeypatch.setattr(native, "lib", None)
        # workers=1 encodes inline (no pool, no GIL contention) and the
        # process backend never needs the native kernels.
        TileParallelExecutor(workers=1, backend="thread").close()
        TileParallelExecutor(workers=2, backend="process").close()


def test_thread_pool_bitstream_identical(video):
    """Shared-memory thread workers splice the same bitstream as the
    serial encoder (and therefore as the process pool)."""
    with TileParallelExecutor(workers=2, backend="thread") as executor:
        serial_bytes, parallel_bytes = _encode_sequence(video, executor)
    assert serial_bytes == parallel_bytes


def test_thread_pool_pipeline_identical(video):
    """Full proposed-pipeline transcode through the thread backend:
    identical trace to serial (policy snapshot/merge included)."""
    serial = StreamTranscoder(PipelineConfig(fps=24.0)).run(video)
    cfg = PipelineConfig(fps=24.0, parallel_tiles=True,
                         parallel_workers=2, parallel_backend="thread")
    with StreamTranscoder(cfg) as transcoder:
        parallel = transcoder.run(video)
    assert serial.total_bits == parallel.total_bits
    assert serial.frame_psnrs == parallel.frame_psnrs
    for fs, fp in zip(serial.frame_records, parallel.frame_records):
        for a, b in zip(fs.tiles, fp.tiles):
            assert (a.bits, a.psnr, a.qp, a.search_window) == \
                   (b.bits, b.psnr, b.qp, b.search_window)
