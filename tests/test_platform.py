"""Tests for the MPSoC substrate: cost model, power model, platform,
and slot schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.ops import OpCounts
from repro.platform.cost_model import CostModel, CostWeights
from repro.platform.mpsoc import GHZ, Mpsoc, MpsocConfig, XEON_E5_2667
from repro.platform.power import PowerModel
from repro.platform.schedule import (
    CoreSlot,
    DvfsPolicy,
    SlotSchedule,
    ThreadTask,
)


class TestCostModel:
    def test_linear_in_counts(self):
        model = CostModel()
        ops = OpCounts(sad_pixel_ops=10, transform_blocks=2)
        double = OpCounts(sad_pixel_ops=20, transform_blocks=4)
        assert model.cycles(double) == pytest.approx(2 * model.cycles(ops))

    def test_seconds_scale_inversely_with_frequency(self):
        model = CostModel()
        ops = OpCounts(sad_pixel_ops=1_000_000)
        fast = model.seconds(ops, 3.6 * GHZ)
        slow = model.seconds(ops, 2.9 * GHZ)
        assert slow == pytest.approx(fast * 3.6 / 2.9)

    def test_zero_ops_cost_nothing(self):
        assert CostModel().cycles(OpCounts()) == 0.0

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            CostModel().seconds(OpCounts(), 0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(sad_pixel=-1)


class TestPowerModel:
    def test_busy_power_monotone_in_frequency(self):
        pm = PowerModel()
        powers = [pm.busy_power(f) for f in sorted(pm.vf_points)]
        assert powers == sorted(powers)
        assert powers[0] > pm.p_idle

    def test_unsupported_frequency_raises(self):
        with pytest.raises(ValueError, match="unsupported frequency"):
            PowerModel().busy_power(1.0 * GHZ)

    def test_energy_combines_busy_and_idle(self):
        pm = PowerModel()
        f = 3.6 * GHZ
        e = pm.energy(0.5, f, idle_seconds=0.5)
        assert e == pytest.approx(0.5 * pm.busy_power(f) + 0.5 * pm.p_idle)

    def test_energy_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            PowerModel().energy(-1, 3.6 * GHZ)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(vf_points={})
        with pytest.raises(ValueError):
            PowerModel(c_eff=-1)

    def test_dvfs_energy_per_op_lower_at_min_frequency(self):
        """V^2 f scaling: the energy to execute a fixed cycle count is
        lower at the lower-voltage operating point."""
        pm = PowerModel()
        f_lo, f_hi = 2.9 * GHZ, 3.6 * GHZ
        cycles = 1e9
        e_lo = pm.busy_power(f_lo) * (cycles / f_lo)
        e_hi = pm.busy_power(f_hi) * (cycles / f_hi)
        assert e_lo < e_hi


class TestMpsoc:
    def test_paper_platform_shape(self):
        assert XEON_E5_2667.num_cores == 32
        assert XEON_E5_2667.f_max == 3.6 * GHZ
        assert XEON_E5_2667.f_min == 2.9 * GHZ
        assert XEON_E5_2667.dvfs_latency_s == pytest.approx(10e-6)

    def test_core_layout(self):
        soc = Mpsoc()
        assert len(soc.cores) == 32
        assert soc.core(0).socket_id == 0
        assert soc.core(8).socket_id == 1
        assert soc.core(31).socket_id == 3

    def test_set_frequency_validated(self):
        soc = Mpsoc()
        soc.core(0).set_frequency(2.9 * GHZ, soc.config)
        with pytest.raises(ValueError):
            soc.core(0).set_frequency(5.0 * GHZ, soc.config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MpsocConfig(num_sockets=0)
        with pytest.raises(ValueError):
            MpsocConfig(frequencies_hz=())
        with pytest.raises(ValueError):
            MpsocConfig(frequencies_hz=(3.6 * GHZ, 2.9 * GHZ))


def _slot(core_id, times, carry=0.0):
    s = CoreSlot(core_id=core_id, carry_in_fmax=carry)
    for i, t in enumerate(times):
        s.assign(ThreadTask(thread_id=i + core_id * 100, user_id=0,
                            cpu_time_fmax=t))
    return s


class TestSlotSchedule:
    SLOT = 1.0 / 24

    def test_race_to_idle_fits(self):
        sched = SlotSchedule([_slot(0, [0.01, 0.02])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.RACE_TO_IDLE)
        plan = sched.plans()[0]
        assert plan.busy_seconds == pytest.approx(0.03)
        assert plan.busy_frequency_hz == XEON_E5_2667.f_max
        assert plan.idle_seconds == pytest.approx(self.SLOT - 0.03)
        assert plan.carry_out_fmax == 0.0

    def test_race_to_idle_overload_carries(self):
        sched = SlotSchedule([_slot(0, [0.05])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.RACE_TO_IDLE)
        plan = sched.plans()[0]
        assert plan.busy_seconds == pytest.approx(self.SLOT)
        assert plan.carry_out_fmax == pytest.approx(0.05 - self.SLOT)

    def test_stretch_picks_lowest_feasible_frequency(self):
        # load 0.03 at f_max stretches to 0.0372 at 2.9 GHz < slot.
        sched = SlotSchedule([_slot(0, [0.03])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.STRETCH)
        plan = sched.plans()[0]
        assert plan.busy_frequency_hz == 2.9 * GHZ
        assert plan.busy_seconds == pytest.approx(0.03 * 3.6 / 2.9)

    def test_stretch_uses_middle_frequency_when_needed(self):
        # load 0.038: at 2.9 GHz -> 0.0472 > slot; at 3.2 -> 0.04275 > slot
        # -> needs f_max (0.038 < slot).
        sched = SlotSchedule([_slot(0, [0.038])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.STRETCH)
        plan = sched.plans()[0]
        assert plan.busy_frequency_hz == 3.6 * GHZ

    def test_stretch_overload_carries(self):
        sched = SlotSchedule([_slot(0, [0.09])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.STRETCH)
        plan = sched.plans()[0]
        assert plan.carry_out_fmax == pytest.approx(0.09 - self.SLOT)

    def test_always_on_burns_whole_slot(self):
        sched = SlotSchedule([_slot(0, [0.001])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.ALWAYS_ON)
        plan = sched.plans()[0]
        assert plan.busy_seconds == pytest.approx(self.SLOT)
        assert plan.idle_seconds == 0.0

    def test_carry_in_adds_to_load(self):
        slot = _slot(0, [0.01], carry=0.02)
        assert slot.load_fmax == pytest.approx(0.03)

    def test_empty_core_idles(self):
        sched = SlotSchedule([CoreSlot(core_id=0)], self.SLOT, XEON_E5_2667)
        plan = sched.plans()[0]
        assert plan.busy_seconds == 0.0
        assert plan.idle_seconds == pytest.approx(self.SLOT)

    def test_double_assignment_rejected(self):
        t = ThreadTask(thread_id=1, user_id=2, cpu_time_fmax=0.01)
        a, b = CoreSlot(core_id=0), CoreSlot(core_id=1)
        a.assign(t)
        b.assign(t)
        with pytest.raises(ValueError):
            SlotSchedule([a, b], self.SLOT, XEON_E5_2667)

    def test_active_core_count(self):
        sched = SlotSchedule(
            [_slot(0, [0.01]), CoreSlot(core_id=1)], self.SLOT, XEON_E5_2667
        )
        assert sched.active_cores == 1

    def test_cores_at_fmax_metric_ignores_stretched_cores(self):
        # A stretched core busy the whole slot at f_min must not count.
        sched = SlotSchedule([_slot(0, [0.0335])], self.SLOT,
                             XEON_E5_2667, DvfsPolicy.STRETCH)
        plan = sched.plans()[0]
        assert plan.busy_frequency_hz == 2.9 * GHZ
        assert sched.cores_at_fmax_whole_slot == 0

    def test_energy_accounts_unused_platform_cores(self):
        pm = PowerModel()
        sched = SlotSchedule([_slot(0, [0.01])], self.SLOT, XEON_E5_2667)
        with_unused = sched.energy(pm, include_unused_cores=True)
        without = sched.energy(pm, include_unused_cores=False)
        expected_extra = 31 * pm.p_idle * self.SLOT
        assert with_unused - without == pytest.approx(expected_extra)

    def test_energy_zero_duration_intervals(self):
        pm = PowerModel()
        assert pm.energy(0.0, XEON_E5_2667.f_max, 0.0) == 0.0
        # Zero busy time: only the idle interval is billed.
        assert pm.energy(0.0, XEON_E5_2667.f_max, 2.0) == pytest.approx(
            2.0 * pm.p_idle
        )

    def test_energy_zero_load_slot_is_pure_idle(self):
        # Tasks with zero CPU time are legal (a fully-degraded stream)
        # and the slot prices as pure idle.
        pm = PowerModel()
        sched = SlotSchedule([_slot(0, [0.0, 0.0])], self.SLOT,
                             XEON_E5_2667)
        assert sched.energy(pm, include_unused_cores=False) == (
            pytest.approx(pm.p_idle * self.SLOT)
        )

    def test_energy_by_core_covers_unused_platform_cores(self):
        pm = PowerModel()
        sched = SlotSchedule([_slot(3, [0.01])], self.SLOT, XEON_E5_2667)
        by_core = sched.energy_by_core(pm, include_unused_cores=True)
        assert set(by_core) == set(range(XEON_E5_2667.num_cores))
        idle_j = pm.p_idle * self.SLOT
        assert by_core[0] == pytest.approx(idle_j)
        assert by_core[3] > idle_j
        trimmed = sched.energy_by_core(pm, include_unused_cores=False)
        assert set(trimmed) == {3}
        assert trimmed[3] == by_core[3]

    @given(st.lists(st.lists(st.floats(min_value=0.0, max_value=0.08),
                             min_size=0, max_size=4),
                    min_size=1, max_size=5),
           st.sampled_from(list(DvfsPolicy)),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_per_core_energies_sum_to_slot_energy(self, per_core, policy,
                                                  include_unused):
        pm = PowerModel()
        slots = [_slot(i, times) for i, times in enumerate(per_core)]
        sched = SlotSchedule(slots, self.SLOT, XEON_E5_2667, policy)
        by_core = sched.energy_by_core(
            pm, include_unused_cores=include_unused
        )
        total = sched.energy(pm, include_unused_cores=include_unused)
        assert sum(by_core.values()) == pytest.approx(total, rel=1e-9)
        assert all(v >= 0 for v in by_core.values())

    def test_stretch_consumes_less_energy_than_race_when_feasible(self):
        pm = PowerModel()
        e = {}
        for policy in (DvfsPolicy.RACE_TO_IDLE, DvfsPolicy.STRETCH):
            sched = SlotSchedule([_slot(0, [0.03])], self.SLOT,
                                 XEON_E5_2667, policy)
            e[policy] = sched.energy(pm, include_unused_cores=False)
        assert e[DvfsPolicy.STRETCH] < e[DvfsPolicy.RACE_TO_IDLE]

    def test_invalid_slot_duration(self):
        with pytest.raises(ValueError):
            SlotSchedule([CoreSlot(core_id=0)], 0.0, XEON_E5_2667)

    def test_negative_task_time_rejected(self):
        with pytest.raises(ValueError):
            ThreadTask(thread_id=0, user_id=0, cpu_time_fmax=-0.1)

    @given(st.lists(st.floats(min_value=0.0, max_value=0.1), min_size=1,
                    max_size=6),
           st.sampled_from(list(DvfsPolicy)))
    @settings(max_examples=60, deadline=None)
    def test_plan_invariants_property(self, times, policy):
        sched = SlotSchedule([_slot(0, times)], self.SLOT, XEON_E5_2667, policy)
        plan = sched.plans()[0]
        assert 0 <= plan.busy_seconds <= self.SLOT + 1e-12
        assert plan.idle_seconds >= -1e-12
        assert plan.busy_seconds + plan.idle_seconds <= self.SLOT + 1e-9
        assert plan.carry_out_fmax >= 0
        # Work conservation: executed cycles + carried cycles account
        # for the whole load.
        executed_fmax = plan.busy_seconds * plan.busy_frequency_hz / XEON_E5_2667.f_max
        load = sum(times)
        if load > 0:
            assert executed_fmax + plan.carry_out_fmax == pytest.approx(
                max(load, executed_fmax), rel=1e-6, abs=1e-9
            )
