"""Tests for the zigzag scan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.zigzag import zigzag_indices, zigzag_scan, zigzag_unscan


class TestZigzagIndices:
    def test_known_4x4_order(self):
        rows, cols = zigzag_indices(4)
        order = list(zip(rows.tolist(), cols.tolist()))
        assert order[:6] == [(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]
        assert order[-1] == (3, 3)

    def test_is_permutation(self):
        for size in (2, 3, 4, 8):
            rows, cols = zigzag_indices(size)
            seen = set(zip(rows.tolist(), cols.tolist()))
            assert len(seen) == size * size

    def test_starts_at_dc(self):
        rows, cols = zigzag_indices(8)
        assert (rows[0], cols[0]) == (0, 0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zigzag_indices(0)

    def test_frequency_monotone_on_average(self):
        """Later scan positions have higher average frequency index."""
        rows, cols = zigzag_indices(8)
        freq = rows + cols
        first_half = freq[:32].mean()
        second_half = freq[32:].mean()
        assert second_half > first_half


class TestZigzagScan:
    def test_scan_unscan_roundtrip(self, rng):
        blocks = rng.integers(-50, 50, size=(5, 8, 8)).astype(np.int32)
        vectors = zigzag_scan(blocks)
        assert vectors.shape == (5, 64)
        np.testing.assert_array_equal(zigzag_unscan(vectors, 8), blocks)

    def test_scan_rejects_non_square(self):
        with pytest.raises(ValueError):
            zigzag_scan(np.zeros((2, 4, 8)))

    def test_unscan_rejects_bad_length(self):
        with pytest.raises(ValueError):
            zigzag_unscan(np.zeros((2, 60)), 8)

    def test_smooth_block_zeros_cluster_at_tail(self):
        """Low-frequency-only content ends with zero tail after scan."""
        block = np.zeros((1, 8, 8), dtype=np.int32)
        block[0, :2, :2] = 9
        v = zigzag_scan(block)[0]
        assert v[-40:].sum() == 0
        assert v[0] == 9

    @given(st.integers(2, 8))
    @settings(max_examples=7, deadline=None)
    def test_roundtrip_property_all_sizes(self, size):
        rng = np.random.default_rng(size)
        blocks = rng.integers(-9, 9, size=(3, size, size))
        np.testing.assert_array_equal(
            zigzag_unscan(zigzag_scan(blocks), size), blocks
        )
