"""Unit tests for the session-recovery stack.

Covers the journal layer (`repro.serving.recovery`), the protocol v2
RESUME handshake messages, the decoder payload bound, the degradation
ladder's state snapshot, the pipeline's GOP-boundary export/import
bit-identity and the load generator's refusal-vs-disconnect
classification.  Everything here runs on the fast path — the loopback
chaos drills live in ``tests/test_chaos_integration.py``.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.codec.config import EncoderConfig, GopConfig
from repro.resilience.degradation import (
    DegradationController,
    ResilienceConfig,
)
from repro.resilience.errors import JournalCorruptionError
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.protocol import (
    DEFAULT_DECODER_MAX_PAYLOAD,
    HEADER_SIZE,
    MessageDecoder,
    MsgType,
    ProtocolError,
    Resume,
    ResumeAck,
    decode_frame,
    encode_message,
    read_message,
)
from repro.serving.recovery import (
    JournalStore,
    SessionJournal,
    frame_output_record,
    pack_plane,
    read_journal,
    replay_messages,
    restore_session,
    unpack_plane,
)
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, generate_video


def _plane(seed: int = 0, shape=(24, 32)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=shape, dtype=np.uint8)


# ----------------------------------------------------------------------
# Plane packing
# ----------------------------------------------------------------------
class TestPlanePacking:
    def test_roundtrip(self):
        plane = _plane(3)
        assert np.array_equal(unpack_plane(pack_plane(plane)), plane)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_plane(np.zeros(16, dtype=np.uint8))

    def test_undecodable_payload_is_corruption(self):
        with pytest.raises(JournalCorruptionError):
            unpack_plane({"shape": [4, 4], "zlib": "not base64!!"})

    def test_length_mismatch_is_corruption(self):
        packed = pack_plane(_plane(1, (4, 4)))
        packed["shape"] = [8, 8]
        with pytest.raises(JournalCorruptionError):
            unpack_plane(packed)


# ----------------------------------------------------------------------
# Journal writer / reader
# ----------------------------------------------------------------------
class TestSessionJournal:
    def _write(self, path, n=3, fsync=False):
        with SessionJournal(path, fsync=fsync) as journal:
            journal.append("admit", {"token": "t", "session_id": 1})
            for i in range(1, n):
                journal.append("gop", {"gop_index": i - 1,
                                       "next_frame_index": 4 * i})

    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path, n=4)
        scan = read_journal(path)
        assert not scan.truncated and scan.reason == "ok"
        assert [k for k, _ in scan.records] == ["admit", "gop", "gop", "gop"]
        assert scan.records[0][1]["session_id"] == 1
        assert scan.next_seq == 4

    def test_torn_final_line_is_truncation_not_error(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path)
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "kind": "gop"')  # crash mid-write
        scan = read_journal(path, strict=True)
        assert scan.truncated and scan.reason == "truncated tail"
        assert scan.next_seq == 3

    def test_corrupt_interior_record_strict_raises(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"gop"', b'"gap"')
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            read_journal(path, strict=True)
        scan = read_journal(path, strict=False)
        assert len(scan.records) == 1 and "checksum" in scan.reason

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path, n=4)
        lines = path.read_bytes().splitlines(keepends=True)
        # Drop seq 1 with intact records after it: cannot be a torn
        # tail, must be flagged as corruption.
        path.write_bytes(lines[0] + lines[2] + lines[3])
        with pytest.raises(JournalCorruptionError, match="sequence"):
            read_journal(path, strict=True)

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path, n=2)
        with SessionJournal(path, fsync=False, next_seq=2) as journal:
            assert journal.append("gop", {"next_frame_index": 8}) == 2
        assert read_journal(path, strict=True).next_seq == 3

    def test_intact_bytes_excludes_torn_tail(self, tmp_path):
        path = tmp_path / "s.journal"
        self._write(path)
        clean_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "kind": "gop"')  # crash mid-write
        scan = read_journal(path)
        assert scan.truncated
        assert scan.intact_bytes == clean_size


class TestJournalStore:
    def test_token_is_sanitized_and_unique(self, tmp_path):
        store = JournalStore(tmp_path)
        t1 = store.new_token(1, client_id="cli/ent !")
        t2 = store.new_token(1, client_id="cli/ent !")
        assert t1 != t2
        assert "/" not in t1 and " " not in t1 and t1.startswith("client")

    def test_path_for_rejects_traversal(self, tmp_path):
        store = JournalStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../escape")

    def test_create_refuses_existing(self, tmp_path):
        store = JournalStore(tmp_path, fsync=False)
        token = store.new_token(1)
        store.create(token).close()
        with pytest.raises(ValueError, match="exists"):
            store.create(token)

    def test_tokens_and_discard(self, tmp_path):
        store = JournalStore(tmp_path, fsync=False)
        token = store.new_token(2)
        with store.create(token) as journal:
            journal.append("admit", {"token": token})
        assert store.tokens() == [token]
        store.discard(token)
        assert store.tokens() == [] and not store.exists(token)

    def test_reopen_repairs_torn_tail(self, tmp_path):
        # A crash mid-append leaves a partial final line.  Reopening
        # for append must truncate it first: otherwise the next record
        # merges with the garbage mid-file and every later strict
        # restore fails — the session becomes permanently unresumable.
        store = JournalStore(tmp_path, fsync=False)
        token = store.new_token(3)
        with store.create(token) as journal:
            journal.append("admit", {"token": token, "qp": 32})
            journal.append("gop", {"gop_index": 0,
                                   "state": {"previous_original": None},
                                   "outputs": [], "next_frame_index": 4})
        path = store.path_for(token)
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 2, "kind": "gop"')  # crash mid-write
        restored = store.restore(token, strict=True)
        assert restored.truncated and restored.next_seq == 2
        with store.reopen(token, restored.next_seq,
                          truncate_to=restored.intact_bytes) as journal:
            journal.append("resume", {"have_below": 0})
        # The continuation is clean: strict restore keeps working.
        healed = store.restore(token, strict=True)
        assert not healed.truncated
        assert healed.next_seq == 3 and healed.resumes == 1

    def test_reopen_truncate_is_noop_on_clean_journal(self, tmp_path):
        store = JournalStore(tmp_path, fsync=False)
        token = store.new_token(4)
        with store.create(token) as journal:
            journal.append("admit", {"token": token})
        restored = store.restore(token, strict=True)
        size = (tmp_path / (token + ".journal")).stat().st_size
        with store.reopen(token, restored.next_seq,
                          truncate_to=restored.intact_bytes) as journal:
            journal.append("resume", {"have_below": 0})
        assert (tmp_path / (token + ".journal")).stat().st_size > size
        assert store.restore(token, strict=True).next_seq == 2


# ----------------------------------------------------------------------
# Session restore + replay
# ----------------------------------------------------------------------
class TestRestoreSession:
    def _journal(self, tmp_path, records):
        path = tmp_path / "s.journal"
        with SessionJournal(path, fsync=False) as journal:
            for kind, payload in records:
                journal.append(kind, payload)
        return path

    def _gop(self, indices, next_frame_index, dropped=()):
        outputs = []
        for i in indices:
            if i in dropped:
                outputs.append({"frame_index": i, "dropped": "deadline",
                                "frame_type": "", "bits": 0, "psnr": 0.0,
                                "recon": None})
            else:
                outputs.append({"frame_index": i, "dropped": None,
                                "frame_type": "I", "bits": 100, "psnr": 40.0,
                                "recon": pack_plane(_plane(i, (8, 8)))})
        return {"gop_index": 0, "state": {"gop_index": 1,
                                          "frames_pushed": len(indices),
                                          "recent_bits": [],
                                          "previous_original": None},
                "outputs": outputs, "next_frame_index": next_frame_index}

    def test_requires_admit_first(self, tmp_path):
        path = self._journal(tmp_path, [("gop", self._gop([0], 1))])
        with pytest.raises(JournalCorruptionError, match="admit"):
            restore_session(path)

    def test_folds_gop_and_park(self, tmp_path):
        park_plane = _plane(9, (8, 8))
        path = self._journal(tmp_path, [
            ("admit", {"token": "t", "qp": 32}),
            ("gop", self._gop([0, 1, 2, 3], 4)),
            ("park", {"next_frame_index": 6,
                      "frames": [{"frame_index": 4,
                                  "plane": pack_plane(park_plane)},
                                 {"frame_index": 5,
                                  "plane": pack_plane(park_plane)}]}),
        ])
        restored = restore_session(path, strict=True)
        assert restored.parked and restored.next_frame_index == 6
        assert [i for i, _ in restored.pending] == [4, 5]
        assert sorted(restored.outputs) == [0, 1, 2, 3]
        assert restored.admit["qp"] == 32

    def test_resume_clears_park(self, tmp_path):
        path = self._journal(tmp_path, [
            ("admit", {"token": "t"}),
            ("park", {"next_frame_index": 2,
                      "frames": [{"frame_index": 0,
                                  "plane": pack_plane(_plane(1, (8, 8)))}]}),
            ("resume", {"have_below": 0}),
        ])
        restored = restore_session(path, strict=True)
        assert not restored.parked and restored.pending == []
        assert restored.resumes == 1

    def test_replay_skips_pending_and_fills_holes(self, tmp_path):
        path = self._journal(tmp_path, [
            ("admit", {"token": "t"}),
            # Frame 2 never reached the encoder (ingest backpressure).
            ("gop", self._gop([0, 1, 3], 4, dropped=(1,))),
            ("park", {"next_frame_index": 6,
                      "frames": [{"frame_index": 4,
                                  "plane": pack_plane(_plane(2, (8, 8)))}]}),
        ])
        restored = restore_session(path, strict=True)
        replay = replay_messages(restored, have_below=1)
        # 0 is below the watermark, 4 is pending (re-encoded fresh),
        # 5 was never journaled -> synthesized backpressure drop.
        assert [m.frame_index for m in replay] == [1, 2, 3, 5]
        by_index = {m.frame_index: m for m in replay}
        assert by_index[1].dropped == "deadline"
        assert by_index[2].dropped == "backpressure"
        assert by_index[3].dropped is None and by_index[3].bits == 100
        assert by_index[5].dropped == "backpressure"

    def test_watchdog_drop_keeps_classification_across_resume(
            self, tmp_path):
        # A watchdog drop is egressed outside the GOP flush; it rides
        # in the gop/park "outputs" so a replay reports "watchdog",
        # not a re-synthesized "backpressure".
        watchdog = {"frame_index": 2, "dropped": "watchdog",
                    "frame_type": "", "bits": 0, "psnr": 0.0,
                    "recon": None}
        path = self._journal(tmp_path, [
            ("admit", {"token": "t"}),
            ("gop", self._gop([0, 1], 2)),
            ("park", {"next_frame_index": 4,
                      "frames": [{"frame_index": 3,
                                  "plane": pack_plane(_plane(3, (8, 8)))}],
                      "outputs": [watchdog]}),
        ])
        restored = restore_session(path, strict=True)
        replay = replay_messages(restored, have_below=0)
        by_index = {m.frame_index: m for m in replay}
        assert by_index[2].dropped == "watchdog"
        assert 3 not in by_index  # parked, re-encoded fresh

    def test_gop_outputs_may_carry_watchdog_drops(self, tmp_path):
        gop = self._gop([0, 1, 3], 4)
        gop["outputs"].append({"frame_index": 2, "dropped": "watchdog",
                               "frame_type": "", "bits": 0, "psnr": 0.0,
                               "recon": None})
        path = self._journal(tmp_path, [("admit", {"token": "t"}),
                                        ("gop", gop)])
        restored = restore_session(path, strict=True)
        replay = replay_messages(restored, have_below=0)
        by_index = {m.frame_index: m for m in replay}
        assert by_index[2].dropped == "watchdog"


# ----------------------------------------------------------------------
# Protocol v2: RESUME handshake + decoder payload bound
# ----------------------------------------------------------------------
class TestProtocolResume:
    def test_resume_roundtrip(self):
        msg = Resume(resume_token="tok-1", have_below=7, client_id="c")
        decoded, consumed = decode_frame(encode_message(msg))
        assert decoded == msg and consumed > 0

    def test_resume_ack_roundtrip(self):
        msg = ResumeAck(decision="accept", session_id=3,
                        next_frame_index=12, replayed=4,
                        resume_token="tok-1")
        decoded, _ = decode_frame(encode_message(msg))
        assert decoded == msg

    def test_resume_validation_at_decode(self):
        with pytest.raises(ProtocolError, match="resume_token"):
            Resume.from_payload(0, b'{"resume_token": ""}')
        with pytest.raises(ProtocolError, match="have_below"):
            Resume.from_payload(
                0, b'{"resume_token": "t", "have_below": -1}'
            )
        with pytest.raises(ProtocolError, match="decision"):
            ResumeAck.from_payload(0, b'{"decision": "maybe"}')

    def test_resume_rejected_in_v1_frames(self):
        wire = bytearray(encode_message(Resume(resume_token="t")))
        wire[4] = 1  # rewrite the version byte to v1
        with pytest.raises(ProtocolError, match="v2 message"):
            decode_frame(bytes(wire))

    def test_decoder_rejects_oversized_declared_length(self):
        decoder = MessageDecoder(max_payload=1024)
        header = struct.pack("!4sBBHII", b"RPRV", 2, int(MsgType.FRAME), 0,
                             2048, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(header)

    def test_decoder_default_bound_is_16_mib(self):
        assert DEFAULT_DECODER_MAX_PAYLOAD == 16 * 1024 * 1024
        assert MessageDecoder().max_payload == DEFAULT_DECODER_MAX_PAYLOAD

    def test_decoder_accepts_payload_at_bound(self):
        msg = Resume(resume_token="t" * 32, have_below=0)
        wire = encode_message(msg)
        decoder = MessageDecoder(max_payload=len(wire) - HEADER_SIZE)
        assert decoder.feed(wire) == [msg]

    def test_read_message_rejects_oversized_declared_length(self):
        # The asyncio reader honours the same bound as MessageDecoder:
        # an inflated length field is rejected at the header, before
        # the reader commits to buffering the payload.
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(
                "!4sBBHII", b"RPRV", 2, int(MsgType.FRAME), 0, 2048, 0))
            with pytest.raises(ProtocolError, match="reader limit"):
                await read_message(reader, max_payload=1024)

        asyncio.run(run())

    def test_read_message_accepts_within_bound(self):
        async def run():
            msg = Resume(resume_token="tok-1", have_below=2)
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(msg))
            assert await read_message(reader, max_payload=4096) == msg

        asyncio.run(run())


# ----------------------------------------------------------------------
# Degradation ladder snapshot
# ----------------------------------------------------------------------
class TestDegradationSnapshot:
    def test_export_import_roundtrip(self):
        src = DegradationController(fps=24.0, config=ResilienceConfig())
        for _ in range(3):
            src.observe_frame([0.2])  # way over a 1/24 s slot
        state = src.export_state()
        dst = DegradationController(fps=24.0, config=ResilienceConfig())
        dst.import_state(state)
        assert dst.level == src.level
        assert dst.export_state() == state

    def test_force_escalate_counts_in_snapshot(self):
        ctl = DegradationController(fps=24.0)
        before = ctl.level
        ctl.force_escalate(frame_index=5, kind="watchdog")
        assert ctl.level > before
        restored = DegradationController(fps=24.0)
        restored.import_state(ctl.export_state())
        assert restored.level == ctl.level


# ----------------------------------------------------------------------
# Pipeline GOP-boundary snapshot: split session == one session
# ----------------------------------------------------------------------
class TestPipelineSnapshot:
    def test_split_session_bit_identical(self):
        video = generate_video(ContentClass.BRAIN, width=64, height=64,
                               num_frames=8, seed=5)
        config = PipelineConfig(
            fps=24.0, gop=GopConfig(4),
            base_config=EncoderConfig(qp=32, search="hexagon",
                                      search_window=64),
            content_class=ContentClass.BRAIN,
        )
        with StreamTranscoder(config) as t:
            session = t.open_session()
            reference = []
            for frame in video.frames:
                reference.extend(session.push(frame))
            reference.extend(session.finish())

        with StreamTranscoder(config) as t:
            first = t.open_session()
            outputs = []
            for frame in video.frames[:4]:
                outputs.extend(first.push(frame))
            state = first.export_state()
        with StreamTranscoder(config) as t:
            second = t.open_session()
            second.import_state(state)
            for frame in video.frames[4:]:
                outputs.extend(second.push(frame))
            outputs.extend(second.finish())

        assert len(outputs) == len(reference) == 8
        for got, want in zip(outputs, reference):
            assert got.frame_index == want.frame_index
            assert got.frame_type == want.frame_type
            assert got.record.bits == want.record.bits
            assert np.array_equal(got.reconstruction, want.reconstruction)

    def test_export_requires_gop_boundary(self):
        video = generate_video(ContentClass.BRAIN, width=64, height=64,
                               num_frames=2, seed=5)
        config = PipelineConfig(fps=24.0, gop=GopConfig(4),
                                content_class=ContentClass.BRAIN)
        with StreamTranscoder(config) as t:
            session = t.open_session()
            session.push(video.frames[0])
            with pytest.raises(ValueError, match="GOP boundary"):
                session.export_state()

    def test_frame_output_record_mirrors_encoded(self):
        video = generate_video(ContentClass.BONE, width=64, height=64,
                               num_frames=2, seed=6)
        config = PipelineConfig(fps=24.0, gop=GopConfig(2),
                                content_class=ContentClass.BONE)
        with StreamTranscoder(config) as t:
            session = t.open_session()
            outputs = []
            for frame in video.frames:
                outputs.extend(session.push(frame))
        rec = frame_output_record(outputs[0])
        assert rec["frame_index"] == 0 and rec["dropped"] is None
        assert rec["bits"] == outputs[0].record.bits
        assert np.array_equal(unpack_plane(rec["recon"]),
                              outputs[0].reconstruction)


# ----------------------------------------------------------------------
# Loadgen connectivity classification
# ----------------------------------------------------------------------
class TestLoadgenClassification:
    def _free_port(self) -> int:
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_connection_refused_is_classified_and_retried(self):
        config = LoadGenConfig(
            host="127.0.0.1", port=self._free_port(), sessions=1,
            frames=2, seed=4, max_reconnects=2, backoff_base_s=0.01,
            backoff_max_s=0.02,
        )
        report = asyncio.run(run_loadgen_async(config))
        session = report.sessions[0]
        assert session.error is not None
        assert session.connect_refusals == 3  # initial + 2 retries
        assert session.reconnect_attempts == 2
        assert session.mid_stream_disconnects == 0
        assert report.connect_refusals == 3
        assert "refused 3" in report.summary()

    def test_no_reconnect_budget_fails_fast(self):
        config = LoadGenConfig(
            host="127.0.0.1", port=self._free_port(), sessions=1,
            frames=2, seed=4,
        )
        report = asyncio.run(run_loadgen_async(config))
        session = report.sessions[0]
        assert session.connect_refusals == 1
        assert session.reconnect_attempts == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(max_reconnects=-1)
        with pytest.raises(ValueError):
            LoadGenConfig(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            LoadGenConfig(backoff_base_s=-0.1)
