"""Tests for the reproduction-report generator."""

import pytest

from repro.experiments.report import PAPER_HEADLINES, build_report


class TestReport:
    def test_headlines_defined(self):
        assert set(PAPER_HEADLINES) == {"me_speedup", "throughput", "power"}


def build_report_quick() -> str:
    """Tiny-input version of build_report for testing the renderer."""
    import io
    from repro.experiments.table1 import format_table1, run_table1
    from repro.experiments.fig3 import format_fig3, run_fig3

    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    t1 = run_table1(width=96, height=80, num_frames=8, tilings=[(1, 1)])
    out.write(format_table1(t1) + "\n")
    f3 = run_fig3(width=96, height=80, num_frames=8)
    out.write(format_fig3(f3) + "\n")
    return out.getvalue()


class TestReportRendering:
    def test_sections_render(self):
        text = build_report_quick()
        assert "Reproduction report" in text
        assert "TABLE I" in text
        assert "FIG. 3" in text

    def test_cli_writes_file(self, tmp_path, monkeypatch):
        """The module-level main writes the report file (patched to the
        tiny builder so the test stays fast)."""
        import repro.experiments.report as mod
        monkeypatch.setattr(
            mod, "build_report", lambda quick=True, seed=0: build_report_quick()
        )
        out = tmp_path / "r.md"
        mod.main(["--out", str(out)])
        assert out.read_text().startswith("# Reproduction report")
