"""Shim for environments without the `wheel` package (offline install).

`pip install -e . --no-build-isolation` needs bdist_wheel unless the
legacy path is used; this file enables `pip install -e . --no-use-pep517`.
"""
from setuptools import setup

setup()
