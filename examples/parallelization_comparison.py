#!/usr/bin/env python
"""Why tiles? A quantitative version of the paper's §II-C argument.

Compares the three HEVC parallelization schemes for *online*
transcoding of one 640x480 @ 24 fps bio-medical stream:

* tiles (the paper's choice): independent threads, packs on cores;
* wavefront (WPP): row threads throttled by CTU dependencies;
* GOP-level: perfect scaling, but a full GOP of added latency.

Run:
    python examples/parallelization_comparison.py
"""

import numpy as np

from repro.parallel.gop_level import GopParallelModel
from repro.parallel.wavefront import simulate_wavefront
from repro.platform.cost_model import CostModel
from repro.platform.mpsoc import XEON_E5_2667
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, MotionPreset, generate_video


def main() -> None:
    fps = 24.0
    slot = 1.0 / fps
    video = generate_video(
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        width=320, height=240, num_frames=16, seed=0,
    )
    print(f"stream: {video.width}x{video.height} @ {fps:g} fps "
          f"(frame deadline {slot * 1e3:.1f} ms)\n")

    # Measure the stream once with the content-aware pipeline.
    trace = StreamTranscoder(PipelineConfig(fps=fps)).run(video)
    gop = trace.steady_state_gop()
    tile_times = gop.mean_tile_cpu_times()
    frame_time = sum(tile_times)
    print(f"frame CPU time at f_max: {frame_time * 1e3:.1f} ms "
          f"({len(tile_times)} content-aware tiles)")

    # --- tiles ---------------------------------------------------------
    cores_tiles = max(1, int(np.ceil(frame_time / slot)))
    # Tiles are independent: the frame finishes when the largest
    # per-core share does; a greedy split approximates the allocator.
    makespan_tiles = max(max(tile_times), frame_time / cores_tiles)
    print("\n[tiles]")
    print(f"  cores needed : {cores_tiles}")
    print(f"  frame latency: {makespan_tiles * 1e3:.1f} ms "
          f"({'meets' if makespan_tiles <= slot else 'MISSES'} the deadline)")

    # --- wavefront -------------------------------------------------------
    # CTU cost matrix: spread the frame time uniformly over 16x16 CTUs.
    rows, cols = video.height // 16, video.width // 16
    ctu_costs = np.full((rows, cols), frame_time / (rows * cols))
    print("\n[wavefront]")
    for cores in (2, 4, 8, rows):
        sched = simulate_wavefront(ctu_costs, cores)
        ok = "meets" if sched.makespan <= slot else "MISSES"
        print(f"  {cores:>2} cores: frame latency {sched.makespan * 1e3:6.1f} ms, "
              f"speedup {sched.speedup:4.2f}x, efficiency "
              f"{sched.efficiency * 100:5.1f}%  ({ok} the deadline)")

    # --- GOP-level ---------------------------------------------------------
    model = GopParallelModel(gop_size=8, frame_encode_seconds=frame_time, fps=fps)
    plan = model.plan(model.workers_for_realtime())
    print("\n[GOP-level]")
    print(f"  workers      : {plan.num_workers} (sustains {plan.sustained_fps:g} fps)")
    print(f"  latency      : {plan.latency_seconds * 1e3:.0f} ms "
          f"(>= one GOP of buffering) -> "
          f"{'meets' if plan.meets_online_latency(slot) else 'MISSES'} "
          f"the per-frame deadline")

    print("\nconclusion: only tiles deliver per-frame deadlines with "
          "near-linear core usage — the premise of the paper's "
          "content-aware tile allocation.")


if __name__ == "__main__":
    main()
