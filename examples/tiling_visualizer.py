#!/usr/bin/env python
"""Visualize the content-aware re-tiling (paper Fig. 1 / Fig. 3b) as
ASCII art: the tile layout over a frame, annotated with each tile's
texture class, motion class, chosen QP and CPU share.

Run:
    python examples/tiling_visualizer.py [--content bone --motion rotate]
"""

import argparse

import numpy as np

from repro.tiling.content_aware import ContentAwareRetiler
from repro.video.generator import ContentClass, MotionPreset, generate_video

#: Cell glyph by (texture, motion): texture sets the letter, HIGH
#: motion uppercases it.
GLYPH = {"LOW": ".", "MEDIUM": "m", "HIGH": "t"}


def render_ascii(result, cols=64, rows=24) -> str:
    """Render the tile map: one glyph per cell, boundaries as '|'."""
    grid = result.grid
    w, h = grid.frame_width, grid.frame_height
    cover = grid.coverage_map()
    lines = []
    for r in range(rows):
        y = min(h - 1, int((r + 0.5) * h / rows))
        row = []
        prev_tile = -1
        for c in range(cols):
            x = min(w - 1, int((c + 0.5) * w / cols))
            idx = int(cover[y, x])
            content = result.contents[idx]
            glyph = GLYPH[content.texture.name]
            if content.motion.name == "HIGH":
                glyph = glyph.upper() if glyph != "." else ":"
            row.append("|" if idx != prev_tile and c > 0 else glyph)
            prev_tile = idx
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--content", default="brain",
                        choices=[c.value for c in ContentClass])
    parser.add_argument("--motion", default="pan_right",
                        choices=[m.value for m in MotionPreset])
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    video = generate_video(
        content_class=ContentClass(args.content),
        motion=MotionPreset(args.motion),
        width=args.width, height=args.height, num_frames=2, seed=args.seed,
    )
    result = ContentAwareRetiler().retile(video[1].luma, video[0].luma)

    print(f"content={args.content} motion={args.motion} "
          f"{args.width}x{args.height} -> {len(result.grid)} tiles\n")
    print(render_ascii(result))
    print("\nlegend: . low-texture  m medium  t high; "
          "UPPERCASE/: = high motion; | tile boundary\n")

    print(f"{'tile':<20}{'texture':<9}{'motion':<7}{'CV':>6}{'score':>7}")
    for content in result.contents:
        t = content.tile
        print(f"({t.x:>4},{t.y:>4}) {t.width:>3}x{t.height:<4}"
              f"{content.texture.name:<9}{content.motion.name:<7}"
              f"{content.cv:>6.2f}{content.motion_score:>7.1f}")


if __name__ == "__main__":
    main()
