#!/usr/bin/env python
"""Telemedicine serving scenario (the paper's Table II / Fig. 4 use
case): a hospital server streams stored studies to doctors' mobile
devices, transcoding each stream online at 24 fps.

The script measures representative streams for both the proposed
approach and the Khan et al. [19] baseline, then answers two
operational questions:

1. capacity — how many concurrent doctors can the 32-core server
   sustain with each approach?
2. efficiency — at an equal number of doctors, how much power does the
   content-aware approach save?

Run:
    python examples/telemedicine_server.py [--width 640 --height 480]
"""

import argparse

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.experiments.common import medical_corpus
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.transcode.server import TranscodingServer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=240)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--videos", type=int, default=3)
    args = parser.parse_args()

    print("generating the study corpus "
          f"({args.videos} videos, {args.width}x{args.height}) ...")
    videos = medical_corpus(width=args.width, height=args.height,
                            num_frames=args.frames, num_videos=args.videos)

    print("measuring streams (proposed pipeline) ...")
    traces_proposed = [
        StreamTranscoder(PipelineConfig()).run(v) for v in videos
    ]
    print("measuring streams ([19] baseline) ...")
    traces_baseline = [
        StreamTranscoder(PipelineConfig.khan()).run(v) for v in videos
    ]

    server = TranscodingServer()
    alloc_p, alloc_b = ProposedAllocator(), KhanAllocator()

    # Question 1: capacity under a saturated queue.
    cap_p = server.serve(traces_proposed, alloc_p)
    cap_b = server.serve(traces_baseline, alloc_b)
    def quality(report) -> str:
        # Quality stats are None when no user was admitted.
        if report.psnr_avg is None or report.bitrate_avg_mbps is None:
            return "no users admitted"
        return (f"avg {report.psnr_avg:.1f} dB, "
                f"{report.bitrate_avg_mbps:.2f} Mbps")

    print("\n=== capacity (saturated queue, 32-core Xeon, 24 fps) ===")
    print(f"  proposed : {cap_p.num_users_served} doctors ({quality(cap_p)})")
    print(f"  [19]     : {cap_b.num_users_served} doctors ({quality(cap_b)})")
    ratio = cap_p.num_users_served / max(1, cap_b.num_users_served)
    print(f"  throughput factor: {ratio:.2f}x (paper: 1.6x)")

    # Question 2: power at equal load.
    print("\n=== power at equal numbers of doctors ===")
    print(f"{'doctors':>9}{'[19] (W)':>12}{'proposed (W)':>14}{'savings':>10}")
    for n in (2, 4, 8, 12):
        if n > cap_b.num_users_served:
            break
        rep_p = server.serve(traces_proposed, alloc_p, num_users=n)
        rep_b = server.serve(traces_baseline, alloc_b, num_users=n)
        saving = (1 - rep_p.average_power_w / rep_b.average_power_w) * 100
        print(f"{n:>9}{rep_b.average_power_w:>12.1f}"
              f"{rep_p.average_power_w:>14.1f}{saving:>9.1f}%")


if __name__ == "__main__":
    main()
