#!/usr/bin/env python
"""Codec round trip: encode a video to an actual bitstream, decode it
back, and verify the decoder reconstructs the encoder's output
bit-exactly — the property that makes the substrate a real codec
rather than a cost model.

Run:
    python examples/codec_roundtrip.py
"""

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import EncoderConfig, GopConfig
from repro.codec.decoder import FrameDecoder
from repro.codec.encoder import FrameEncoder
from repro.tiling.uniform import uniform_tiling
from repro.video.generator import ContentClass, MotionPreset, generate_video
from repro.video.metrics import psnr


def main() -> None:
    video = generate_video(
        content_class=ContentClass.CARDIAC, motion=MotionPreset.PULSATE,
        width=160, height=128, num_frames=8, seed=9,
    )
    grid = uniform_tiling(video.width, video.height, 2, 2)
    configs = [EncoderConfig(qp=q) for q in (27, 32, 32, 37)]
    gop = GopConfig(8)

    # --- encode -----------------------------------------------------
    encoder = FrameEncoder()
    writer = BitWriter()
    encoder_recons = []
    reference = None
    total_bits = 0
    for frame in video:
        ftype = gop.frame_type(frame.index)
        stats, recon = encoder.encode(
            frame.luma, grid, configs, ftype,
            reference=reference, frame_index=frame.index, writer=writer,
        )
        encoder_recons.append(recon)
        reference = recon
        total_bits += stats.bits
        print(f"frame {frame.index}: {ftype.value}  {stats.bits:>7} bits  "
              f"PSNR {stats.psnr:5.2f} dB")
    stream = writer.flush()
    print(f"\nbitstream: {len(stream)} bytes "
          f"({total_bits} payload bits + headers)")

    # --- decode -----------------------------------------------------
    decoder = FrameDecoder()
    reader = BitReader(stream)
    reference = None
    mismatches = 0
    for i, enc_recon in enumerate(encoder_recons):
        dec_recon = decoder.decode(reader, grid, configs, reference=reference)
        reference = dec_recon
        if not np.array_equal(enc_recon, dec_recon):
            mismatches += 1
        quality = psnr(video[i].luma, dec_recon)
        print(f"decoded frame {i}: PSNR vs source {quality:5.2f} dB, "
              f"matches encoder: {np.array_equal(enc_recon, dec_recon)}")

    if mismatches == 0:
        print("\nround trip OK: decoder output is bit-exact with the "
              "encoder reconstruction for every frame")
    else:
        raise SystemExit(f"{mismatches} frames mismatched!")


if __name__ == "__main__":
    main()
