#!/usr/bin/env python
"""A hospital shift: doctors open and close studies over time (Poisson
arrivals), and the transcoding server admits, queues and serves them.

Shows the dynamic consequence of the paper's 1.6x throughput: at equal
offered load, the content-aware approach drains the queue faster and
completes more sessions with lower waiting times.

Run:
    python examples/hospital_shift.py [--minutes 2 --rate 20]
"""

import argparse

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.transcode.dynamic import DynamicServerSimulator, poisson_workload
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.experiments.common import medical_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=2.0,
                        help="simulated wall time")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="session arrivals per minute")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="mean session length (seconds)")
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=240)
    args = parser.parse_args()
    sim_seconds = args.minutes * 60.0

    print("measuring representative streams ...")
    videos = medical_corpus(width=args.width, height=args.height,
                            num_frames=16, num_videos=2)
    traces_p = [StreamTranscoder(PipelineConfig()).run(v) for v in videos]
    traces_k = [StreamTranscoder(PipelineConfig.khan()).run(v) for v in videos]

    requests = poisson_workload(
        rate_per_minute=args.rate, mean_duration_seconds=args.duration,
        sim_seconds=sim_seconds, num_traces=len(videos), seed=7,
    )
    print(f"workload: {len(requests)} sessions over {args.minutes:g} min "
          f"(~{args.rate:g}/min, mean {args.duration:g} s each)\n")

    sim = DynamicServerSimulator()
    results = {}
    for name, traces, allocator in (
        ("proposed", traces_p, ProposedAllocator()),
        ("khan[19]", traces_k, KhanAllocator()),
    ):
        report = sim.simulate(traces, requests, sim_seconds, allocator)
        results[name] = report
        print(f"[{name}]")
        print(f"  sessions completed : {report.completed_sessions}"
              f"/{report.total_sessions}")
        print(f"  avg served         : {report.average_served:.1f} "
              f"(peak {report.peak_served})")
        print(f"  mean admission wait: {report.mean_wait_seconds:.1f} s")
        print(f"  avg power          : {report.average_power_w:.1f} W\n")

    # Timeline sketch of served sessions.
    print("served sessions over time ('" + "#" + "' proposed, '.' khan):")
    rp = results["proposed"].timeline
    rk = results["khan[19]"].timeline
    step = max(1, len(rp) // 24)
    for i in range(0, len(rp), step):
        p, k = rp[i].served_sessions, rk[i].served_sessions
        bar_p = "#" * p
        bar_k = "." * k
        print(f"  t={rp[i].time:6.1f}s |{bar_p:<28}| |{bar_k:<18}|")


if __name__ == "__main__":
    main()
