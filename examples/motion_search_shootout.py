#!/usr/bin/env python
"""Motion-search shootout on bio-medical content (the paper's §III-C2
motivation): encode the same video with every search algorithm in the
library and compare CPU cost, quality and rate.

Run:
    python examples/motion_search_shootout.py [--frames 16]
"""

import argparse

from repro.experiments.common import (
    encode_with_proposed_policy,
    encode_with_search,
)
from repro.tiling.uniform import uniform_tiling
from repro.video.generator import ContentClass, MotionPreset, generate_video

ALGORITHMS = [
    "full", "tz", "three_step", "diamond", "cross",
    "one_at_a_time", "hexagon_horizontal", "hexagon_vertical",
    "hexagon_rotating",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=240)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--window", type=int, default=16)
    parser.add_argument("--qp", type=int, default=32)
    args = parser.parse_args()

    video = generate_video(
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        width=args.width, height=args.height, num_frames=args.frames,
        motion_magnitude=4.0, seed=0,
    )
    grid = uniform_tiling(video.width, video.height, 2, 2)

    print(f"video: {video.name}, {len(video)} frames, "
          f"tiling 2x2, window {args.window}, QP {args.qp}\n")
    print(f"{'algorithm':<22}{'cpu (s)':>9}{'PSNR (dB)':>11}"
          f"{'kbits':>8}{'SAD evals':>11}")

    rows = []
    for name in ALGORITHMS:
        outcome = encode_with_search(
            video, grid, name, qp=args.qp, window=args.window
        )
        rows.append((name, outcome))
    proposed = encode_with_proposed_policy(video, grid, qp=args.qp)
    rows.append(("proposed (paper)", proposed))

    reference_cpu = dict(rows)["full"].cpu_seconds
    for name, outcome in sorted(rows, key=lambda r: r[1].cpu_seconds):
        print(f"{name:<22}{outcome.cpu_seconds:>9.3f}{outcome.psnr:>11.2f}"
              f"{outcome.total_bits / 1000:>8.0f}"
              f"{outcome.stats.ops.me_candidates:>11,}")
    print(f"\n(full search = quality upper bound at "
          f"{reference_cpu:.3f} simulated CPU seconds)")


if __name__ == "__main__":
    main()
