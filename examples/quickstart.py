#!/usr/bin/env python
"""Quickstart: generate a synthetic bio-medical video, transcode it
with the paper's content-aware pipeline, and inspect the outcome.

Run:
    python examples/quickstart.py
"""

from repro.allocation import ProposedAllocator, UserDemand
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import ContentClass, MotionPreset, generate_video


def main() -> None:
    # 1. A synthetic brain-MRI-like video: 320x240, 2 GOPs, panning
    #    right the way a specialist scrolls through a study.
    video = generate_video(
        content_class=ContentClass.BRAIN,
        motion=MotionPreset.PAN_RIGHT,
        width=320, height=240, num_frames=16, seed=42,
    )
    print(f"video: {video.name} ({video.width}x{video.height}, "
          f"{len(video)} frames @ {video.fps:g} fps)")

    # 2. Transcode with the proposed content-aware pipeline: per-GOP
    #    re-tiling, per-tile QP, the bio-medical fast motion search,
    #    and workload estimation.
    transcoder = StreamTranscoder(PipelineConfig())
    trace = transcoder.run(video)

    print(f"\nencoded {len(trace.frame_records)} frames:")
    print(f"  average PSNR : {trace.average_psnr:.2f} dB "
          f"(min {trace.min_psnr:.2f}, max {trace.max_psnr:.2f})")
    print(f"  bitrate      : {trace.bitrate_mbps:.3f} Mbps")

    # 3. Inspect the steady-state GOP: the content-aware tile layout
    #    and what each tile costs.
    gop = trace.steady_state_gop()
    print(f"\nsteady-state tiling ({len(gop.grid)} tiles):")
    for content, cpu in zip(gop.contents, gop.mean_tile_cpu_times()):
        t = content.tile
        print(f"  ({t.x:>3},{t.y:>3}) {t.width:>3}x{t.height:<3} "
              f"texture={content.texture.name:<6} "
              f"motion={content.motion.name:<4} cpu={cpu * 1e3:6.2f} ms")

    # 4. Ask the Algorithm 2 allocator what serving this stream at
    #    24 fps costs on the paper's 32-core Xeon.
    allocator = ProposedAllocator()
    demand = UserDemand(user_id=0, threads=gop.threads())
    result = allocator.allocate([demand], fps=video.fps)
    schedule = result.schedule
    print(f"\nallocation: {schedule.active_cores} core(s), "
          f"{schedule.cores_at_fmax_whole_slot} pinned at f_max")
    for plan in schedule.plans():
        if plan.busy_seconds > 0:
            print(f"  core {plan.core_id}: busy {plan.busy_seconds * 1e3:.1f} ms "
                  f"@ {plan.busy_frequency_hz / 1e9:.1f} GHz, "
                  f"idle {plan.idle_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
